"""Setuptools shim so `python setup.py develop` works offline
(environments without the `wheel` package cannot do PEP 660 editable
installs; normal environments should just `pip install -e .`)."""

from setuptools import setup

setup()
