"""Tests for plan analytics (cardinality estimates, plan-space stats)."""

import pytest

from repro.graph import erdos_renyi
from repro.query import best_execution_plan, named_patterns, paper_query
from repro.query.plan_stats import (
    PlanReport,
    estimate_plan,
    plan_space_summary,
)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(200, 0.05, seed=23)


class TestEstimatePlan:
    def test_report_structure(self, graph):
        pattern = paper_query("q5")
        plan = best_execution_plan(pattern)
        report = estimate_plan(pattern, plan, graph)
        assert isinstance(report, PlanReport)
        assert len(report.rounds) == plan.num_rounds
        assert report.start_span == pattern.span(plan.start_vertex)

    def test_estimates_positive_and_finite(self, graph):
        pattern = paper_query("q4")
        plan = best_execution_plan(pattern)
        report = estimate_plan(pattern, plan, graph)
        for r in report.rounds:
            assert r.estimated_results >= 0
            assert r.expansion_factor > 0

    def test_more_verification_edges_lower_estimate(self, graph):
        """Verification edges multiply in a selectivity < 1 factor."""
        pattern = paper_query("q8")  # many verification edges
        plan = best_execution_plan(pattern)
        report = estimate_plan(pattern, plan, graph)
        sparse_pattern = paper_query("q3")
        sparse_plan = best_execution_plan(sparse_pattern)
        sparse_report = estimate_plan(sparse_pattern, sparse_plan, graph)
        # q8 (9 edges) must be estimated rarer than q3 (5 edges).
        assert (
            report.estimated_final_results
            < sparse_report.estimated_final_results
        )

    def test_describe_renders(self, graph):
        pattern = paper_query("q2")
        report = estimate_plan(pattern, best_execution_plan(pattern), graph)
        text = report.describe()
        assert "round 0" in text and "score" in text


class TestPlanSpaceSummary:
    def test_fields(self):
        summary = plan_space_summary(paper_query("q4"))
        assert summary["num_plans"] > 0
        assert summary["rounds"] == 2
        assert summary["score_min"] <= summary["score_max"]

    def test_with_graph_estimates(self, graph):
        summary = plan_space_summary(paper_query("q4"), graph)
        assert summary["estimate_min"] <= summary["estimate_max"]

    def test_single_unit_pattern(self):
        summary = plan_space_summary(paper_query("q2"))
        assert summary["rounds"] == 1


class TestCostBasedPlan:
    def test_returns_valid_minimum_round_plan(self, er_graph):
        from repro.query.plan_stats import cost_based_plan
        from repro.query.spanning import connected_domination_number

        pattern = named_patterns()["q5"]
        plan = cost_based_plan(pattern, er_graph)
        plan.validate()
        assert plan.num_rounds == connected_domination_number(pattern)

    def test_rads_accepts_cost_based_provider(self, er_cluster):
        from repro.core.rads import RADSEngine
        from repro.engines import SingleMachineEngine
        from repro.query.plan_stats import cost_based_plan

        pattern = named_patterns()["q4"]
        graph = er_cluster.graph
        engine = RADSEngine(
            plan_provider=lambda p: cost_based_plan(p, graph)
        )
        result = engine.run(er_cluster.fresh_copy(), pattern)
        oracle = SingleMachineEngine().run(er_cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == set(oracle.embeddings)

    def test_prefers_lower_cardinality(self):
        from repro.graph import erdos_renyi
        from repro.query.plan import enumerate_execution_plans
        from repro.query.plan_stats import cost_based_plan, estimate_plan

        graph = erdos_renyi(100, 0.06, seed=2)
        pattern = named_patterns()["q7"]
        chosen = cost_based_plan(pattern, graph)
        chosen_total = sum(
            r.estimated_results
            for r in estimate_plan(pattern, chosen, graph).rounds
        )
        for plan in enumerate_execution_plans(pattern):
            other = sum(
                r.estimated_results
                for r in estimate_plan(pattern, plan, graph).rounds
            )
            assert chosen_total <= other + 1e-9
