"""Tests for the SM-E split (paper Sec. 3.1, Prop. 1)."""

import pytest

from repro.cluster import Cluster
from repro.core.region import MemoryEstimator
from repro.core.sme import SingleMachineSplit
from repro.graph import grid_road_network
from repro.query import best_execution_plan, paper_query
from repro.query.symmetry import symmetry_breaking_constraints


@pytest.fixture(scope="module")
def setting():
    graph = grid_road_network(16, 16, extra_edge_prob=0.08, seed=4)
    cluster = Cluster.create(graph, 4)
    pattern = paper_query("q1")
    plan = best_execution_plan(pattern)
    cons = symmetry_breaking_constraints(pattern)
    return cluster, pattern, plan, cons


class TestSplit:
    def test_split_is_partition_of_candidates(self, setting):
        cluster, pattern, plan, cons = setting
        split = SingleMachineSplit(pattern, plan, cons)
        local = cluster.partition.machine(0)
        candidates = set(split.candidates(local))
        c1, c2 = split.split(local)
        assert set(c1) | set(c2) == candidates
        assert set(c1) & set(c2) == set()

    def test_c1_far_from_border(self, setting):
        cluster, pattern, plan, cons = setting
        split = SingleMachineSplit(pattern, plan, cons)
        local = cluster.partition.machine(0)
        span = pattern.span(plan.start_vertex)
        c1, c2 = split.split(local)
        for v in c1:
            assert local.border_distance(v) >= span
        for v in c2:
            assert local.border_distance(v) < span

    def test_degree_filter(self, setting):
        cluster, pattern, plan, cons = setting
        split = SingleMachineSplit(pattern, plan, cons)
        local = cluster.partition.machine(0)
        for v in split.candidates(local):
            assert local.degree(v) >= pattern.degree(plan.start_vertex)


class TestProposition1:
    def test_sme_embeddings_fully_local(self, setting):
        """Prop. 1: embeddings rooted in C1 never leave the machine."""
        cluster, pattern, plan, cons = setting
        split = SingleMachineSplit(pattern, plan, cons)
        for t in range(cluster.num_machines):
            local = cluster.partition.machine(t)
            result = split.run(local, cluster.machine(t))
            for emb in result.embeddings:
                assert all(local.is_owned(v) for v in emb)

    def test_sme_embeddings_would_be_found_globally(self, setting):
        """Every SM-E embedding restricted to owned vertices is genuine:
        cross-check against unrestricted enumeration from C1 starts."""
        cluster, pattern, plan, cons = setting
        from repro.enumeration import enumerate_embeddings

        split = SingleMachineSplit(pattern, plan, cons)
        graph = cluster.graph
        local = cluster.partition.machine(1)
        result = split.run(local, cluster.machine(1))
        unrestricted = enumerate_embeddings(
            graph.neighbors,
            result.local_candidates,
            pattern,
            cons,
            order=plan.matching_order(),
        )
        # Prop. 1 says the restriction loses nothing for C1 starts.
        assert set(result.embeddings) == set(unrestricted)

    def test_clock_charged(self, setting):
        cluster, pattern, plan, cons = setting
        fresh = cluster.fresh_copy()
        split = SingleMachineSplit(pattern, plan, cons)
        split.run(fresh.partition.machine(0), fresh.machine(0))
        assert fresh.machine(0).clock > 0

    def test_estimator_calibrated(self, setting):
        cluster, pattern, plan, cons = setting
        fresh = cluster.fresh_copy()
        split = SingleMachineSplit(pattern, plan, cons)
        estimator = MemoryEstimator(2)
        split.run(fresh.partition.machine(0), fresh.machine(0), estimator)
        # After calibration the estimate is embedding-driven, not the
        # degree fallback.
        assert estimator.estimate_bytes(3) == estimator.estimate_bytes(100)
