"""Unit tests for the PSgL baseline's characteristic behaviours."""

import pytest

from repro.cluster import Cluster
from repro.engines import PSgLEngine, RADSEngine, SingleMachineEngine
from repro.graph import erdos_renyi
from repro.query import paper_query


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 0.08, seed=21)


class TestPSgL:
    def test_correct(self, graph):
        cluster = Cluster.create(graph, 4)
        pattern = paper_query("q3")
        expected = SingleMachineEngine().run(
            cluster.fresh_copy(), pattern
        ).embeddings
        result = PSgLEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == set(expected)

    def test_shuffles_every_superstep(self, graph):
        """PSgL's traffic grows with the number of query vertices because
        every expansion step reshuffles partial matches."""
        cluster = Cluster.create(graph, 4)
        small = PSgLEngine().run(
            cluster.fresh_copy(), paper_query("q1"), collect_embeddings=False
        )
        large = PSgLEngine().run(
            cluster.fresh_copy(), paper_query("q5"), collect_embeddings=False
        )
        assert large.total_comm_bytes > small.total_comm_bytes

    def test_communication_dwarfs_rads(self, graph):
        cluster = Cluster.create(graph, 4)
        pattern = paper_query("q4")
        psgl = PSgLEngine().run(
            cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        rads = RADSEngine().run(
            cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        assert psgl.total_comm_bytes > 3 * rads.total_comm_bytes

    def test_synchronous_barriers(self, graph):
        """All machines end each superstep together: identical main clocks
        (modulo final gather) — the synchronisation delay of Sec. 1."""
        cluster = Cluster.create(graph, 4)
        PSgLEngine().run(cluster, paper_query("q2"), collect_embeddings=False)
        clocks = [round(m.clock, 12) for m in cluster.machines]
        assert len(set(clocks)) == 1

    def test_no_memory_control(self, graph):
        cluster = Cluster.create(graph, 4, memory_capacity=16 * 1024)
        result = PSgLEngine().run(cluster, paper_query("q5"))
        assert result.failed
