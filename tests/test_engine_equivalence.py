"""Cross-engine, cross-backend equivalence on seeded random graphs.

Every engine must report the same embedding count for a query, and every
execution backend (serial, process pool at 1, 2 and 4 workers) must
reproduce that count exactly — the paper's correctness bar for the
reproduction, and the guard rail for the parallel runtime.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.engines import all_engines
from repro.engines.bigjoin import BigJoinEngine
from repro.engines.single import SingleMachineEngine
from repro.graph import erdos_renyi, grid_road_network
from repro.query import named_patterns
from repro.runtime import ProcessExecutor, SerialExecutor

QUERIES = ["q1", "q4"]
WORKER_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def pools():
    executors = {n: ProcessExecutor(n) for n in WORKER_COUNTS}
    yield executors
    for executor in executors.values():
        executor.close()


@pytest.fixture(scope="module")
def equivalence_cluster(er_graph):
    return Cluster.create(er_graph, 4)


def _engines():
    classes = dict(all_engines())
    classes["BigJoin"] = BigJoinEngine
    return classes


class TestEngineBackendEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    def test_all_engines_and_backends_agree(
        self, equivalence_cluster, pools, query
    ):
        pattern = named_patterns()[query]
        oracle = SingleMachineEngine().run(
            equivalence_cluster.fresh_copy(), pattern,
            collect_embeddings=False,
        )
        assert not oracle.failed
        for name, engine_cls in _engines().items():
            serial = engine_cls().run(
                equivalence_cluster.fresh_copy(), pattern,
                collect_embeddings=False, executor=SerialExecutor(),
            )
            assert not serial.failed, name
            assert serial.embedding_count == oracle.embedding_count, name
            for workers, executor in pools.items():
                parallel = engine_cls().run(
                    equivalence_cluster.fresh_copy(), pattern,
                    collect_embeddings=False, executor=executor,
                )
                assert not parallel.failed, (name, workers)
                assert (
                    parallel.embedding_count == oracle.embedding_count
                ), (name, workers)

    def test_seeded_graphs_rads_counts_stable(self, pools):
        """RADS counts match the oracle on more seeds/topologies, and the
        process backend reproduces them at every worker count."""
        rads_cls = all_engines()["RADS"]
        graphs = [
            erdos_renyi(70, 0.09, seed=29),
            grid_road_network(9, 9, extra_edge_prob=0.15, seed=2),
        ]
        pattern = named_patterns()["q2"]
        for graph in graphs:
            cluster = Cluster.create(graph, 3)
            expected = SingleMachineEngine().run(
                cluster.fresh_copy(), pattern, collect_embeddings=False
            ).embedding_count
            serial = rads_cls().run(
                cluster.fresh_copy(), pattern, collect_embeddings=False
            )
            assert serial.embedding_count == expected
            counts = {
                workers: rads_cls().run(
                    cluster.fresh_copy(), pattern,
                    collect_embeddings=False, executor=executor,
                ).embedding_count
                for workers, executor in pools.items()
            }
            assert set(counts.values()) == {expected}, counts

    def test_parallel_stats_identical_across_worker_counts(
        self, equivalence_cluster, pools
    ):
        """Reported stats (not just counts) are bit-identical no matter
        how many workers execute the batch."""
        pattern = named_patterns()["q4"]
        rads_cls = all_engines()["RADS"]
        runs = {
            workers: rads_cls().run(
                equivalence_cluster.fresh_copy(), pattern,
                collect_embeddings=False, executor=executor,
            )
            for workers, executor in pools.items()
        }
        reference = runs[WORKER_COUNTS[0]]
        for workers, result in runs.items():
            assert result.makespan == reference.makespan, workers
            assert result.total_comm_bytes == reference.total_comm_bytes
            assert result.peak_memory == reference.peak_memory
            assert result.per_machine_time == reference.per_machine_time
            assert result.counters == reference.counters
