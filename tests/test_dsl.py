"""The pattern DSL, PatternBuilder and canonicalization layer."""

import pytest

import repro
from repro.enumeration.labeled import LabeledPattern
from repro.query.dsl import (
    PatternBuilder,
    PatternSyntaxError,
    format_pattern,
    parse_pattern,
)
from repro.query.isomorphism import are_isomorphic
from repro.query.pattern import Pattern
from repro.query.pattern_gen import cycle, random_connected_pattern, wheel
from repro.query.patterns import (
    find_named,
    house,
    k4,
    named_patterns,
    square,
    triangle,
)


class TestParse:
    def test_triangle_equals_named(self):
        assert parse_pattern("a-b, b-c, c-a") == triangle()

    def test_repro_pattern_is_the_facade_spelling(self):
        assert repro.pattern("a-b, b-c, c-a") == triangle()

    def test_first_appearance_order(self):
        p = parse_pattern("x-y, z-x")
        # x=0, y=1, z=2
        assert set(p.edges()) == {(0, 1), (0, 2)}

    def test_path_chains(self):
        assert parse_pattern("a-b-c-d-a") == square()

    def test_semicolons_newlines_and_whitespace(self):
        assert parse_pattern(" a - b ;\n b-c,, c-a ") == triangle()

    def test_duplicate_edges_idempotent(self):
        assert parse_pattern("a-b, b-a, a-b") == parse_pattern("a-b")

    def test_lone_vertex_term(self):
        p = parse_pattern("hub, hub-a, hub-b")
        assert p.num_vertices == 3
        assert p.degree(0) == 2

    def test_single_vertex_pattern(self):
        p = parse_pattern("a")
        assert (p.num_vertices, p.num_edges) == (1, 0)

    def test_name_argument(self):
        assert parse_pattern("a-b, b-c", name="wedge").name == "wedge"

    def test_unnamed_adopts_registered_name(self):
        assert parse_pattern("a-b, b-c, c-a").name == "triangle"
        # Isomorphic, differently-spelled square is recognised as q1.
        assert parse_pattern("d-c, a-d, b-a, c-b").name == "q1"

    @pytest.mark.parametrize("bad", [
        "", "   ", ",", "a-a", "a--b", "a-b, c-d", "a%-b", "a-b:!",
    ])
    def test_rejected_text(self, bad):
        with pytest.raises(PatternSyntaxError):
            parse_pattern(bad)

    def test_disconnected_allowed_when_asked(self):
        p = parse_pattern("a-b, c-d", require_connected=False)
        assert p.num_vertices == 4 and not p.is_connected()

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            parse_pattern(triangle())


class TestLabels:
    def test_integer_labels(self):
        lp = parse_pattern("a:0-b:1, b-c:0, c-a")
        assert isinstance(lp, LabeledPattern)
        assert lp.labels == (0, 1, 0)
        assert lp.pattern == triangle()

    def test_symbolic_labels_auto_numbered(self):
        lp = parse_pattern("a:person-b:org, b-c:person, c-a")
        assert lp.labels == (0, 1, 0)

    def test_symbolic_labels_with_map(self):
        lp = parse_pattern(
            "a:person-b:org, b-c:person, c-a",
            label_map={"person": 7, "org": 3},
        )
        assert lp.labels == (7, 3, 7)

    def test_symbol_missing_from_map_rejected(self):
        with pytest.raises(PatternSyntaxError, match="missing from label_map"):
            parse_pattern("a:person-b:org", label_map={"person": 1})

    def test_partial_labels_rejected(self):
        with pytest.raises(PatternSyntaxError, match="partially labeled"):
            parse_pattern("a:0-b, b-c")

    def test_conflicting_labels_rejected(self):
        with pytest.raises(PatternSyntaxError, match="conflicting"):
            parse_pattern("a:0-b:1, a:1-c:0")

    def test_repeated_consistent_labels_fine(self):
        lp = parse_pattern("a:0-b:1, a:0-c:1")
        assert lp.labels == (0, 1, 1)

    def test_labeled_pattern_equality_and_hash(self):
        a = parse_pattern("a:0-b:1")
        b = LabeledPattern(Pattern(2, [(0, 1)]), (0, 1))
        assert a == b and hash(a) == hash(b)
        assert a != LabeledPattern(Pattern(2, [(0, 1)]), (1, 0))


class TestBuilder:
    def test_fluent_build(self):
        p = (
            PatternBuilder(name="wedge")
            .vertex("a").vertex("b").vertex("c")
            .edge("a", "b").edge("b", "c")
            .build()
        )
        assert p.name == "wedge" and p.num_edges == 2

    def test_edge_declares_vertices(self):
        assert PatternBuilder().edge("a", "b").build().num_vertices == 2

    def test_path_helper(self):
        assert PatternBuilder().path("a", "b", "c", "d", "a").build() == square()

    def test_labeled_build(self):
        lp = (
            PatternBuilder()
            .vertex("x", label="person").vertex("y", label="org")
            .edge("x", "y")
            .build()
        )
        assert isinstance(lp, LabeledPattern) and lp.labels == (0, 1)

    def test_self_loop_rejected(self):
        with pytest.raises(PatternSyntaxError):
            PatternBuilder().edge("a", "a")

    def test_empty_rejected(self):
        with pytest.raises(PatternSyntaxError):
            PatternBuilder().build()

    def test_disconnected_rejected_by_default(self):
        builder = PatternBuilder().edge("a", "b").edge("c", "d")
        with pytest.raises(PatternSyntaxError, match="not connected"):
            builder.build()
        assert builder.build(require_connected=False).num_vertices == 4

    def test_negative_label_rejected(self):
        with pytest.raises(PatternSyntaxError):
            PatternBuilder().vertex("a", label=-1)


class TestRoundTrip:
    """The acceptance property: ``parse(str(p)) == p``."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_patterns_round_trip(self, seed):
        n = 2 + seed % 6
        p = random_connected_pattern(n, extra_edges=seed % 4, seed=seed)
        assert parse_pattern(str(p)) == p

    @pytest.mark.parametrize("name", sorted(set(named_patterns())))
    def test_named_patterns_round_trip(self, name):
        p = named_patterns()[name]
        assert parse_pattern(str(p)) == p

    @pytest.mark.parametrize("seed", range(10))
    def test_labeled_round_trip(self, seed):
        p = random_connected_pattern(2 + seed % 5, extra_edges=seed % 3,
                                     seed=seed)
        labels = tuple(i % 3 for i in range(p.num_vertices))
        lp = LabeledPattern(p, labels)
        assert parse_pattern(str(lp)) == lp

    def test_format_pattern_pins_appearance_order(self):
        # Star centred on the *last* vertex: sorted edges alone would
        # renumber on re-parse, so declarations must be emitted.
        star_last = Pattern(4, [(0, 3), (1, 3), (2, 3)])
        text = format_pattern(star_last)
        assert text.startswith("v0, v1, v2, v3")
        assert parse_pattern(text) == star_last


class TestCanonicalization:
    @pytest.mark.parametrize("seed", range(15))
    def test_relabelings_share_canonical_key(self, seed):
        import random

        p = random_connected_pattern(6, extra_edges=seed % 5, seed=seed)
        perm = list(range(6))
        random.Random(seed).shuffle(perm)
        q = p.relabel(dict(enumerate(perm)))
        assert p.canonical_key() == q.canonical_key()
        assert p.isomorphic_to(q)
        assert are_isomorphic(p, p.canonical_form())

    def test_non_isomorphic_keys_differ(self):
        q6, q7 = named_patterns()["q6"], named_patterns()["q7"]
        assert q6.canonical_key() != q7.canonical_key()
        assert not q6.isomorphic_to(q7)
        assert cycle(6).canonical_key() != wheel(5).canonical_key()

    def test_canonical_form_is_idempotent(self):
        p = house().canonical_form()
        assert p.canonical_form() == p

    def test_automorphism_group_exposed(self):
        group = triangle().automorphism_group()
        assert len(group) == 6
        assert k4().automorphism_group() == k4().canonical_form(
        ).automorphism_group()

    def test_copy_with_name(self):
        renamed = house().copy_with_name("casa")
        assert renamed == house() and renamed.name == "casa"
        assert hash(renamed) == hash(house())
        assert house().copy_with_name(None).name.startswith("pattern<")


class TestNamedAliases:
    @pytest.mark.parametrize("alias,paper_id", [
        ("square", "q1"),
        ("tailed_triangle", "q2"),
        ("five_cycle", "q3"),
        ("house", "q4"),
        ("house_with_tail", "q5"),
        ("theta_graph", "q6"),
        ("domino", "q7"),
        ("k33", "q8"),
        ("k4", "cq1"),
        ("bowtie", "cq3"),
    ])
    def test_human_aliases_resolve(self, alias, paper_id):
        catalogue = named_patterns()
        assert catalogue[alias] is catalogue[paper_id]

    def test_find_named_prefers_paper_ids(self):
        shuffled = house().relabel({0: 4, 1: 3, 2: 2, 3: 1, 4: 0})
        assert find_named(shuffled) == "q4"
        assert find_named(triangle()) == "triangle"

    def test_find_named_misses_unregistered(self):
        assert find_named(cycle(7)) is None
