"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.graph import (
    community_graph,
    erdos_renyi,
    grid_road_network,
    powerlaw_cluster,
)


@pytest.fixture(scope="session")
def er_graph():
    """Small Erdos-Renyi graph used across correctness tests."""
    return erdos_renyi(100, 0.08, seed=5)


@pytest.fixture(scope="session")
def grid_graph():
    """Small road-network analogue."""
    return grid_road_network(12, 12, extra_edge_prob=0.1, seed=1)


@pytest.fixture(scope="session")
def powerlaw_graph():
    """Small heavy-tailed graph."""
    return powerlaw_cluster(150, 4, seed=7)


@pytest.fixture(scope="session")
def community_graph_small():
    """Small community (DBLP-like) graph."""
    return community_graph(12, 10, intra_prob=0.5, inter_edges=2, seed=3)


@pytest.fixture()
def er_cluster(er_graph):
    """Fresh 4-machine cluster over the ER graph."""
    return Cluster.create(er_graph, 4)


@pytest.fixture()
def grid_cluster(grid_graph):
    """Fresh 4-machine cluster over the grid graph."""
    return Cluster.create(grid_graph, 4)
