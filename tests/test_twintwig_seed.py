"""Unit tests for the TwinTwig / SEED decompositions and join machinery."""

import pytest

from repro.cluster import Cluster
from repro.engines.join_common import ConstraintChecker, DistributedJoinRunner, JoinUnit
from repro.engines.seed import _pattern_cliques, seed_decomposition
from repro.engines.twintwig import twintwig_decomposition
from repro.graph import erdos_renyi
from repro.query.patterns import PAPER_QUERIES, CLIQUE_QUERIES


ALL_QUERIES = {**PAPER_QUERIES, **CLIQUE_QUERIES}


class TestTwinTwigDecomposition:
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_covers_all_edges_exactly_once(self, name):
        pattern = ALL_QUERIES[name]
        units = twintwig_decomposition(pattern)
        covered = [e for u in units for e in u.covered_edges]
        assert sorted(covered) == sorted(pattern.edges())

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_stars_have_at_most_two_edges(self, name):
        for unit in twintwig_decomposition(ALL_QUERIES[name]):
            assert len(unit.covered_edges) <= 2
            assert unit.kind == "star"

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_join_connectivity(self, name):
        units = twintwig_decomposition(ALL_QUERIES[name])
        placed = set(units[0].vertices)
        for unit in units[1:]:
            assert placed & set(unit.vertices), "disconnected join"
            placed |= set(unit.vertices)

    def test_star_edges_incident_to_pivot(self):
        for unit in twintwig_decomposition(ALL_QUERIES["q8"]):
            for e in unit.covered_edges:
                assert unit.pivot in e


class TestSEEDDecomposition:
    def test_pattern_cliques_k4(self):
        cliques = _pattern_cliques(CLIQUE_QUERIES["cq1"])
        sizes = sorted(len(c) for c in cliques)
        assert sizes == [3, 3, 3, 3, 4]

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_covers_all_edges_exactly_once(self, name):
        pattern = ALL_QUERIES[name]
        units = seed_decomposition(pattern)
        covered = [e for u in units for e in u.covered_edges]
        assert sorted(covered) == sorted(pattern.edges())

    def test_clique_units_on_clique_queries(self):
        units = seed_decomposition(CLIQUE_QUERIES["cq1"])
        assert units[0].kind == "clique"
        assert len(units[0].vertices) == 4

    def test_fewer_units_than_twintwig_on_triangle_queries(self):
        for name in ("q2", "q4", "cq1", "cq4"):
            pattern = ALL_QUERIES[name]
            assert len(seed_decomposition(pattern)) <= len(
                twintwig_decomposition(pattern)
            )

    def test_triangle_free_falls_back_to_stars(self):
        units = seed_decomposition(ALL_QUERIES["q1"])
        assert all(u.kind == "star" for u in units)


class TestConstraintChecker:
    def test_pairs_compiled_per_schema(self):
        pattern = ALL_QUERIES["q1"]
        checker = ConstraintChecker(pattern, [(0, 1), (1, 3)])
        pairs = checker.pairs((1, 3))
        assert pairs == [(0, 1)]  # only (1,3) is fully inside the schema

    def test_ok_tuple(self):
        checker = ConstraintChecker(ALL_QUERIES["q1"], [(0, 1)])
        pairs = checker.pairs((0, 1, 2, 3))
        assert checker.ok_tuple((1, 2, 0, 5), pairs)
        assert not checker.ok_tuple((2, 1, 0, 5), pairs)

    def test_pairs_cached(self):
        checker = ConstraintChecker(ALL_QUERIES["q1"], [(0, 1)])
        assert checker.pairs((0, 1)) is checker.pairs((0, 1))


class TestJoinRunner:
    def test_star_instances_satisfy_star_edges(self):
        graph = erdos_renyi(40, 0.15, seed=8)
        cluster = Cluster.create(graph, 3)
        pattern = ALL_QUERIES["q1"]
        runner = DistributedJoinRunner(cluster, pattern, [])
        unit = JoinUnit((0, 1, 3), ((0, 1), (0, 3)), "star")
        for t in range(3):
            for inst in runner.star_instances(t, unit):
                centre, leaf1, leaf2 = inst
                assert graph.has_edge(centre, leaf1)
                assert graph.has_edge(centre, leaf2)
                assert leaf1 != leaf2

    def test_clique_instances_are_cliques(self):
        graph = erdos_renyi(40, 0.3, seed=9)
        cluster = Cluster.create(graph, 2)
        pattern = ALL_QUERIES["cq1"]
        runner = DistributedJoinRunner(cluster, pattern, [])
        unit = JoinUnit((0, 1, 2), ((0, 1), (0, 2), (1, 2)), "clique")
        for t in range(2):
            for a, b, c in runner.clique_instances(t, unit):
                assert graph.has_edge(a, b)
                assert graph.has_edge(a, c)
                assert graph.has_edge(b, c)

    def test_join_requires_shared_vertices(self):
        graph = erdos_renyi(20, 0.2, seed=10)
        cluster = Cluster.create(graph, 2)
        runner = DistributedJoinRunner(cluster, ALL_QUERIES["q1"], [])
        with pytest.raises(ValueError):
            runner.join_round(
                {0: [], 1: []}, (0, 1),
                {0: [], 1: []}, JoinUnit((2, 3), ((2, 3),), "star"),
            )


class TestCostOrientedDecomposition:
    def test_covers_all_edges(self):
        from repro.engines.twintwig import cost_oriented_decomposition

        for name in sorted(ALL_QUERIES):
            units = cost_oriented_decomposition(ALL_QUERIES[name], 8.0)
            covered = sorted(e for u in units for e in u.covered_edges)
            assert covered == sorted(ALL_QUERIES[name].edges()), name

    def test_units_are_small_stars(self):
        from repro.engines.twintwig import cost_oriented_decomposition

        for unit in cost_oriented_decomposition(ALL_QUERIES["q8"], 8.0):
            assert len(unit.covered_edges) <= 2

    def test_engine_correct(self):
        from repro.cluster import Cluster
        from repro.engines import SingleMachineEngine
        from repro.engines.twintwig import TwinTwigEngine

        graph = erdos_renyi(70, 0.12, seed=44)
        cluster = Cluster.create(graph, 3)
        pattern = ALL_QUERIES["q4"]
        expected = set(
            SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
        )
        result = TwinTwigEngine(cost_oriented=True).run(
            cluster.fresh_copy(), pattern
        )
        assert set(result.embeddings) == expected

    def test_cost_oriented_no_worse_on_powerlaw(self):
        from repro.cluster import Cluster
        from repro.engines.twintwig import TwinTwigEngine
        from repro.graph import powerlaw_cluster

        graph = powerlaw_cluster(200, 4, seed=45)
        cluster = Cluster.create(graph, 3)
        pattern = ALL_QUERIES["q5"]
        naive = TwinTwigEngine().run(
            cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        smart = TwinTwigEngine(cost_oriented=True).run(
            cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        assert smart.embedding_count == naive.embedding_count
        assert smart.peak_memory <= naive.peak_memory * 1.5
