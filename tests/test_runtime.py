"""Unit tests for the execution-backend subsystem (repro.runtime).

Task functions live at module level so the process backend can pickle
them by reference.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.cluster.machine import SimulatedMemoryError
from repro.core.rads import RADSEngine
from repro.engines import TwinTwigEngine
from repro.graph import erdos_renyi
from repro.query import named_patterns
from repro.runtime import (
    ProcessExecutor,
    SerialExecutor,
    SharedGraph,
    WorkerCrashError,
    get_executor,
)


# ----------------------------------------------------------------------
# Task functions (must be importable from workers)
# ----------------------------------------------------------------------
def charge_task(cluster, args):
    """Charge machine ``t`` some ops/memory/network; return a payload."""
    t, ops = args
    machine = cluster.machine(t)
    machine.charge_ops(float(ops), "test_ops")
    machine.allocate(100 * (t + 1), "test_bytes")
    machine.free(40 * (t + 1))
    if t > 0:
        cluster.network.rpc(
            requester=machine,
            responder=cluster.machine(0),
            request_bytes=8,
            response_bytes=64,
            service_ops=2.0,
        )
    return t, ops


def graph_probe_task(cluster, args):
    """Read the shared graph inside a worker."""
    v = args
    return int(cluster.graph.degree(v)), [
        int(w) for w in cluster.graph.neighbors(v)
    ]


def oom_task(cluster, args):
    t = args
    cluster.machine(t).charge_ops(5.0, "pre_oom_ops")
    cluster.machine(t).allocate(1 << 40, "huge")
    return t


def crash_task(cluster, args):
    os._exit(13)


def pid_task(cluster, args):
    return os.getpid()


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_cluster():
    return Cluster.create(erdos_renyi(80, 0.08, seed=11), 4)


@pytest.fixture(scope="module")
def pool2():
    with ProcessExecutor(2) as executor:
        yield executor


class TestSharedGraph:
    def test_round_trip(self, small_cluster):
        graph = small_cluster.graph
        shared = SharedGraph(graph)
        try:
            rebuilt, blocks = shared.handle.attach()
            assert rebuilt.num_vertices == graph.num_vertices
            assert rebuilt.num_edges == graph.num_edges
            assert np.array_equal(rebuilt.indptr, graph.indptr)
            assert np.array_equal(rebuilt.indices, graph.indices)
            for v in (0, 17, graph.num_vertices - 1):
                assert np.array_equal(rebuilt.neighbors(v), graph.neighbors(v))
            del rebuilt, blocks
        finally:
            shared.close()

    def test_attached_views_are_read_only(self, small_cluster):
        shared = SharedGraph(small_cluster.graph)
        try:
            rebuilt, blocks = shared.handle.attach()
            with pytest.raises(ValueError):
                rebuilt.indices[0] = 99
            del rebuilt, blocks
        finally:
            shared.close()

    def test_close_is_idempotent(self, small_cluster):
        shared = SharedGraph(small_cluster.graph)
        shared.close()
        shared.close()

    def test_worker_reads_graph_through_shared_memory(
        self, small_cluster, pool2
    ):
        graph = small_cluster.graph
        for v in (3, 40):
            degree, neighbors = pool2.run_tasks(
                small_cluster.fresh_copy(), graph_probe_task, [v]
            )[0]
            assert degree == graph.degree(v)
            assert neighbors == [int(w) for w in graph.neighbors(v)]


class TestDeterministicMerge:
    TASKS = [(0, 10), (1, 20), (2, 5), (3, 40)]

    def _run(self, cluster, executor):
        fresh = cluster.fresh_copy()
        payloads = executor.run_tasks(fresh, charge_task, self.TASKS)
        return payloads, fresh

    def test_payloads_keep_submission_order(self, small_cluster, pool2):
        payloads, _ = self._run(small_cluster, pool2)
        assert payloads == self.TASKS

    def test_backends_merge_identically(self, small_cluster, pool2):
        serial_payloads, serial = self._run(small_cluster, SerialExecutor())
        parallel_payloads, parallel = self._run(small_cluster, pool2)
        assert serial_payloads == parallel_payloads
        for ms, mp in zip(serial.machines, parallel.machines):
            assert ms.clock == mp.clock
            assert ms.daemon_clock == mp.daemon_clock
            assert ms.memory_used == mp.memory_used
            assert ms.peak_memory == mp.peak_memory
            assert ms.counters == mp.counters
        assert np.array_equal(
            serial.network.bytes_sent, parallel.network.bytes_sent
        )
        assert serial.network.messages == parallel.network.messages

    def test_repeated_batches_are_stable(self, small_cluster, pool2):
        _, first = self._run(small_cluster, pool2)
        _, second = self._run(small_cluster, pool2)
        assert [m.clock for m in first.machines] == [
            m.clock for m in second.machines
        ]


class TestFailurePropagation:
    def test_oom_surfaces_with_partial_state(self, small_cluster, pool2):
        capped = Cluster(small_cluster.partition, small_cluster.cost_model, 1024)
        with pytest.raises(SimulatedMemoryError) as excinfo:
            pool2.run_tasks(capped, oom_task, [1, 2])
        assert excinfo.value.machine_id == 1
        # The failing task's work up to the OOM is merged (serial parity);
        # the second task never happened as far as the cluster is concerned.
        assert capped.machine(1).counters["pre_oom_ops"] == 5
        assert capped.machine(2).counters["pre_oom_ops"] == 0

    def test_oom_in_serial_matches(self, small_cluster):
        capped = Cluster(small_cluster.partition, small_cluster.cost_model, 1024)
        with pytest.raises(SimulatedMemoryError):
            SerialExecutor().run_tasks(capped, oom_task, [1, 2])
        assert capped.machine(1).counters["pre_oom_ops"] == 5
        assert capped.machine(2).counters["pre_oom_ops"] == 0

    def test_worker_crash_is_surfaced_and_pool_recovers(self, small_cluster):
        with ProcessExecutor(2) as executor:
            with pytest.raises(WorkerCrashError):
                executor.run_tasks(
                    small_cluster.fresh_copy(), crash_task, [0]
                )
            # A fresh pool is spun up transparently for the next batch.
            payloads = executor.run_tasks(
                small_cluster.fresh_copy(), charge_task, [(0, 1)]
            )
            assert payloads == [(0, 1)]


class TestBackendSelection:
    def test_get_executor(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(0), SerialExecutor)
        parallel = get_executor(3)
        try:
            assert isinstance(parallel, ProcessExecutor)
            assert parallel.workers == 3
        finally:
            parallel.close()

    def test_process_executor_uses_multiple_processes(
        self, small_cluster, pool2
    ):
        pids = set(
            pool2.run_tasks(
                small_cluster.fresh_copy(), pid_task, list(range(8))
            )
        )
        assert os.getpid() not in pids


class TestRunResultParity:
    """Serial and process backends agree on every RunResult field.

    RADS runs with work stealing disabled: reactive stealing is schedule
    driven, so only the steal-free configuration is defined to match the
    serial clock interleaving bit for bit.  The join engines are barrier
    synchronised and match as-is.
    """

    @pytest.mark.parametrize("query", ["q1", "q4"])
    @pytest.mark.parametrize(
        "make_engine",
        [
            lambda: RADSEngine(enable_work_stealing=False),
            TwinTwigEngine,
        ],
        ids=["RADS-nosteal", "TwinTwig"],
    )
    def test_parity(self, small_cluster, pool2, make_engine, query):
        pattern = named_patterns()[query]
        serial = make_engine().run(
            small_cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        parallel = make_engine().run(
            small_cluster.fresh_copy(), pattern,
            collect_embeddings=False, executor=pool2,
        )
        assert serial.embedding_count == parallel.embedding_count
        assert serial.makespan == parallel.makespan
        assert serial.total_comm_bytes == parallel.total_comm_bytes
        assert serial.peak_memory == parallel.peak_memory
        assert serial.per_machine_time == parallel.per_machine_time
        assert serial.counters == parallel.counters
        assert serial.failed == parallel.failed
