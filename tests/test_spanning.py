"""Tests for MLST / connected dominating set machinery (paper Sec. 4.1)."""

import pytest

from repro.query.patterns import (
    PAPER_QUERIES,
    clique,
    path,
    running_example,
    square,
    star,
    triangle,
)
from repro.query.spanning import (
    connected_dominating_sets,
    connected_domination_number,
    maximum_leaf_spanning_tree,
    minimum_connected_dominating_set,
    spanning_trees,
    tree_leaf_count,
)


class TestSpanningTrees:
    def test_triangle_has_three(self):
        assert len(spanning_trees(triangle())) == 3

    def test_square_has_four(self):
        assert len(spanning_trees(square())) == 4

    def test_trees_have_n_minus_1_edges(self):
        for tree in spanning_trees(PAPER_QUERIES["q4"]):
            assert len(tree) == PAPER_QUERIES["q4"].num_vertices - 1

    def test_k4_cayley(self):
        # Cayley's formula: K4 has 4^2 = 16 spanning trees.
        assert len(spanning_trees(clique(4))) == 16


class TestMLST:
    def test_star_all_leaves(self):
        tree, leaves = maximum_leaf_spanning_tree(star(4))
        assert leaves == 4

    def test_path_two_leaves(self):
        _, leaves = maximum_leaf_spanning_tree(path(5))
        assert leaves == 2

    def test_leaf_count_helper(self):
        assert tree_leaf_count(3, ((0, 1), (1, 2))) == 2


class TestCDS:
    @pytest.mark.parametrize("pattern,expected", [
        (triangle(), 1),
        (star(3), 1),
        (square(), 2),
        (path(4), 2),
        (path(5), 3),
        (clique(5), 1),
    ])
    def test_domination_number(self, pattern, expected):
        assert connected_domination_number(pattern) == expected

    def test_douglas_identity(self):
        """|V_P| = c_P + l_P (Douglas 1992), used by Theorem 1."""
        for name, p in PAPER_QUERIES.items():
            _, leaves = maximum_leaf_spanning_tree(p)
            assert p.num_vertices == connected_domination_number(p) + leaves, name

    def test_cds_is_dominating_and_connected(self):
        p = PAPER_QUERIES["q8"]
        cds = minimum_connected_dominating_set(p)
        for v in p.vertices():
            assert v in cds or (p.adj(v) & cds)

    def test_all_cds_of_size(self):
        sets = connected_dominating_sets(square(), 2)
        # Any adjacent pair dominates the square.
        assert len(sets) == 4

    def test_running_example_cp_is_3(self):
        assert connected_domination_number(running_example()) == 3
