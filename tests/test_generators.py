"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.graph import (
    community_graph,
    connected_components,
    diameter_lower_bound,
    erdos_renyi,
    grid_road_network,
    powerlaw_cluster,
    preferential_attachment,
    triangle_count,
)


class TestDeterminism:
    @pytest.mark.parametrize("factory", [
        lambda s: erdos_renyi(60, 0.1, seed=s),
        lambda s: grid_road_network(8, 8, 0.1, seed=s),
        lambda s: preferential_attachment(100, 3, seed=s),
        lambda s: powerlaw_cluster(100, 3, seed=s),
        lambda s: community_graph(6, 8, 0.5, 2, seed=s),
    ])
    def test_same_seed_same_graph(self, factory):
        assert factory(7) == factory(7)

    def test_different_seed_differs(self):
        assert erdos_renyi(60, 0.1, seed=1) != erdos_renyi(60, 0.1, seed=2)


class TestGridRoadNetwork:
    def test_size(self):
        g = grid_road_network(10, 7)
        assert g.num_vertices == 70

    def test_low_degree(self):
        g = grid_road_network(20, 20, extra_edge_prob=0.05, seed=0)
        assert g.average_degree() < 4.5

    def test_connected(self):
        g = grid_road_network(10, 10, seed=0)
        assert len(set(connected_components(g))) == 1

    def test_large_diameter(self):
        g = grid_road_network(20, 20, extra_edge_prob=0, seed=0)
        assert diameter_lower_bound(g) >= 20


class TestPreferentialAttachment:
    def test_heavy_tail(self):
        g = preferential_attachment(500, 3, seed=0)
        degrees = g.degrees()
        assert degrees.max() > 5 * np.median(degrees)

    def test_edge_count(self):
        g = preferential_attachment(200, 4, seed=1)
        # m edges per new vertex plus the seed clique.
        assert g.num_edges >= 4 * (200 - 5)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            preferential_attachment(3, 5)


class TestPowerlawCluster:
    def test_more_triangles_than_ba(self):
        ba = preferential_attachment(300, 4, seed=2)
        hk = powerlaw_cluster(300, 4, triangle_prob=0.8, seed=2)
        assert triangle_count(hk) > triangle_count(ba)

    def test_connected(self):
        g = powerlaw_cluster(200, 3, seed=3)
        assert len(set(connected_components(g))) == 1


class TestCommunityGraph:
    def test_size(self):
        g = community_graph(5, 10, seed=0)
        assert g.num_vertices == 50

    def test_clique_rich(self):
        g = community_graph(8, 10, intra_prob=0.7, seed=1)
        assert triangle_count(g) > 100
