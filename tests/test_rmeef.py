"""Focused tests for the R-Meef worker (trie maintenance, EVI, caching)."""

import pytest

from repro.cluster import Cluster
from repro.core.cache import ForeignVertexCache
from repro.core.rmeef import RMeefWorker
from repro.core.sme import SingleMachineSplit
from repro.engines import SingleMachineEngine
from repro.graph import erdos_renyi
from repro.query import best_execution_plan, named_patterns
from repro.query.symmetry import symmetry_breaking_constraints


@pytest.fixture(scope="module")
def setting():
    graph = erdos_renyi(80, 0.1, seed=31)
    cluster = Cluster.create(graph, 4)
    return graph, cluster


def build_worker(cluster, pattern, machine_id, flush_threshold=4 << 20):
    plan = best_execution_plan(pattern)
    cons = symmetry_breaking_constraints(pattern)
    return (
        RMeefWorker(
            cluster, pattern, plan, cons, machine_id,
            ForeignVertexCache(), flush_threshold=flush_threshold,
        ),
        SingleMachineSplit(pattern, plan, cons),
    )


class TestWorkerCorrectness:
    @pytest.mark.parametrize("qname", ["q2", "q4", "q7", "cq3"])
    def test_all_machines_union_is_truth(self, setting, qname):
        graph, base = setting
        pattern = named_patterns()[qname]
        cluster = base.fresh_copy()
        expected = set(
            SingleMachineEngine().run(base.fresh_copy(), pattern).embeddings
        )
        found: list[tuple[int, ...]] = []
        for t in range(cluster.num_machines):
            worker, split = build_worker(cluster, pattern, t)
            local = cluster.partition.machine(t)
            sme = split.run(local, cluster.machine(t))
            found.extend(sme.embeddings)
            c1, c2 = split.split(local)
            found.extend(worker.process_group(c2))
        assert set(found) == expected
        assert len(found) == len(expected)

    def test_tiny_flush_threshold_still_correct(self, setting):
        """Streaming the final round in minimal chunks must not change
        results (only the verifyE batching granularity)."""
        graph, base = setting
        pattern = named_patterns()["q4"]
        expected = set(
            SingleMachineEngine().run(base.fresh_copy(), pattern).embeddings
        )
        cluster = base.fresh_copy()
        found = []
        for t in range(cluster.num_machines):
            worker, split = build_worker(
                cluster, pattern, t, flush_threshold=1
            )
            local = cluster.partition.machine(t)
            sme = split.run(local, cluster.machine(t))
            found.extend(sme.embeddings)
            _, c2 = split.split(local)
            found.extend(worker.process_group(c2))
        assert set(found) == expected

    def test_stolen_group_processed_remotely(self, setting):
        """A group of machine 1's candidates processed on machine 0 (the
        shareR path) yields exactly machine 1's distributed results."""
        graph, base = setting
        pattern = named_patterns()["q2"]
        cluster = base.fresh_copy()
        _, split = build_worker(cluster, pattern, 1)
        local1 = cluster.partition.machine(1)
        _, group = split.split(local1)
        home_worker, _ = build_worker(base.fresh_copy(), pattern, 1)
        thief_worker, _ = build_worker(cluster, pattern, 0)
        home = home_worker.process_group(group)
        stolen = thief_worker.process_group(group)
        assert set(stolen) == set(home)

    def test_memory_returns_to_baseline(self, setting):
        """After a group completes, only cache bytes stay allocated."""
        graph, base = setting
        pattern = named_patterns()["q4"]
        cluster = base.fresh_copy()
        worker, split = build_worker(cluster, pattern, 0)
        local = cluster.partition.machine(0)
        _, c2 = split.split(local)
        worker.process_group(c2)
        machine = cluster.machine(0)
        assert machine.memory_used == worker._cache.bytes_used

    def test_count_only(self, setting):
        graph, base = setting
        pattern = named_patterns()["q2"]
        cluster = base.fresh_copy()
        worker, split = build_worker(cluster, pattern, 0)
        _, c2 = split.split(cluster.partition.machine(0))
        collected = worker.process_group(c2, collect=True)
        cluster2 = base.fresh_copy()
        worker2, split2 = build_worker(cluster2, pattern, 0)
        _, c2b = split2.split(cluster2.partition.machine(0))
        empty = worker2.process_group(c2b, collect=False)
        assert empty == []
        assert worker2.last_group_count == len(collected)


class TestStarvedCache:
    def test_single_entry_cache_still_correct(self, setting):
        """Regression: a cache smaller than a fetch batch must not drop
        start candidates (they are re-fetched on demand)."""
        graph, base = setting
        pattern = named_patterns()["q2"]
        cluster = base.fresh_copy()
        plan_worker, split = build_worker(cluster, pattern, 0)
        local1 = cluster.partition.machine(1)
        _, group = split.split(local1)
        # Stolen group (all-foreign candidates) + one-entry cache.
        from repro.query import best_execution_plan
        from repro.query.symmetry import symmetry_breaking_constraints

        plan = best_execution_plan(pattern)
        cons = symmetry_breaking_constraints(pattern)
        starved = RMeefWorker(
            cluster, pattern, plan, cons, 0, ForeignVertexCache(0)
        )
        roomy = RMeefWorker(
            base.fresh_copy(), pattern, plan, cons, 0, ForeignVertexCache()
        )
        assert set(starved.process_group(group)) == set(
            roomy.process_group(group)
        )


class TestWorkerCommunication:
    def test_cache_prevents_refetch(self, setting):
        graph, base = setting
        pattern = named_patterns()["q4"]
        cluster = base.fresh_copy()
        worker, split = build_worker(cluster, pattern, 0)
        _, c2 = split.split(cluster.partition.machine(0))
        if not c2:
            pytest.skip("no distributed candidates on this partition")
        worker.process_group(c2)
        bytes_first = cluster.total_comm_bytes()
        worker.process_group(c2)  # same group again: everything cached
        bytes_second = cluster.total_comm_bytes() - bytes_first
        assert bytes_second < bytes_first or bytes_first == 0

    def test_daemon_serves_requests(self, setting):
        """Remote fetch/verify service lands on daemon clocks, not main."""
        graph, base = setting
        pattern = named_patterns()["q4"]
        cluster = base.fresh_copy()
        worker, split = build_worker(cluster, pattern, 0)
        _, c2 = split.split(cluster.partition.machine(0))
        worker.process_group(c2)
        remote_daemons = sum(
            m.daemon_clock for m in cluster.machines if m.machine_id != 0
        )
        if cluster.total_comm_bytes() > 0:
            assert remote_daemons > 0
