"""Tests for the EXPERIMENTS.md generator."""


from repro.bench.reportgen import SECTIONS, generate


class TestReportGen:
    def test_generates_with_missing_tables(self, tmp_path):
        target = tmp_path / "EXPERIMENTS.md"
        text = generate(out_dir=tmp_path / "empty", target=target)
        assert target.exists()
        assert "Missing tables" in text
        assert "paper vs. measured" in text

    def test_includes_available_tables(self, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        (out / "table1_datasets.txt").write_text("Table 1 demo content\n")
        text = generate(out_dir=out, target=tmp_path / "E.md")
        assert "Table 1 demo content" in text

    def test_every_section_has_claims(self):
        for stem, title, paper, observed in SECTIONS:
            assert stem and title and paper and observed

    def test_covers_all_paper_artifacts(self):
        stems = {s for s, *_ in SECTIONS}
        for required in (
            "table1_datasets", "table2_crystal_index", "fig8_roadnet",
            "fig9_dblp", "fig10_livejournal", "fig11_uk2002",
            "fig12_scalability_roadnet", "fig13_plans_dblp",
            "table3_compression_roadnet", "table4_compression_dblp",
            "fig15_clique_roadnet", "robustness_memory",
        ):
            assert required in stems, required
