"""Production service tier: shard registry, tenant quotas, tiered cache.

Covers the elastic-roster path end to end (workers announce, crash, get
replaced without a server restart), the persistent disk tier (a fresh
server over the same directory serves byte-identical results), the
per-tenant quota/fair-share accounting, and the submit/field validation
and stats-accounting fixes that rode along:

- ``submit()`` rejects malformed ``memory_mb``/``limit``/``tenant``
  overrides loudly at submit time;
- ``ResultCache`` sweeps TTL-expired entries (as ``expirations``) before
  LRU-evicting live ones;
- ``stats()["queued"]`` counts live queued work, not raw heap entries;
- malformed submit protocol fields get an error naming the field and
  the connection stays serviceable.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

import repro
from repro.api import RunConfig
from repro.api.config import MIB
from repro.api.registry import EngineRegistry, EngineSpec
from repro.cli import main as cli_main
from repro.cluster import Cluster
from repro.core.rads import RADSEngine
from repro.distributed import ShardRegistry, ShardWorker, SocketExecutor
from repro.engines.base import EnumerationEngine, RunResult
from repro.graph import erdos_renyi
from repro.query import named_patterns
from repro.service import (
    AdmissionError,
    QueryScheduler,
    QueryServer,
    QuotaExceeded,
    ResultCache,
    TenantLedger,
    TenantQuota,
    connect,
    key_digest,
)
from repro.service import protocol
from repro.service.cache import cache_key


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, seed=17)


def triangle(name="triangle"):
    return repro.pattern("a-b, b-c, c-a").copy_with_name(name)


def _result(name="triangle", count=5, embeddings=None):
    return RunResult(
        engine="RADS",
        pattern_name=name,
        embedding_count=count,
        makespan=1.5,
        total_comm_bytes=10,
        peak_memory=20,
        per_machine_time=[1.0, 1.5],
        embeddings=embeddings,
    )


def _addr(worker: ShardWorker) -> str:
    host, port = worker.address
    return f"{host}:{port}"


def _poll(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def _stripped(result: RunResult) -> dict:
    """``to_dict()`` minus the per-request ``service.*`` counters."""
    record = result.to_dict()
    record["counters"] = {
        key: value
        for key, value in record["counters"].items()
        if not key.startswith("service.")
    }
    return record


# ----------------------------------------------------------------------
# Shard registry
# ----------------------------------------------------------------------
class TestShardRegistry:
    def test_announce_withdraw_and_versioning(self):
        clock = [0.0]
        registry = ShardRegistry(clock=lambda: clock[0])
        v1 = registry.announce("127.0.0.1:9001", graphs=["f1"], workers=2,
                               pid=41)
        assert registry.addresses() == ["127.0.0.1:9001"]
        assert len(registry) == 1
        # A re-announce (any address spelling) refreshes without a
        # membership edit; the announce count still advances.
        assert registry.announce(("127.0.0.1", 9001)) == v1
        assert registry.announces("127.0.0.1:9001") == 2
        v2 = registry.announce("127.0.0.1:9002")
        assert v2 == v1 + 1
        assert registry.withdraw("127.0.0.1:9001") is True
        assert registry.withdraw("127.0.0.1:9001") is False
        assert registry.addresses() == ["127.0.0.1:9002"]
        assert registry.version() == v2 + 1
        assert registry.announces("127.0.0.1:9001") == 0

    def test_stale_entries_leave_the_roster_but_not_the_snapshot(self):
        clock = [0.0]
        registry = ShardRegistry(stale_after=45.0, clock=lambda: clock[0])
        registry.announce("127.0.0.1:9001")
        registry.announce("127.0.0.1:9002")
        clock[0] = 30.0
        registry.announce("127.0.0.1:9002")  # keeps itself fresh
        clock[0] = 46.0
        assert registry.addresses() == ["127.0.0.1:9002"]
        assert len(registry) == 1
        by_address = {e["address"]: e for e in registry.snapshot()}
        # The silent worker is still visible to an operator, flagged.
        assert by_address["127.0.0.1:9001"]["stale"] is True
        assert by_address["127.0.0.1:9002"]["stale"] is False

    def test_stale_after_none_never_expires(self):
        clock = [0.0]
        registry = ShardRegistry(stale_after=None, clock=lambda: clock[0])
        registry.announce("127.0.0.1:9001")
        clock[0] = 1e9
        assert registry.addresses() == ["127.0.0.1:9001"]

    def test_invalid_stale_after(self):
        with pytest.raises(ValueError, match="stale_after"):
            ShardRegistry(stale_after=0)


# ----------------------------------------------------------------------
# Tenant quotas (ledger unit level)
# ----------------------------------------------------------------------
class TestTenantLedger:
    def test_token_bucket_refills_on_the_injected_clock(self):
        clock = [0.0]
        ledger = TenantLedger(
            {"a": TenantQuota(rate=1.0, burst=2)}, clock=lambda: clock[0]
        )
        ledger.admit("a")
        ledger.admit("a")
        with pytest.raises(QuotaExceeded, match="rate"):
            ledger.admit("a")
        clock[0] = 1.0  # one token back
        ledger.admit("a")
        with pytest.raises(QuotaExceeded):
            ledger.admit("a")
        assert ledger.stats()["a"]["rejected_rate"] == 2

    def test_anonymous_and_unquotad_tenants_are_never_limited(self):
        ledger = TenantLedger({"a": TenantQuota(rate=0.001, burst=1)})
        for _ in range(10):
            ledger.admit(None)
            ledger.admit("free-rider")
        assert ledger.stats()["*"]["rejected_rate"] == 0

    def test_default_quota_applies_to_unlisted_tenants(self):
        ledger = TenantLedger(
            {"vip": TenantQuota(memory_mb=100)},
            default=TenantQuota(memory_mb=1),
        )
        assert ledger.memory_bytes("vip") == 100 * MIB
        assert ledger.memory_bytes("anyone") == 1 * MIB
        assert ledger.memory_bytes(None) is None

    def test_fair_key_is_reserved_per_unit_weight(self):
        ledger = TenantLedger({"heavy": TenantQuota(weight=2.0)})
        ledger.reserve("heavy", 100)
        ledger.reserve("light", 100)
        assert ledger.fair_key("heavy") == 50.0
        assert ledger.fair_key("light") == 100.0
        assert ledger.fair_key("idle") == 0.0
        ledger.release("heavy", 100)
        assert ledger.fair_key("heavy") == 0.0

    def test_headroom_tracks_reservations(self):
        ledger = TenantLedger({"a": TenantQuota(memory_mb=1)})
        assert ledger.has_headroom("a", MIB)
        ledger.reserve("a", MIB)
        assert not ledger.has_headroom("a", 1)
        ledger.release("a", MIB)
        assert ledger.has_headroom("a", MIB)

    def test_quota_validation(self):
        for bad in (
            dict(rate=0), dict(rate=-1), dict(burst=0), dict(memory_mb=0),
            dict(weight=0), dict(weight=-2.0),
        ):
            with pytest.raises(ValueError):
                TenantQuota(**bad)
        assert TenantQuota(rate=2.5).bucket_size == 3.0
        assert TenantQuota().bucket_size is None

    def test_ledger_validation(self):
        with pytest.raises(ValueError, match="tenant names"):
            TenantLedger({"": TenantQuota()})
        with pytest.raises(TypeError, match="TenantQuota"):
            TenantLedger({"a": {"rate": 1.0}})

    def test_stats_reports_anonymous_under_star(self):
        ledger = TenantLedger()
        ledger.note(None, "submitted")
        ledger.note("acme", "completed")
        stats = ledger.stats()
        assert stats["*"]["submitted"] == 1
        assert stats["acme"]["completed"] == 1
        assert stats["acme"]["weight"] == 1.0


# ----------------------------------------------------------------------
# A stub engine with per-pattern gates (finer-grained than
# tests/test_service.py's single shared gate).
# ----------------------------------------------------------------------
class _GatedEngine(EnumerationEngine):
    """Deterministic engine; runs block on a per-pattern-name event."""

    name = "Gated"
    gates: "dict[str, threading.Event]" = {}
    executed: list[str] = []
    lock = threading.Lock()

    def _execute(self, cluster, pattern, constraints, collect, executor):
        gate = _GatedEngine.gates.get(pattern.name)
        if gate is not None:
            assert gate.wait(timeout=30)
        with _GatedEngine.lock:
            _GatedEngine.executed.append(pattern.name)
        self._count = pattern.num_vertices
        return [tuple(range(pattern.num_vertices))] if collect else []


@pytest.fixture()
def gated_registry():
    registry = EngineRegistry()
    registry.register(EngineSpec(name="Gated", engine_cls=_GatedEngine))
    _GatedEngine.gates = {}
    _GatedEngine.executed = []
    yield registry
    _GatedEngine.gates = {}


# ----------------------------------------------------------------------
# Submit-time validation (per-request overrides)
# ----------------------------------------------------------------------
class TestSubmitValidation:
    @pytest.fixture()
    def scheduler(self, graph, gated_registry):
        with QueryScheduler(
            graph, RunConfig(machines=2), gated_registry, threads=1
        ) as scheduler:
            yield scheduler

    @pytest.mark.parametrize("memory_mb", [-5, 0, "8", True, float("nan")])
    def test_bad_memory_mb_is_rejected(self, scheduler, memory_mb):
        with pytest.raises(ValueError, match="memory_mb"):
            scheduler.submit("triangle", "gated", memory_mb=memory_mb)

    @pytest.mark.parametrize("limit", [0, -1, 2.5, True, "3"])
    def test_bad_limit_is_rejected(self, scheduler, limit):
        with pytest.raises(ValueError, match="limit"):
            scheduler.submit("triangle", "gated", limit=limit)

    @pytest.mark.parametrize("tenant", ["", 7, 1.5])
    def test_bad_tenant_is_rejected(self, scheduler, tenant):
        with pytest.raises(ValueError, match="tenant"):
            scheduler.submit("triangle", "gated", tenant=tenant)

    def test_rejected_submissions_touch_nothing(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.submit("triangle", "gated", limit=0)
        stats = scheduler.stats()
        assert stats["submitted"] == 0
        assert stats["queued"] == 0


# ----------------------------------------------------------------------
# Cache eviction ordering (the bugfix: sweep expired before evicting)
# ----------------------------------------------------------------------
class TestCacheEvictionSweep:
    def test_expired_entries_are_swept_before_live_ones_are_evicted(self):
        now = [0.0]
        cache = ResultCache(capacity=2, ttl=10.0, clock=lambda: now[0])
        p = triangle()
        cache.put(("a",), p, _result())           # expires at 10
        now[0] = 5.0
        cache.put(("b",), p, _result())           # expires at 15
        now[0] = 12.0                             # "a" is now dead weight
        cache.put(("c",), p, _result())
        # The live entry survived: capacity pressure removed the expired
        # one, counted as an expiration, not an eviction.
        assert cache.get(("b",), p) is not None
        assert cache.get(("c",), p) is not None
        assert cache.get(("a",), p) is None
        assert cache.expirations == 1
        assert cache.evictions == 0

    def test_live_lru_eviction_still_works_when_nothing_expired(self):
        cache = ResultCache(capacity=2, ttl=100.0, clock=lambda: 0.0)
        p = triangle()
        cache.put(("a",), p, _result())
        cache.put(("b",), p, _result())
        cache.put(("c",), p, _result())
        assert cache.get(("a",), p) is None
        assert cache.evictions == 1
        assert cache.expirations == 0


# ----------------------------------------------------------------------
# Persistent disk tier
# ----------------------------------------------------------------------
class TestDiskTier:
    def test_restart_round_trip_is_byte_identical(self, tmp_path):
        p = triangle()
        stored = _result(embeddings=[(1, 2, 3), (4, 5, 6)])
        first = ResultCache(disk_dir=tmp_path / "cache")
        first.put(("k",), p, stored)
        assert first.disk_writes == 1
        reference = first.get(("k",), p)
        # A brand-new cache over the same directory (a restarted server)
        # serves the spilled entry, byte for byte.
        second = ResultCache(disk_dir=tmp_path / "cache")
        assert len(second) == 0
        served = second.get(("k",), p)
        assert served is not None
        assert served.to_dict() == reference.to_dict()
        assert second.disk_hits == 1
        # The hit was promoted into memory: the next get stays there.
        second.get(("k",), p)
        assert second.disk_hits == 1

    def test_key_digest_is_stable_and_discriminating(self):
        key = ("fp", ("canon", 1), "RADS", "digest", True)
        assert key_digest(key) == key_digest(key)
        assert key_digest(key) != key_digest(key[:-1] + (False,))

    def test_tampered_spill_file_is_a_miss_not_a_wrong_answer(self, tmp_path):
        p = triangle()
        first = ResultCache(disk_dir=tmp_path)
        first.put(("k",), p, _result())
        path = tmp_path / f"{key_digest(('k',))}.json"
        record = json.loads(path.read_text())
        record["key"] = ["not-the-key"]
        path.write_text(json.dumps(record))
        second = ResultCache(disk_dir=tmp_path)
        assert second.get(("k",), p) is None
        assert second.disk_errors == 1
        assert not path.exists()  # the bad file was dropped

    def test_corrupt_spill_file_is_tolerated(self, tmp_path):
        p = triangle()
        first = ResultCache(disk_dir=tmp_path)
        first.put(("k",), p, _result())
        path = tmp_path / f"{key_digest(('k',))}.json"
        path.write_text("not json at all")
        second = ResultCache(disk_dir=tmp_path)
        assert second.get(("k",), p) is None
        assert second.disk_errors == 1

    def test_disk_ttl_uses_wall_clock_across_restarts(self, tmp_path):
        wall = [1000.0]
        p = triangle()
        first = ResultCache(
            ttl=10.0, disk_dir=tmp_path, wall_clock=lambda: wall[0]
        )
        first.put(("k",), p, _result())
        wall[0] = 1020.0  # "restart" 20 wall-clock seconds later
        second = ResultCache(
            ttl=10.0, disk_dir=tmp_path, wall_clock=lambda: wall[0]
        )
        assert second.get(("k",), p) is None
        assert second.disk_expirations == 1

    def test_disk_capacity_evicts_oldest_spill(self, tmp_path):
        p = triangle()
        cache = ResultCache(disk_dir=tmp_path, disk_capacity=2)
        cache.put(("a",), p, _result())
        cache.put(("b",), p, _result())
        cache.put(("c",), p, _result())
        assert cache.disk_evictions == 1
        assert not (tmp_path / f"{key_digest(('a',))}.json").exists()
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get(("a",), p) is None
        assert fresh.get(("b",), p) is not None
        assert fresh.get(("c",), p) is not None

    def test_stats_reports_the_disk_tier(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path, disk_capacity=4)
        cache.put(("k",), triangle(), _result())
        disk = cache.stats()["disk"]
        assert disk["entries"] == 1
        assert disk["writes"] == 1
        assert disk["capacity"] == 4
        assert ResultCache().stats()["disk"] is None


# ----------------------------------------------------------------------
# Scheduler: queued-stat fix + tenant quotas under load
# ----------------------------------------------------------------------
class TestQueuedStat:
    def test_queued_counts_live_work_not_heap_entries(
        self, graph, gated_registry
    ):
        _GatedEngine.gates["cycle3"] = gate = threading.Event()
        from repro.query.pattern_gen import cycle

        with QueryScheduler(
            graph, RunConfig(machines=2), gated_registry, threads=1
        ) as scheduler:
            blocker = scheduler.submit(cycle(3), "gated")
            _poll(lambda: scheduler.stats()["running"] == 1,
                  message="blocker running")
            first = scheduler.submit(cycle(4), "gated")
            # A dedup rider escalating priority re-pushes the execution:
            # two heap entries, one unit of queued work.
            rider = scheduler.submit(cycle(4), "gated", priority=5)
            assert rider.deduped
            assert scheduler.stats()["queued"] == 1
            # Cancelling every waiter leaves heap garbage but no live
            # queued work.
            assert first.cancel() and rider.cancel()
            assert scheduler.stats()["queued"] == 0
            gate.set()
            blocker.result(30)


class TestTenantScheduler:
    def test_rate_limited_tenant_is_rejected_loudly(
        self, graph, gated_registry
    ):
        from repro.query.pattern_gen import cycle

        with QueryScheduler(
            graph,
            RunConfig(machines=2),
            gated_registry,
            threads=1,
            tenants={"metered": TenantQuota(rate=0.001, burst=2)},
        ) as scheduler:
            scheduler.submit(cycle(3), "gated", tenant="metered").result(30)
            scheduler.submit(cycle(4), "gated", tenant="metered").result(30)
            with pytest.raises(QuotaExceeded, match="metered"):
                scheduler.submit(cycle(5), "gated", tenant="metered")
            # Other tenants are untouched by the metered bucket.
            scheduler.submit(cycle(6), "gated", tenant="other").result(30)
            stats = scheduler.stats()
        assert stats["quota_rejected"] == 1
        assert stats["tenants"]["metered"]["rejected_rate"] == 1

    def test_cache_hits_consume_rate_tokens_too(self, graph, gated_registry):
        from repro.query.pattern_gen import cycle

        with QueryScheduler(
            graph,
            RunConfig(machines=2),
            gated_registry,
            threads=1,
            tenants={"metered": TenantQuota(rate=0.001, burst=2)},
        ) as scheduler:
            scheduler.submit(cycle(3), "gated", tenant="metered").result(30)
            hit = scheduler.submit(cycle(3), "gated", tenant="metered")
            assert hit.cache_hit
            with pytest.raises(QuotaExceeded):
                scheduler.submit(cycle(3), "gated", tenant="metered")

    def test_never_fitting_tenant_request_fails_at_submit(
        self, graph, gated_registry
    ):
        config = RunConfig(machines=2, memory_mb=10)  # 20 MiB per query
        with QueryScheduler(
            graph,
            config,
            gated_registry,
            threads=2,
            tenants={"small": TenantQuota(memory_mb=10)},
        ) as scheduler:
            with pytest.raises(AdmissionError, match="small"):
                scheduler.submit("triangle", "gated", tenant="small")
            stats = scheduler.stats()
        assert stats["rejected"] == 1
        assert stats["tenants"]["small"]["rejected_memory"] == 1

    def test_over_budget_tenant_is_deferred_without_blocking_others(
        self, graph, gated_registry
    ):
        from repro.query.pattern_gen import cycle

        _GatedEngine.gates["cycle3"] = gate = threading.Event()
        config = RunConfig(machines=2, memory_mb=10)  # 20 MiB per query
        with QueryScheduler(
            graph,
            config,
            gated_registry,
            threads=2,
            tenants={"a": TenantQuota(memory_mb=20)},  # one query at a time
        ) as scheduler:
            running = scheduler.submit(cycle(3), "gated", tenant="a")
            _poll(lambda: scheduler.stats()["running"] == 1,
                  message="tenant a's first query running")
            waiting = scheduler.submit(cycle(4), "gated", tenant="a")
            other = scheduler.submit(cycle(5), "gated", tenant="b")
            # Tenant b sails past a's deferred work on the free thread.
            other.result(30)
            assert not waiting.done()
            assert scheduler.stats()["queued"] == 1
            gate.set()
            running.result(30)
            waiting.result(30)
        tenants = scheduler.stats()["tenants"]
        assert tenants["a"]["completed"] == 2
        assert tenants["b"]["completed"] == 1

    def test_fair_share_prefers_the_less_loaded_tenant(
        self, graph, gated_registry
    ):
        from repro.query.pattern_gen import cycle

        _GatedEngine.gates["cycle3"] = g1 = threading.Event()
        _GatedEngine.gates["cycle4"] = g2 = threading.Event()
        with QueryScheduler(
            graph, RunConfig(machines=2, memory_mb=10), gated_registry,
            threads=2,
        ) as scheduler:
            # Tenant a holds both worker threads (reserved = 2 queries).
            a1 = scheduler.submit(cycle(3), "gated", tenant="a")
            a2 = scheduler.submit(cycle(4), "gated", tenant="a")
            _poll(lambda: scheduler.stats()["running"] == 2,
                  message="both blockers running")
            # FIFO order says a3 first; fair share says b1 first because
            # tenant a still holds a reservation when the thread frees.
            a3 = scheduler.submit(cycle(5), "gated", tenant="a")
            b1 = scheduler.submit(cycle(6), "gated", tenant="b")
            g1.set()  # frees one thread; a still holds a2's reservation
            b1.result(30)
            a3.result(30)
            g2.set()
            a1.result(30)
            a2.result(30)
        assert _GatedEngine.executed.index("cycle6") < \
            _GatedEngine.executed.index("cycle5")


# ----------------------------------------------------------------------
# Server: protocol validation, announce + metrics ops
# ----------------------------------------------------------------------
@pytest.fixture()
def server(graph):
    server = QueryServer(graph, RunConfig(machines=3), threads=2)
    with server:
        yield server


class TestProtocolValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("priority", "high"),
            ("memory_mb", "8"),
            ("limit", 0),
            ("collect", "yes"),
            ("tenant", ""),
            ("timeout", -1),
            ("engine", 7),
        ],
    )
    def test_malformed_field_names_the_field_and_keeps_the_socket(
        self, server, field, value
    ):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            assert protocol.read_message(stream)["kind"] == "hello"
            protocol.write_message(stream, {
                "op": "submit", "id": 1, "query": "triangle", field: value,
            })
            response = protocol.read_message(stream)
            assert response["id"] == 1 and not response["ok"]
            assert field in response["error"]
            assert repr(value) in response["error"]
            # The connection survives for the next request.
            protocol.write_message(stream, {"op": "ping", "id": 2})
            assert protocol.read_message(stream)["kind"] == "pong"

    def test_announce_op_round_trip(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            protocol.read_message(stream)  # hello
            protocol.write_message(stream, {
                "op": "announce", "id": 1, "address": "127.0.0.1:9410",
                "graphs": ["fp"], "workers": 2, "pid": 99,
            })
            announced = protocol.read_message(stream)
            assert announced["ok"] and announced["kind"] == "announced"
            assert announced["result"]["roster"] == 1
            assert announced["result"]["interval"] == pytest.approx(15.0)
            protocol.write_message(stream, {
                "op": "announce", "id": 2, "address": "127.0.0.1:9410",
                "withdraw": True,
            })
            withdrawn = protocol.read_message(stream)
            assert withdrawn["kind"] == "withdrawn"
            assert withdrawn["result"]["known"] is True
            assert withdrawn["result"]["roster"] == 0
            protocol.write_message(stream, {
                "op": "announce", "id": 3, "address": "no-port-here:xx",
            })
            bad = protocol.read_message(stream)
            assert not bad["ok"] and "address" in bad["error"]

    def test_metrics_op_reports_every_section(self, graph, server):
        with connect(server.address, timeout=60) as client:
            client.submit("triangle", engine="rads", tenant="acme")
            metrics = client.metrics()
        assert metrics["graph"] == graph.fingerprint()
        assert metrics["protocol_version"] == protocol.PROTOCOL_VERSION
        assert metrics["uptime_seconds"] >= 0
        assert metrics["scheduler"]["submitted"] == 1
        assert metrics["cache"]["entries"] == 1
        assert metrics["tenants"]["acme"]["completed"] == 1
        assert metrics["shards"] == {
            "configured": [], "registry": [], "version": 0,
        }

    def test_submit_cli_metrics_flag(self, server, capsys):
        host, port = server.address
        assert cli_main([
            "submit", "--host", host, "--port", str(port), "--metrics",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["protocol_version"] == protocol.PROTOCOL_VERSION
        assert "scheduler" in payload and "shards" in payload


# ----------------------------------------------------------------------
# Elastic roster: announce loop, crash, replacement without restart
# ----------------------------------------------------------------------
class TestElasticRoster:
    def test_worker_announces_on_start_and_withdraws_on_close(self, graph):
        registry = ShardRegistry()
        with QueryServer(
            graph, RunConfig(machines=2), shard_registry=registry
        ) as server:
            worker = ShardWorker(
                announce=server.address, announce_interval=60.0
            ).start()
            _poll(lambda: len(registry) == 1, message="worker announced")
            assert registry.addresses() == [_addr(worker)]
            worker.close()
            # A polite close withdraws synchronously.
            assert registry.addresses() == []

    def test_crashed_worker_stays_in_the_book_until_stale(self, graph):
        registry = ShardRegistry()
        with QueryServer(
            graph, RunConfig(machines=2), shard_registry=registry
        ) as server:
            worker = ShardWorker(
                announce=server.address, announce_interval=60.0
            ).start()
            _poll(lambda: len(registry) == 1, message="worker announced")
            worker.crash()
            worker.close()
            # No goodbye from a killed host: the entry lingers (it would
            # go stale after stale_after seconds on a real clock).
            assert registry.addresses() == [_addr(worker)]

    def test_coordinator_joins_announced_workers_and_scales_down_politely(
        self, graph
    ):
        registry = ShardRegistry()
        pattern = named_patterns()["q1"]
        cluster = Cluster.create(graph, 3)
        serial = RADSEngine().run(
            cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        # Built before any worker exists: the roster is legitimately
        # empty until the first announcement.
        executor = SocketExecutor([], registry=registry,
                                  heartbeat_interval=None)
        w1 = ShardWorker().start()
        w2 = None
        try:
            registry.announce(w1.address, graphs=w1.fingerprints())
            first = RADSEngine().run(
                cluster.fresh_copy(), pattern,
                collect_embeddings=False, executor=executor,
            )
            assert first.embedding_count == serial.embedding_count
            assert first.makespan == serial.makespan
            assert executor.workers == 1
            # Swap the roster: withdraw w1 (polite scale-down), announce
            # a replacement.  The next batch follows the book.
            w2 = ShardWorker().start()
            registry.withdraw(w1.address)
            registry.announce(w2.address)
            second = RADSEngine().run(
                cluster.fresh_copy(), pattern,
                collect_embeddings=False, executor=executor,
            )
            assert second.embedding_count == serial.embedding_count
            assert second.makespan == serial.makespan
            # A withdrawn worker is not a fault: no lost-worker counter.
            assert "distributed.lost_workers" not in second.counters
            assert executor.workers == 1
        finally:
            executor.close()
            w1.close()
            if w2 is not None:
                w2.close()

    def test_worker_killed_mid_run_is_replaced_without_server_restart(
        self, graph
    ):
        """The PR's elastic acceptance path, through the whole server.

        One announced worker serves a query; it is killed (no withdraw),
        a second query hits the dead roster mid-run, and a replacement
        worker announced *while the query is waiting* joins the running
        server — no restart, and the result is bit-identical to serial.
        """
        registry = ShardRegistry()
        session = repro.open(graph).with_cluster(machines=3)
        serial_q2 = session.engine("rads").query("q2").run()
        serial_q1 = session.engine("rads").query("q1").run()
        w1 = ShardWorker().start()
        registry.announce(w1.address, graphs=w1.fingerprints())
        w2 = None
        config = RunConfig(machines=3, backend="socket")
        with QueryServer(
            graph, config, threads=1, shard_registry=registry
        ) as server:
            try:
                with connect(server.address, timeout=60) as client:
                    first = client.submit("q2", engine="rads",
                                          tenant="alice")
                    assert first.embedding_count == serial_q2.embedding_count
                    assert first.makespan == serial_q2.makespan
                    w1.crash()
                    served: list = []

                    def resubmit():
                        with connect(server.address, timeout=60) as second:
                            served.append(
                                second.submit("q1", engine="rads",
                                              tenant="alice")
                            )

                    thread = threading.Thread(target=resubmit)
                    thread.start()
                    time.sleep(0.3)  # let the query hit the dead roster
                    w2 = ShardWorker(
                        announce=server.address, announce_interval=60.0
                    ).start()
                    thread.join(timeout=60)
                    assert not thread.is_alive()
                    assert served, "replacement worker never served"
                    assert served[0].embedding_count == \
                        serial_q1.embedding_count
                    assert served[0].makespan == serial_q1.makespan
                    metrics = client.metrics()
                assert metrics["tenants"]["alice"]["submitted"] == 2
                roster = {
                    e["address"] for e in metrics["shards"]["registry"]
                }
                assert _addr(w2) in roster
            finally:
                w1.close()
                if w2 is not None:
                    w2.close()


# ----------------------------------------------------------------------
# Disk-tier restart through the whole server
# ----------------------------------------------------------------------
class TestServerRestartFromDisk:
    def test_restarted_server_serves_byte_identical_disk_hit(
        self, graph, tmp_path
    ):
        cache_dir = str(tmp_path / "results")
        with QueryServer(
            graph, RunConfig(machines=3), cache_dir=cache_dir
        ) as server:
            with connect(server.address, timeout=60) as client:
                first = client.submit("triangle", engine="rads",
                                      collect=True)
                assert client.last_cache == "miss"
        # A brand-new server process-equivalent over the same directory.
        with QueryServer(
            graph, RunConfig(machines=3), cache_dir=cache_dir
        ) as server:
            with connect(server.address, timeout=60) as client:
                again = client.submit("triangle", engine="rads",
                                      collect=True)
                assert client.last_cache == "hit"
                stats = client.stats()
        assert stats["cache"]["disk"]["hits"] == 1
        # Byte parity modulo the per-request service.* counters.
        assert _stripped(again) == _stripped(first)

    def test_cache_dir_conflicts_are_rejected(self, graph, tmp_path):
        with pytest.raises(ValueError, match="cache_dir"):
            QueryServer(graph, cache=False, cache_dir=str(tmp_path))
        with pytest.raises(ValueError, match="disk_dir"):
            QueryServer(
                graph, cache=ResultCache(), cache_dir=str(tmp_path)
            )

    def test_scheduler_key_matches_disk_spill(self, graph, tmp_path):
        """The spill filename is the digest of the canonical cache key."""
        config = RunConfig(machines=3)
        cache = ResultCache(disk_dir=tmp_path)
        with QueryScheduler(
            graph, config, threads=1, cache=cache
        ) as scheduler:
            scheduler.run("triangle", "rads")
        key = cache_key(
            graph, triangle(), "RADS", config, collect=config.collect
        )
        assert (tmp_path / f"{key_digest(key)}.json").exists()
