"""The structured event journal: ring semantics, filters, sink, wire op.

PR-10 surface: every state transition that used to only bump a counter
now also lands one leveled, JSON-safe record in the process-global
:class:`~repro.obs.events.EventJournal`, queryable over the wire via the
``events`` protocol op (and ``repro events``).  These tests cover the
journal's unit behavior (bounded ring, level/component/since/limit
filters, JSONL sink replay, trace-id capture), the op's validation and
cursor semantics, and a few real emitting sites (announce/withdraw,
quota rejection, cache eviction).
"""

from __future__ import annotations

import pytest

from repro.api import RunConfig
from repro.api.results import read_records_jsonl
from repro.graph import erdos_renyi
from repro.obs import events
from repro.obs.events import EventJournal
from repro.obs.trace import Tracer
from repro.service import QueryServer, connect
from repro.service.client import ServiceError


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(40, 0.15, seed=11)


# ----------------------------------------------------------------------
# Journal unit behavior
# ----------------------------------------------------------------------
class TestEventJournal:
    def test_record_shape(self):
        journal = EventJournal()
        record = journal.emit(
            "warning", "coordinator", events.WORKER_LOST,
            address="127.0.0.1:9001", managed=False,
        )
        assert record["level"] == "warning"
        assert record["component"] == "coordinator"
        assert record["kind"] == "worker.lost"
        assert record["address"] == "127.0.0.1:9001"
        assert record["managed"] is False
        assert record["seq"] == 1
        assert record["ts"] > 0
        assert "trace_id" not in record  # no span active here

    def test_unknown_level_rejected(self):
        journal = EventJournal()
        with pytest.raises(ValueError, match="unknown level"):
            journal.emit("fatal", "x", "y.z")

    def test_ring_is_bounded_and_seq_is_monotonic(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.emit("info", "t", "k", i=i)
        assert len(journal) == 3
        retained = journal.snapshot()
        assert [r["seq"] for r in retained] == [3, 4, 5]
        assert journal.last_seq == 5
        # clear drops records but the seq clock keeps advancing.
        journal.clear()
        assert len(journal) == 0
        assert journal.emit("info", "t", "k")["seq"] == 6

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            EventJournal(capacity=0)

    def test_level_filter_is_a_floor(self):
        journal = EventJournal()
        for level in ("debug", "info", "warning", "error"):
            journal.emit(level, "t", "k")
        kept = journal.snapshot(level="warning")
        assert [r["level"] for r in kept] == ["warning", "error"]
        with pytest.raises(ValueError, match="unknown level"):
            journal.snapshot(level="verbose")

    def test_component_since_and_limit_filters(self):
        journal = EventJournal()
        journal.emit("info", "cache", "cache.evicted")
        journal.emit("info", "scheduler", "admission.timeout")
        journal.emit("info", "cache", "cache.disk_error")
        assert [
            r["kind"] for r in journal.snapshot(component="cache")
        ] == ["cache.evicted", "cache.disk_error"]
        # since is strictly greater — the cursor never re-reads itself.
        assert [r["seq"] for r in journal.snapshot(since=1)] == [2, 3]
        assert journal.snapshot(since=journal.last_seq) == []
        assert [r["seq"] for r in journal.snapshot(limit=2)] == [2, 3]

    def test_last_by_kind_and_component(self):
        journal = EventJournal()
        journal.emit("info", "a", "k.one")
        journal.emit("info", "b", "k.one")
        assert journal.last("k.one")["component"] == "b"
        assert journal.last("k.one", component="a")["seq"] == 1
        assert journal.last("k.none") is None

    def test_trace_id_captured_from_active_span(self):
        journal = EventJournal()
        tracer = Tracer()
        with tracer.root("test.root"):
            record = journal.emit("info", "t", "k")
        assert record["trace_id"] == tracer.trace_id
        # An explicit id (helper threads) wins over context lookup.
        explicit = journal.emit("info", "t", "k", trace_id="tid-42")
        assert explicit["trace_id"] == "tid-42"

    def test_core_keys_win_over_attrs(self):
        journal = EventJournal()
        record = journal.emit("info", "t", "k", seq=999, ts=-1.0)
        assert record["seq"] == 1
        assert record["ts"] > 0

    def test_jsonl_sink_replays(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = EventJournal()
        journal.set_sink(str(path))
        journal.emit("warning", "coordinator", events.BATCH_RESUBMIT,
                     address="127.0.0.1:9001", tasks=3)
        journal.emit("info", "registry", events.WORKER_JOINED,
                     address="127.0.0.1:9002")
        journal.set_sink(None)
        journal.emit("info", "t", "after.close")  # must not be written
        replayed = read_records_jsonl(str(path))
        assert [r["kind"] for r in replayed] == [
            "batch.resubmit", "worker.joined",
        ]
        assert replayed[0]["tasks"] == 3

    def test_module_level_emit_uses_default_journal(self):
        seq0 = events.journal().last_seq
        record = events.emit("debug", "t", "k.module")
        assert record["seq"] == seq0 + 1
        assert events.journal().last("k.module") is not None


class TestKindRegistry:
    def test_all_kinds_are_namespaced(self):
        assert events.KNOWN_KINDS
        assert all("." in kind for kind in events.KNOWN_KINDS)

    def test_mirrored_kinds_are_known(self):
        assert set(events.MIRRORED_COUNTERS) <= events.KNOWN_KINDS


# ----------------------------------------------------------------------
# Emitting sites (journal-level integration)
# ----------------------------------------------------------------------
class TestEmittingSites:
    def test_cache_eviction_emits_one_sweep_event(self, graph):
        from repro.service.cache import ResultCache
        from repro.service.scheduler import QueryScheduler

        seq0 = events.journal().last_seq
        with QueryScheduler(
            graph, RunConfig(machines=2), threads=1,
            cache=ResultCache(capacity=1),
        ) as scheduler:
            scheduler.submit("q1", engine="rads").result(timeout=60)
            scheduler.submit("q2", engine="rads").result(timeout=60)
        evicted = [
            r for r in events.journal().snapshot(since=seq0)
            if r["kind"] == events.CACHE_EVICTED
        ]
        assert evicted and evicted[0]["component"] == "cache"
        assert evicted[0]["evicted"] >= 1

    def test_quota_rejection_emits(self, graph):
        from repro.service.scheduler import QueryScheduler
        from repro.service.tenancy import QuotaExceeded, TenantQuota

        seq0 = events.journal().last_seq
        with QueryScheduler(
            graph, RunConfig(machines=2), threads=1,
            tenants={"acme": TenantQuota(rate=0.0001, burst=1)},
        ) as scheduler:
            scheduler.submit(
                "q1", engine="rads", tenant="acme"
            ).result(timeout=60)
            with pytest.raises(QuotaExceeded):
                scheduler.submit("q2", engine="rads", tenant="acme")
        rejected = [
            r for r in events.journal().snapshot(since=seq0)
            if r["kind"] == events.QUOTA_REJECTED
        ]
        assert rejected and rejected[0]["tenant"] == "acme"
        assert rejected[0]["level"] == "warning"


# ----------------------------------------------------------------------
# The events op over the wire
# ----------------------------------------------------------------------
class TestEventsOp:
    @pytest.fixture(scope="class")
    def server(self, graph):
        config = RunConfig(machines=2)
        with QueryServer(graph, config, threads=2, cache=True) as server:
            yield server

    def test_announce_and_withdraw_emit_roster_events(self, server):
        with connect(server.address, timeout=30) as client:
            before = client.events()["last_seq"]
            client._call("announce", address="127.0.0.1:9321",
                         graphs=[], workers=1, pid=4242)
            # A refresh re-announce is not a join: no second event.
            client._call("announce", address="127.0.0.1:9321", graphs=[])
            client._call("announce", address="127.0.0.1:9321",
                         withdraw=True)
            payload = client.events(
                since=before, component="registry"
            )
            kinds = [r["kind"] for r in payload["events"]]
            assert kinds == ["worker.joined", "worker.left"]
            joined = payload["events"][0]
            assert joined["address"] == "127.0.0.1:9321"

    def test_since_cursor_and_limit(self, server):
        with connect(server.address, timeout=30) as client:
            cursor = client.events()["last_seq"]
            events.emit("info", "test", "test.ping", n=1)
            events.emit("info", "test", "test.ping", n=2)
            fresh = client.events(since=cursor, component="test")
            assert [r["n"] for r in fresh["events"]] == [1, 2]
            assert client.events(
                since=cursor, component="test", limit=1
            )["events"][0]["n"] == 2
            # The new cursor sees nothing until something new fires.
            assert client.events(
                since=fresh["last_seq"]
            )["events"] == []

    @pytest.mark.parametrize(
        "field,value",
        [("level", "loud"), ("component", ""), ("since", -1),
         ("since", 1.5), ("limit", 0), ("limit", True)],
    )
    def test_invalid_filters_name_the_field(self, server, field, value):
        with connect(server.address, timeout=30) as client:
            with pytest.raises(ServiceError, match=field):
                client._call("events", **{field: value})

    def test_metrics_carries_journal_summary(self, server):
        with connect(server.address, timeout=30) as client:
            metrics = client.metrics()
        assert metrics["events"]["capacity"] == 512
        assert metrics["events"]["last_seq"] >= metrics["events"]["retained"]
