"""Unit coverage for the observability toolkit (:mod:`repro.obs`).

Spans and propagation (:mod:`repro.obs.trace`): nesting through the
context variable, the allocation-free disabled path, tree assembly with
orphan re-rooting, and the wire-context round trip shard workers use.
Histograms and the slow-query ring (:mod:`repro.obs.hist`): bucket
placement, interpolated percentiles, snapshot shape.  Text exposition
(:mod:`repro.obs.expo`): gauge and histogram family rendering.
"""

from __future__ import annotations

import json
import re
import threading

import pytest

from repro.obs.expo import render_text
from repro.obs.hist import DEFAULT_BUCKETS, Histogram, SlowQueryLog
from repro.obs.trace import (
    Tracer,
    attach_spans,
    current_span,
    remote_span,
    span,
    span_names,
    wire_context,
)


# ----------------------------------------------------------------------
# Spans and context propagation
# ----------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_assemble_into_one_tree(self):
        tracer = Tracer()
        with tracer.root("run", engine="rads"):
            with span("round.one", machines=4):
                with span("batch"):
                    pass
            with span("round.two"):
                pass
        tree = tracer.tree()
        assert tree["name"] == "run"
        assert tree["parent"] is None
        assert tree["attributes"] == {"engine": "rads"}
        assert [child["name"] for child in tree["children"]] == [
            "round.one",
            "round.two",
        ]
        [batch] = tree["children"][0]["children"]
        assert batch["name"] == "batch"
        assert batch["parent"] == tree["children"][0]["span_id"]
        # Every span shares the trace id and carries a duration.
        for name_count, node in enumerate(
            [tree, *tree["children"], batch]
        ):
            assert node["trace_id"] == tracer.trace_id
            assert node["duration"] >= 0.0
        assert name_count == 3
        # The whole tree is JSON-safe (it rides protocol responses).
        json.dumps(tree)

    def test_disabled_path_is_shared_noop(self):
        assert current_span() is None
        first = span("anything", key="value")
        second = span("other")
        assert first is second  # the shared no-op instance
        with first:
            assert current_span() is None
        assert wire_context() is None
        attach_spans([{"span_id": "x"}])  # swallowed, no trace active

    def test_durations_nest_and_children_sort_by_start(self):
        tracer = Tracer()
        with tracer.root("root"):
            with span("b"):
                pass
            with span("a"):
                pass
        tree = tracer.tree()
        # Start order, not name order.
        assert [c["name"] for c in tree["children"]] == ["b", "a"]
        assert sum(c["duration"] for c in tree["children"]) <= (
            tree["duration"]
        )

    def test_exception_is_recorded_and_span_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.root("root"):
                with span("failing"):
                    raise RuntimeError("boom")
        tree = tracer.tree()
        [child] = tree["children"]
        assert "boom" in child["attributes"]["error"]
        assert current_span() is None  # context fully unwound

    def test_orphan_spans_reroot_instead_of_vanishing(self):
        tracer = Tracer()
        with tracer.root("root"):
            pass
        tracer.attach([
            {
                "trace_id": tracer.trace_id,
                "span_id": "dead-parent-child",
                "parent": "never-recorded",
                "name": "worker.task",
                "start": 0.0,
                "duration": 0.1,
                "attributes": {},
            }
        ])
        tree = tracer.tree()
        assert [c["name"] for c in tree["children"]] == ["worker.task"]

    def test_span_names_walks_depth_first(self):
        tracer = Tracer()
        with tracer.root("root"):
            with span("a"):
                with span("a.a"):
                    pass
            with span("b"):
                pass
        assert list(span_names(tracer.tree())) == [
            "root", "a", "a.a", "b",
        ]
        assert list(span_names(None)) == []


class TestWirePropagation:
    def test_wire_context_round_trip(self):
        tracer = Tracer()
        with tracer.root("root") as root:
            context = wire_context()
            assert context == {
                "trace_id": tracer.trace_id,
                "parent": root.span_id,
            }
            json.dumps(context)  # rides a JSON task message
            # The "remote worker": builds finished dicts, no Tracer.
            shipped = remote_span(
                context, "worker.task", 1.5, 0.25,
                shard="127.0.0.1:7471", mode="inline",
            )
            attach_spans([shipped])
        tree = tracer.tree()
        [leaf] = tree["children"]
        assert leaf["name"] == "worker.task"
        assert leaf["parent"] == tree["span_id"]
        assert leaf["duration"] == 0.25
        assert leaf["attributes"]["shard"] == "127.0.0.1:7471"

    def test_spans_from_other_threads_fold_in(self):
        tracer = Tracer()

        def remote(context):
            return remote_span(context, "worker.task", 0.0, 0.1, pid=1)

        with tracer.root("root"):
            with span("executor.batch") as batch:
                context = wire_context()
                assert context["parent"] == batch.span_id
                results = []
                worker = threading.Thread(
                    target=lambda: results.append(remote(context))
                )
                worker.start()
                worker.join()
                attach_spans(results)
        tree = tracer.tree()
        [batch_node] = tree["children"]
        [leaf] = batch_node["children"]
        assert leaf["name"] == "worker.task"


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_buckets_are_cumulative_le_semantics(self):
        hist = Histogram("t", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert [b["count"] for b in snap["buckets"]] == [2, 3, 4, 5]
        assert snap["buckets"][-1]["le"] == float("inf")
        assert snap["count"] == 5
        assert snap["max"] == 50.0
        assert snap["sum"] == pytest.approx(55.65)

    def test_percentiles_interpolate_within_the_bucket(self):
        hist = Histogram("t", buckets=(1.0, 2.0))
        for _ in range(100):
            hist.observe(1.5)
        # All mass in (1.0, 2.0]: the median interpolates inside it.
        assert 1.0 < hist.percentile(50.0) <= 2.0
        snap = hist.snapshot()
        assert set(snap) >= {"p50", "p95", "p99"}
        assert snap["p50"] <= snap["p95"] <= snap["p99"]

    def test_overflow_bucket_percentile_reports_observed_max(self):
        hist = Histogram("t", buckets=(0.001,))
        hist.observe(42.0)
        assert hist.percentile(99.0) == 42.0

    def test_empty_and_negative_observations(self):
        hist = Histogram("t")
        assert hist.percentile(50.0) == 0.0
        hist.observe(-5.0)  # clamps to zero, lands in the first bucket
        assert hist.snapshot()["buckets"][0]["count"] == 1

    def test_default_ladder_spans_cache_lookup_to_long_enumeration(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001
        assert DEFAULT_BUCKETS[-1] >= 60.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_invalid_buckets_are_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=())
        with pytest.raises(ValueError):
            Histogram("t", buckets=(0.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t", buckets=(1.0, 1.0))


class TestSlowQueryLog:
    def test_keeps_the_slowest_sorted_desc(self):
        log = SlowQueryLog(capacity=3)
        for duration in (0.1, 0.5, 0.2, 0.9, 0.05):
            log.record({"pattern": "q", "duration": duration})
        assert [e["duration"] for e in log.snapshot()] == [0.9, 0.5, 0.2]

    def test_fast_requests_do_not_displace_slow_ones(self):
        log = SlowQueryLog(capacity=2)
        log.record({"duration": 1.0})
        log.record({"duration": 2.0})
        log.record({"duration": 0.5})
        assert [e["duration"] for e in log.snapshot()] == [2.0, 1.0]

    def test_entries_are_copied_not_aliased(self):
        log = SlowQueryLog()
        entry = {"duration": 1.0, "pattern": "q"}
        log.record(entry)
        entry["pattern"] = "mutated"
        assert log.snapshot()[0]["pattern"] == "q"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)


# ----------------------------------------------------------------------
# Text exposition
# ----------------------------------------------------------------------
class TestRenderText:
    def test_numeric_leaves_become_prefixed_gauges(self):
        text = render_text({
            "scheduler": {"submitted": 3, "running": 0},
            "uptime_seconds": 1.25,
            "graph": "abcdef",          # strings skipped
            "shards": {"configured": []},  # plain lists skipped
            "cache": None,              # nulls skipped
        })
        assert "# TYPE repro_scheduler_submitted gauge" in text
        assert "repro_scheduler_submitted 3" in text.splitlines()
        assert "repro_uptime_seconds 1.25" in text.splitlines()
        assert "abcdef" not in text
        assert text.endswith("\n")

    def test_histogram_snapshot_renders_buckets_sum_count_quantiles(self):
        hist = Histogram("latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = render_text({"histograms": {"latency": hist.snapshot()}})
        family = "repro_histograms_latency_seconds"
        assert f"# TYPE {family} histogram" in text
        assert f'{family}_bucket{{le="0.1"}} 1' in text.splitlines()
        assert f'{family}_bucket{{le="+Inf"}} 2' in text.splitlines()
        assert f"{family}_count 2" in text.splitlines()
        assert re.search(rf'^{family}{{quantile="0\.5"}} ', text, re.M)

    def test_weird_key_characters_are_sanitized(self):
        text = render_text({"a b/c": {"x-y": 1}})
        assert "repro_a_b_c_x_y 1" in text.splitlines()
