"""The query service layer: cache, scheduler, socket server + client."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

import repro
from repro.api import RunConfig
from repro.api.registry import EngineRegistry, EngineSpec
from repro.api.results import read_records_jsonl
from repro.cli import main as cli_main
from repro.engines.base import EnumerationEngine, RunResult
from repro.graph import erdos_renyi
from repro.query.explain import QueryExplanation
from repro.query.pattern_gen import cycle
from repro.service import (
    AdmissionError,
    QueryScheduler,
    QueryServer,
    ResultCache,
    SchedulerClosed,
    ServiceError,
    ServiceTimeout,
    cache_key,
    config_digest,
    connect,
    remap_embeddings,
)
from repro.service import protocol


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, seed=17)


def triangle(name="triangle"):
    return repro.pattern("a-b, b-c, c-a").copy_with_name(name)


def shuffled(pattern, seed=3, name="rewrite"):
    """An isomorphic rewrite: the same structure under a random relabeling."""
    import random

    perm = list(range(pattern.num_vertices))
    random.Random(seed).shuffle(perm)
    return pattern.relabel(dict(enumerate(perm))).copy_with_name(name)


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
class TestCacheKey:
    def test_isomorphic_patterns_share_a_key(self, graph):
        config = RunConfig(machines=3)
        p = repro.pattern("a-b, b-c, c-a, a-d")
        q = repro.pattern("x-y, z-x, w-z, y-z").copy_with_name("other")
        assert p.isomorphic_to(q)
        assert cache_key(graph, p, "RADS", config, collect=False) == \
            cache_key(graph, q, "RADS", config, collect=False)

    def test_key_separates_engine_config_collect_and_graph(self, graph):
        config = RunConfig(machines=3)
        p = triangle()
        base = cache_key(graph, p, "RADS", config, collect=False)
        assert cache_key(graph, p, "PSgL", config, collect=False) != base
        assert cache_key(
            graph, p, "RADS", RunConfig(machines=4), collect=False
        ) != base
        assert cache_key(graph, p, "RADS", config, collect=True) != base
        other = erdos_renyi(60, 0.12, seed=18)
        assert cache_key(other, p, "RADS", config, collect=False) != base

    def test_digest_ignores_workers_and_result_mode(self):
        base = config_digest(RunConfig(machines=3))
        assert config_digest(RunConfig(machines=3, workers=2)) == base
        assert config_digest(
            RunConfig(machines=3, collect=True, limit=5)
        ) == base
        assert config_digest(RunConfig(machines=3, memory_mb=64)) != base
        assert config_digest(
            RunConfig(machines=3, stragglers={0: 2.0})
        ) != base

    def test_graph_fingerprint_tracks_content(self, graph):
        assert graph.fingerprint() == graph.fingerprint()
        same = erdos_renyi(60, 0.12, seed=17)
        assert same.fingerprint() == graph.fingerprint()
        assert erdos_renyi(60, 0.12, seed=1).fingerprint() != \
            graph.fingerprint()


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
def _result(name="triangle", count=5, embeddings=None):
    return RunResult(
        engine="RADS",
        pattern_name=name,
        embedding_count=count,
        makespan=1.5,
        total_comm_bytes=10,
        peak_memory=20,
        per_machine_time=[1.0, 1.5],
        embeddings=embeddings,
    )


class TestResultCache:
    def test_round_trip_is_an_independent_copy(self):
        cache = ResultCache()
        p = triangle()
        stored = _result(embeddings=[(1, 2, 3)])
        cache.put(("k",), p, stored)
        served = cache.get(("k",), p)
        assert served.embedding_count == stored.embedding_count
        assert served.embeddings == [(1, 2, 3)]
        served.embeddings.append((9, 9, 9))
        served.counters["x"] = 1
        again = cache.get(("k",), p)
        assert again.embeddings == [(1, 2, 3)]
        assert "x" not in again.counters

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        p = triangle()
        cache.put(("a",), p, _result())
        cache.put(("b",), p, _result())
        assert cache.get(("a",), p) is not None  # refresh "a"
        cache.put(("c",), p, _result())          # evicts "b"
        assert cache.get(("b",), p) is None
        assert cache.get(("a",), p) is not None
        assert cache.get(("c",), p) is not None
        assert cache.evictions == 1

    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        cache = ResultCache(ttl=10.0, clock=lambda: now[0])
        p = triangle()
        cache.put(("k",), p, _result())
        now[0] = 9.9
        assert cache.get(("k",), p) is not None
        now[0] = 10.0
        assert cache.get(("k",), p) is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_failed_runs_are_not_cached(self):
        cache = ResultCache()
        failed = _result()
        failed.failed = True
        assert not cache.put(("k",), triangle(), failed)
        assert cache.get(("k",), triangle()) is None

    def test_hit_serves_remapped_embeddings_for_isomorphic_pattern(self):
        cache = ResultCache()
        p = repro.pattern("a-b, b-c")  # path, 0-1-2
        q = repro.pattern("a-b, a-c").copy_with_name("star")  # centre 0
        cache.put(("k",), p, _result(embeddings=[(10, 11, 12)]))
        served = cache.get(("k",), q)
        assert served.pattern_name == "star"
        # q's centre (vertex 0) must land on the path's middle (11).
        (emb,) = served.embeddings
        assert emb[0] == 11 and set(emb) == {10, 11, 12}

    def test_annotate_surfaces_counters(self):
        cache = ResultCache()
        p = triangle()
        cache.put(("k",), p, _result())
        served = cache.get(("k",), p)
        cache.annotate(served, hit=True)
        assert served.counters["service.cache_hit"] == 1
        assert served.counters["service.cache_hits"] == 1
        assert served.counters["service.cache_misses"] == 0
        assert served.counters["service.cache_evictions"] == 0


class TestRemap:
    def test_identity_for_structurally_equal_patterns(self):
        p = triangle()
        embs = [(3, 1, 2), (5, 4, 6)]
        assert remap_embeddings(embs, p, triangle("other")) == embs

    def test_rejects_non_isomorphic(self):
        with pytest.raises(ValueError, match="not\\s+isomorphic"):
            remap_embeddings(
                [(0, 1, 2)], triangle(), repro.pattern("a-b, b-c")
            )

    def test_remapped_tuples_are_valid_embeddings(self, graph):
        p = repro.pattern("a-b, b-c, c-a, a-d, b-e, d-e")  # house / q4
        q = shuffled(p, seed=11)
        direct = (
            repro.open(graph).with_cluster(machines=3)
            .engine("single").query(p).run(collect=True)
        )
        remapped = remap_embeddings(direct.embeddings, p, q)
        for emb in remapped[:100]:
            for u, v in q.edges():
                assert graph.has_edge(emb[u], emb[v])


# ----------------------------------------------------------------------
# Scheduler: a controllable stub engine
# ----------------------------------------------------------------------
class _StubEngine(EnumerationEngine):
    """Deterministic engine whose runs block on an event (class-shared)."""

    name = "Stub"
    gate: "threading.Event | None" = None
    barrier: "threading.Barrier | None" = None
    executed: list[str] = []
    lock = threading.Lock()

    def _execute(self, cluster, pattern, constraints, collect, executor):
        if _StubEngine.barrier is not None:
            _StubEngine.barrier.wait(timeout=30)
        if _StubEngine.gate is not None:
            assert _StubEngine.gate.wait(timeout=30)
        with _StubEngine.lock:
            _StubEngine.executed.append(pattern.name)
        self._count = pattern.num_vertices
        return [tuple(range(pattern.num_vertices))] if collect else []


@pytest.fixture()
def stub_registry():
    registry = EngineRegistry()
    registry.register(EngineSpec(name="Stub", engine_cls=_StubEngine))
    _StubEngine.gate = None
    _StubEngine.barrier = None
    _StubEngine.executed = []
    yield registry
    _StubEngine.gate = None
    _StubEngine.barrier = None


class TestScheduler:
    def test_sustains_eight_concurrent_in_flight_queries(
        self, graph, stub_registry
    ):
        _StubEngine.barrier = threading.Barrier(9)
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=8
        ) as scheduler:
            tickets = [
                scheduler.submit(cycle(n), "stub") for n in range(3, 11)
            ]
            # All eight runs are now blocked inside the barrier together.
            _StubEngine.barrier.wait(timeout=30)
            results = [t.result(30) for t in tickets]
            stats = scheduler.stats()
        assert stats["max_in_flight"] >= 8
        assert sorted(r.embedding_count for r in results) == list(
            range(3, 11)
        )
        assert stats["completed"] == 8

    def test_deduplicates_identical_in_flight_queries(
        self, graph, stub_registry
    ):
        _StubEngine.gate = gate = threading.Event()
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        ) as scheduler:
            blocker = scheduler.submit(cycle(5), "stub")
            first = scheduler.submit(triangle(), "stub")
            second = scheduler.submit(triangle("same-again"), "stub")
            third = scheduler.submit(shuffled(cycle(3), name="iso"), "stub")
            assert second.deduped and third.deduped and not first.deduped
            gate.set()
            results = [
                t.result(30) for t in (blocker, first, second, third)
            ]
        assert [r.embedding_count for r in results] == [5, 3, 3, 3]
        assert results[2].counters["service.dedup"] == 1
        # One execution served all three triangle requests.
        assert _StubEngine.executed.count("triangle") == 1
        assert scheduler.stats()["deduped"] == 2

    def test_priority_orders_the_queue(self, graph, stub_registry):
        _StubEngine.gate = gate = threading.Event()
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        ) as scheduler:
            blocker = scheduler.submit(cycle(7), "stub")
            deadline = time.monotonic() + 10
            while (
                scheduler.stats()["running"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            low = scheduler.submit(cycle(4), "stub", priority=-5)
            mid = scheduler.submit(cycle(5), "stub")
            high = scheduler.submit(cycle(6), "stub", priority=10)
            gate.set()
            for ticket in (blocker, low, mid, high):
                ticket.result(30)
        assert _StubEngine.executed == [
            "cycle7", "cycle6", "cycle5", "cycle4"
        ]

    def test_admission_budget_serializes_and_rejects(
        self, graph, stub_registry
    ):
        _StubEngine.gate = gate = threading.Event()
        config = RunConfig(machines=2, memory_mb=10)  # 20 MiB per query
        with QueryScheduler(
            graph, config, stub_registry, threads=2, memory_budget_mb=30
        ) as scheduler:
            first = scheduler.submit(cycle(3), "stub")
            second = scheduler.submit(cycle(4), "stub")
            deadline = time.monotonic() + 10
            while (
                scheduler.stats()["running"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            stats = scheduler.stats()
            # Two worker threads, but only one 20 MiB query fits in 30 MiB.
            assert stats["running"] == 1
            assert stats["queued"] == 1
            with pytest.raises(AdmissionError):
                scheduler.submit(cycle(5), "stub", memory_mb=31)
            gate.set()
            first.result(30)
            second.result(30)
        assert scheduler.stats()["max_in_flight"] == 1
        assert scheduler.stats()["rejected"] == 1

    def test_queue_timeout_is_honored(self, graph, stub_registry):
        _StubEngine.gate = gate = threading.Event()
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        ) as scheduler:
            blocker = scheduler.submit(cycle(5), "stub")
            doomed = scheduler.submit(triangle(), "stub", timeout=0.05)
            time.sleep(0.2)
            gate.set()
            blocker.result(30)
            with pytest.raises(ServiceTimeout):
                doomed.result(30)
        assert "triangle" not in _StubEngine.executed
        assert scheduler.stats()["timeouts"] == 1

    def test_waiting_result_returns_at_the_deadline(
        self, graph, stub_registry
    ):
        """The deadline timer bounds result() even while workers are busy."""
        _StubEngine.gate = gate = threading.Event()
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        ) as scheduler:
            blocker = scheduler.submit(cycle(5), "stub")
            doomed = scheduler.submit(triangle(), "stub", timeout=0.2)
            start = time.monotonic()
            with pytest.raises(ServiceTimeout):
                # Well before the blocker is ever released.
                doomed.result(10)
            assert time.monotonic() - start < 5
            gate.set()
            blocker.result(30)
        assert scheduler.stats()["timeouts"] == 1

    def test_running_request_times_out_but_still_populates_cache(
        self, graph, stub_registry
    ):
        _StubEngine.gate = gate = threading.Event()
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        ) as scheduler:
            ticket = scheduler.submit(triangle(), "stub", timeout=0.2)
            with pytest.raises(ServiceTimeout):
                ticket.result(10)
            gate.set()
            deadline = time.monotonic() + 10
            while (
                scheduler.stats()["running"] > 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            # The execution completed anyway and seeded the cache.
            follow_up = scheduler.submit(triangle(), "stub")
            assert follow_up.result(30).embedding_count == 3
            assert follow_up.cache_hit

    def test_dedup_rider_escalates_queue_priority(
        self, graph, stub_registry
    ):
        _StubEngine.gate = gate = threading.Event()
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        ) as scheduler:
            blocker = scheduler.submit(cycle(7), "stub")
            deadline = time.monotonic() + 10
            while (
                scheduler.stats()["running"] < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            other = scheduler.submit(cycle(5), "stub")
            low = scheduler.submit(cycle(4), "stub")
            rider = scheduler.submit(cycle(4), "stub", priority=10)
            assert rider.deduped
            gate.set()
            for ticket in (blocker, other, low, rider):
                ticket.result(30)
        # FIFO alone would run cycle5 first; the rider's priority
        # escalated the queued cycle4 execution past it.
        assert _StubEngine.executed == ["cycle7", "cycle4", "cycle5"]

    def test_broken_engine_factory_fails_tickets_not_workers(
        self, graph, stub_registry
    ):
        def _broken_factory(*, graph=None, **kwargs):
            raise RuntimeError("factory exploded")

        stub_registry.register(EngineSpec(
            name="Broken", engine_cls=_StubEngine, factory=_broken_factory,
        ))
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        ) as scheduler:
            doomed = scheduler.submit(triangle(), "broken")
            with pytest.raises(RuntimeError, match="factory exploded"):
                doomed.result(30)
            # The (only) worker survived and keeps serving.
            assert scheduler.submit(
                cycle(4), "stub"
            ).result(30).embedding_count == 4
        assert scheduler.stats()["failed"] == 1

    def test_cancel_skips_queued_work(self, graph, stub_registry):
        _StubEngine.gate = gate = threading.Event()
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        ) as scheduler:
            blocker = scheduler.submit(cycle(5), "stub")
            doomed = scheduler.submit(triangle(), "stub")
            assert doomed.cancel()
            gate.set()
            blocker.result(30)
        assert doomed.cancelled()
        assert "triangle" not in _StubEngine.executed

    def test_cancel_reaps_the_deadline_timer(self, graph, stub_registry):
        _StubEngine.gate = gate = threading.Event()
        with QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        ) as scheduler:
            blocker = scheduler.submit(cycle(5), "stub")
            doomed = scheduler.submit(triangle(), "stub", timeout=300)
            assert doomed._timer is not None
            assert doomed.cancel()
            assert doomed._timer is None  # no sleeping Timer thread left
            gate.set()
            blocker.result(30)

    def test_drain_close_survives_priority_escalation(
        self, graph, stub_registry
    ):
        """close(cancel_pending=False) must not hang on stale heap entries."""
        _StubEngine.gate = gate = threading.Event()
        scheduler = QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        )
        blocker = scheduler.submit(cycle(5), "stub")
        deadline = time.monotonic() + 10
        while (
            scheduler.stats()["running"] < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        queued = scheduler.submit(triangle(), "stub")
        rider = scheduler.submit(triangle(), "stub", priority=7)
        assert rider.deduped  # leaves a stale pre-escalation heap entry
        gate.set()
        closer = threading.Thread(
            target=scheduler.close, kwargs={"cancel_pending": False}
        )
        closer.start()
        closer.join(30)
        assert not closer.is_alive(), "drain close deadlocked"
        assert blocker.result(1).embedding_count == 5
        assert queued.result(1).embedding_count == 3
        assert rider.result(1).embedding_count == 3

    def test_submit_after_close_raises(self, graph, stub_registry):
        scheduler = QueryScheduler(
            graph, RunConfig(machines=2), stub_registry, threads=1
        )
        scheduler.close()
        with pytest.raises(SchedulerClosed):
            scheduler.submit(triangle(), "stub")

    def test_budget_without_memory_mb_is_rejected(self, graph):
        """An explicit budget over unmetered (cost-0) requests is a no-op
        admission control — refuse it loudly instead."""
        with pytest.raises(ValueError, match="memory_budget_mb"):
            QueryScheduler(
                graph, RunConfig(machines=2), threads=1,
                memory_budget_mb=64,
            )

    def test_labeled_queries_are_rejected(self, graph):
        with QueryScheduler(
            graph, RunConfig(machines=2), threads=1
        ) as scheduler:
            with pytest.raises(ValueError, match="unlabeled"):
                scheduler.submit("a:0-b:1", "single")


class TestSchedulerResults:
    """Real engines: served results match a standalone Session bit for bit."""

    def test_miss_then_hit_matches_session_run(self, graph):
        config = RunConfig(machines=3)
        session = (
            repro.open(graph).with_config(config)
            .engine("rads").query("q2")
        )
        direct = session.run(collect=True)
        with QueryScheduler(graph, config, threads=2) as scheduler:
            first = scheduler.submit("q2", "rads", collect=True)
            miss = first.result(60)
            second = scheduler.submit("q2", "rads", collect=True)
            hit = second.result(60)
        assert not first.cache_hit and second.cache_hit
        for served in (miss, hit):
            assert served.embedding_count == direct.embedding_count
            assert served.makespan == direct.makespan
            assert served.total_comm_bytes == direct.total_comm_bytes
            assert served.peak_memory == direct.peak_memory
            assert served.embeddings == direct.embeddings
        assert miss.counters["service.cache_hit"] == 0
        assert hit.counters["service.cache_hit"] == 1

    def test_isomorphic_rewrite_hits_with_identical_counts(self, graph):
        pattern = repro.resolve_query("q1")
        rewrite = shuffled(pattern, seed=5)
        with QueryScheduler(
            graph, RunConfig(machines=3), threads=2
        ) as scheduler:
            original = scheduler.run("q1", "rads", collect=True)
            ticket = scheduler.submit(rewrite, "rads", collect=True)
            served = ticket.result(60)
        assert ticket.cache_hit
        assert served.embedding_count == original.embedding_count
        for emb in served.embeddings:
            for u, v in rewrite.edges():
                assert graph.has_edge(emb[u], emb[v])

    def test_per_request_limit_truncates_served_embeddings(self, graph):
        with QueryScheduler(
            graph, RunConfig(machines=3), threads=1
        ) as scheduler:
            full = scheduler.run("triangle", "rads", collect=True)
            limited = scheduler.run(
                "triangle", "rads", collect=True, limit=3
            )
        assert limited.embeddings == full.embeddings[:3]
        assert limited.counters["service.cache_hit"] == 1

    def test_cache_disabled(self, graph):
        with QueryScheduler(
            graph, RunConfig(machines=3), threads=1, cache=False
        ) as scheduler:
            scheduler.run("triangle", "rads")
            ticket = scheduler.submit("triangle", "rads")
            ticket.result(60)
            assert not ticket.cache_hit
            assert scheduler.stats()["cache"] is None


# ----------------------------------------------------------------------
# Server + client over a real socket
# ----------------------------------------------------------------------
@pytest.fixture()
def server(graph, tmp_path):
    server = QueryServer(
        graph,
        RunConfig(machines=3),
        threads=4,
        log_path=str(tmp_path / "requests.jsonl"),
    )
    with server.start():
        yield server


class TestServerClient:
    def test_round_trip_miss_then_hits(self, graph, server):
        direct = (
            repro.open(graph).with_cluster(machines=3)
            .engine("rads").query("triangle").run()
        )
        with connect(server.address, timeout=60) as client:
            assert client.hello["graph"] == graph.fingerprint()
            assert client.ping()
            first = client.submit("a-b, b-c, c-a", engine="rads")
            assert client.last_cache == "miss"
            second = client.submit("a-b, b-c, c-a", engine="rads")
            assert client.last_cache == "hit"
            rewrite = client.submit("x-y, y-z, z-x", engine="rads")
            assert client.last_cache == "hit"
        for served in (first, second, rewrite):
            assert served.embedding_count == direct.embedding_count
            assert served.makespan == direct.makespan

    def test_explain_and_stats_over_the_wire(self, server):
        with connect(server.address, timeout=60) as client:
            explanation = client.explain("q4", engine="rads")
            assert isinstance(explanation, QueryExplanation)
            assert explanation.engine == "RADS"
            assert explanation.rounds
            client.submit("triangle", engine="rads")
            stats = client.stats()
        assert stats["submitted"] >= 1
        assert stats["cache"]["capacity"] == 128

    def test_errors_come_back_as_service_errors(self, server):
        with connect(server.address, timeout=60) as client:
            with pytest.raises(ServiceError, match="unknown engine"):
                client.submit("triangle", engine="nope")
            with pytest.raises(ServiceError, match="unknown query"):
                client.submit("not-a-pattern-name!!", engine="rads")
            # The connection survives errors.
            assert client.ping()

    def test_request_log_replays(self, graph, server, tmp_path):
        with connect(server.address, timeout=60) as client:
            client.submit("triangle", engine="rads")
            client.explain("q4", engine="rads")
        records = read_records_jsonl(tmp_path / "requests.jsonl")
        assert [type(r).__name__ for r in records] == [
            "RunResult", "QueryExplanation"
        ]
        assert records[0].engine == "RADS"

    def test_concurrent_clients_share_the_cache(self, server):
        results = []
        errors = []

        def one_client(i):
            try:
                with connect(server.address, timeout=60) as client:
                    result = client.submit("q2", engine="rads")
                    results.append((result.embedding_count,
                                    client.last_cache))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=one_client, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        counts = {count for count, _ in results}
        assert len(counts) == 1
        # Everyone beyond the one real execution was a hit or dedup rider.
        dispositions = sorted(cache for _, cache in results)
        assert dispositions.count("miss") == 1

    def test_malformed_line_gets_error_response(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            assert protocol.read_message(stream)["kind"] == "hello"
            stream.write(b"this is not json\n")
            stream.flush()
            response = protocol.read_message(stream)
        assert response["ok"] is False
        assert "malformed" in response["error"]

    def test_bad_field_type_gets_error_response_not_a_dead_socket(
        self, server
    ):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            protocol.read_message(stream)  # hello
            protocol.write_message(stream, {
                "op": "submit", "id": 1,
                "query": "triangle", "timeout": "5",  # string, not number
            })
            response = protocol.read_message(stream)
            assert response["id"] == 1 and not response["ok"]
            # The connection survives for the next request.
            protocol.write_message(stream, {"op": "ping", "id": 2})
            assert protocol.read_message(stream)["kind"] == "pong"

    def test_bind_failure_leaves_no_scheduler_threads(self, graph):
        with socket.socket() as taken:
            taken.bind(("127.0.0.1", 0))
            taken.listen(1)
            port = taken.getsockname()[1]
            with pytest.raises(OSError):
                QueryServer(graph, RunConfig(machines=2), port=port)
        assert not [
            t for t in threading.enumerate()
            if t.name.startswith("repro-query-") and t.is_alive()
        ]

    def test_unknown_op(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            protocol.read_message(stream)
            protocol.write_message(stream, {"op": "frobnicate", "id": 7})
            response = protocol.read_message(stream)
        assert response["id"] == 7
        assert not response["ok"]
        assert "unknown op" in response["error"]


class TestSessionServe:
    def test_close_of_a_never_started_server_returns(self, graph):
        server = repro.open(graph).with_cluster(machines=2).serve(
            port=0, threads=1, start=False
        )
        closer = threading.Thread(target=server.close)
        closer.start()
        closer.join(10)
        assert not closer.is_alive(), "close() hung on an unstarted server"

    def test_session_serve_and_shutdown_op(self, graph):
        session = repro.open(graph).with_cluster(machines=3)
        server = session.serve(port=0, threads=2)
        try:
            with connect(server.address, timeout=60) as client:
                result = client.submit("triangle", engine="rads")
                assert result.embedding_count > 0
                client.shutdown()
            deadline = time.monotonic() + 10
            while not server._closed and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server._closed
        finally:
            server.close()


# ----------------------------------------------------------------------
# CLI: serve/submit wiring
# ----------------------------------------------------------------------
class TestServiceCLI:
    def test_submit_cli_against_live_server(self, server, capsys):
        host, port = server.address
        base = ["submit", "--host", host, "--port", str(port)]
        assert cli_main([*base, "--ping"]) == 0
        assert "pong" in capsys.readouterr().out
        assert cli_main([*base, "--query", "q2", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cache"] == "miss" and not first["failed"]
        assert cli_main([*base, "--query", "q2", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cache"] == "hit"
        assert second["embedding_count"] == first["embedding_count"]
        assert cli_main([*base, "--stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["cache"]["hits"] >= 1

    def test_submit_cli_human_output_shows_cache(self, server, capsys):
        host, port = server.address
        assert cli_main([
            "submit", "--host", host, "--port", str(port),
            "--query", "triangle", "--show", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "emb=" in out

    def test_submit_cli_unknown_engine_exits(self, server):
        host, port = server.address
        with pytest.raises(SystemExit, match="unknown engine"):
            cli_main([
                "submit", "--host", host, "--port", str(port),
                "--query", "triangle", "--engine", "nope",
            ])

    def test_submit_cli_refuses_without_query(self, server):
        host, port = server.address
        with pytest.raises(SystemExit, match="needs --query"):
            cli_main(["submit", "--host", host, "--port", str(port)])

    def test_submit_cli_json_keeps_collected_embeddings(self, graph, capsys):
        """--json without --show must not drop a collect=True server's data."""
        server = QueryServer(
            graph, RunConfig(machines=3, collect=True), threads=2
        )
        with server.start():
            host, port = server.address
            assert cli_main([
                "submit", "--host", host, "--port", str(port),
                "--query", "triangle", "--json",
            ]) == 0
            payload = json.loads(capsys.readouterr().out)
        assert payload["embeddings"]
        assert len(payload["embeddings"]) == payload["embedding_count"]

    def test_serve_cli_port_in_use_exits_cleanly(self, tmp_path):
        from repro.cli import save_graph

        path = str(tmp_path / "g.npz")
        save_graph(erdos_renyi(20, 0.2, seed=1), path)
        with socket.socket() as taken:
            taken.bind(("127.0.0.1", 0))
            taken.listen(1)
            port = taken.getsockname()[1]
            with pytest.raises(SystemExit) as excinfo:
                cli_main([
                    "serve", "--graph", path, "--port", str(port),
                ])
            assert "in use" in str(excinfo.value).lower() or str(
                excinfo.value
            )

    def test_submit_cli_connection_refused_exits(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(SystemExit, match="cannot connect"):
            cli_main([
                "submit", "--port", str(free_port), "--query", "triangle",
            ])
