"""Property tests: cache hits for isomorphic rewrites are always correct.

For random connected patterns (the :mod:`repro.query.pattern_gen`
generators), any isomorphic rewrite of a previously served query must hit
the :class:`repro.service.ResultCache` and come back with *identical*
counts — and, when embeddings are collected, with tuples that are (a)
genuine embeddings of the rewritten pattern and (b) the same set of
matches, up to the pattern's automorphisms, as enumerating the rewrite
directly.
"""

from __future__ import annotations

import random

import pytest

from repro.api import RunConfig
from repro.graph import erdos_renyi
from repro.query.pattern import Pattern
from repro.query.pattern_gen import random_connected_pattern
from repro.service import QueryScheduler


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(40, 0.15, seed=23)


def random_relabeling(pattern: Pattern, seed: int) -> Pattern:
    perm = list(range(pattern.num_vertices))
    random.Random(seed).shuffle(perm)
    return pattern.relabel(dict(enumerate(perm))).copy_with_name(
        f"{pattern.name}-rewrite"
    )


def orbit_representative(emb: tuple, automorphisms: list) -> tuple:
    """Canonical representative of an embedding's automorphism orbit."""
    return min(
        tuple(emb[sigma[u]] for u in range(len(emb)))
        for sigma in automorphisms
    )


CASES = [
    (3, 0, 0), (3, 1, 1), (4, 0, 2), (4, 2, 3), (5, 1, 4),
    (5, 3, 5), (6, 0, 6), (6, 2, 7),
]


@pytest.mark.parametrize("num_vertices,extra_edges,seed", CASES)
def test_isomorphic_hit_serves_identical_counts_and_valid_embeddings(
    graph, num_vertices, extra_edges, seed
):
    pattern = random_connected_pattern(num_vertices, extra_edges, seed=seed)
    rewrite = random_relabeling(pattern, seed=seed + 100)
    config = RunConfig(machines=2)
    with QueryScheduler(graph, config, threads=2) as scheduler:
        original = scheduler.run(pattern, "single", collect=True)
        ticket = scheduler.submit(rewrite, "single", collect=True)
        served = ticket.result(60)
        # Uncached ground truth for the rewrite itself (cache disabled).
        with QueryScheduler(
            graph, config, threads=1, cache=False
        ) as uncached:
            direct = uncached.run(rewrite, "single", collect=True)

    assert ticket.cache_hit, "isomorphic rewrite must hit the cache"
    assert served.counters["service.cache_hit"] == 1
    # Identical counts — for the cached hit and the uncached rerun.
    assert served.embedding_count == original.embedding_count
    assert served.embedding_count == direct.embedding_count

    # Every served tuple is a genuine embedding of the *rewritten* pattern
    # (all pattern edges present, vertices distinct).
    for emb in served.embeddings:
        assert len(set(emb)) == rewrite.num_vertices
        for u, v in rewrite.edges():
            assert graph.has_edge(emb[u], emb[v])

    # Same matches as direct enumeration, up to automorphisms of the
    # pattern (symmetry breaking may pick different orbit representatives).
    automorphisms = rewrite.automorphism_group()
    assert {
        orbit_representative(emb, automorphisms)
        for emb in served.embeddings
    } == {
        orbit_representative(emb, automorphisms)
        for emb in direct.embeddings
    }
    assert len(served.embeddings) == len(direct.embeddings)


def test_exact_repeat_is_byte_identical(graph):
    """The same spelling twice: embeddings equal tuple-for-tuple."""
    pattern = random_connected_pattern(5, 2, seed=9)
    with QueryScheduler(
        graph, RunConfig(machines=2), threads=1
    ) as scheduler:
        first = scheduler.run(pattern, "single", collect=True)
        second = scheduler.run(pattern, "single", collect=True)
    assert second.counters["service.cache_hit"] == 1
    assert second.embeddings == first.embeddings
    assert second.embedding_count == first.embedding_count
    assert second.makespan == first.makespan
