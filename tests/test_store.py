"""Tests for the persistent indexed embedding store (ROADMAP PR 8).

Covers the columnar trie (flatten/rebuild round-trips against the
Sec. 5 embedding trie, order-based range indexes), the on-disk
:class:`~repro.store.EmbeddingStore` (atomic writes, restart
round-trips, fingerprint invalidation), ``collect="store"`` through the
scheduler / server / session, the ``page``/``lookup``/``aggregate``
protocol ops, and the disk-tier fix to ``ResultCache.evict_graph``.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.api import RunConfig, read_records_jsonl, record_from_dict
from repro.core.embedding_trie import (
    NODE_BYTES,
    trie_from_paths,
    trie_nodes_for_results,
)
from repro.engines.base import RunResult
from repro.graph import erdos_renyi
from repro.query.pattern_gen import random_connected_pattern
from repro.service import QueryScheduler, QueryServer, ResultCache, connect
from repro.service.cache import cache_key, key_digest
from repro.store import (
    STORE_HIT_COUNTER,
    EmbeddingStore,
    TrieColumns,
    pattern_orbits,
)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, seed=17)


def triangle(name="triangle"):
    return repro.pattern("a-b, b-c, c-a").copy_with_name(name)


def _result(pattern, embeddings, **overrides):
    fields = dict(
        engine="RADS",
        pattern_name=pattern.name,
        embedding_count=len(embeddings),
        makespan=1.5,
        total_comm_bytes=10,
        peak_memory=20,
        per_machine_time=[1.0, 1.5],
        embeddings=list(embeddings),
    )
    fields.update(overrides)
    return RunResult(**fields)


def _enumerated(graph, pattern):
    """Reference answer: a plain collect=True run, sorted and deduplicated."""
    result = (
        repro.open(graph).with_cluster(machines=2)
        .engine("RADS").query(pattern).run(collect=True)
    )
    return sorted(set(map(tuple, result.embeddings)))


# ----------------------------------------------------------------------
# Columnar trie
# ----------------------------------------------------------------------
class TestTrieColumns:
    EMBS = [(0, 1, 2), (0, 1, 9), (0, 9, 11), (3, 4, 5), (0, 1, 2)]

    def test_decompress_all_is_sorted_dedup(self):
        columns = TrieColumns.from_embeddings(self.EMBS, 3)
        assert columns.decompress_all() == sorted(set(self.EMBS))
        assert len(columns) == 4
        assert columns.leaf_count == 4

    def test_node_count_matches_reference_trie_size(self):
        columns = TrieColumns.from_embeddings(self.EMBS, 3)
        assert columns.node_count == trie_nodes_for_results(
            sorted(set(self.EMBS))
        )
        assert columns.memory_bytes() == columns.node_count * NODE_BYTES

    def test_every_page_is_a_contiguous_slice(self):
        columns = TrieColumns.from_embeddings(self.EMBS, 3)
        want = sorted(set(self.EMBS))
        for offset in range(len(want) + 2):
            for limit in range(1, len(want) + 2):
                assert columns.decompress_range(offset, limit) == (
                    want[offset:offset + limit]
                )
        assert columns.decompress_range(1) == want[1:]

    def test_lookup_matches_brute_force(self):
        columns = TrieColumns.from_embeddings(self.EMBS, 3)
        want = sorted(set(self.EMBS))
        for vertex in range(13):
            expect = [emb for emb in want if vertex in emb]
            assert columns.lookup(vertex) == expect
            assert columns.contain_count(vertex) == len(expect)

    def test_aggregate_root_and_vertex_match_brute_force(self):
        columns = TrieColumns.from_embeddings(self.EMBS, 3)
        want = sorted(set(self.EMBS))
        # Group keys are strings: the dicts travel as JSON verbatim.
        assert columns.aggregate("root") == {
            str(k): v for k, v in Counter(emb[0] for emb in want).items()
        }
        assert columns.aggregate("vertex") == {
            str(k): v
            for k, v in Counter(v for emb in want for v in emb).items()
        }
        with pytest.raises(ValueError, match="group_by"):
            columns.aggregate("nope")

    def test_from_arrays_round_trip(self):
        columns = TrieColumns.from_embeddings(self.EMBS, 3)
        rebuilt = TrieColumns.from_arrays(columns.values, columns.parents)
        assert rebuilt.decompress_all() == columns.decompress_all()
        assert rebuilt.node_count == columns.node_count

    def test_from_arrays_rejects_malformed_parents(self):
        columns = TrieColumns.from_embeddings(self.EMBS, 3)
        bad = [np.array(level) for level in columns.parents]
        bad[1] = bad[1][::-1].copy()  # not nondecreasing
        with pytest.raises(ValueError):
            TrieColumns.from_arrays(columns.values, bad)

    def test_empty_set(self):
        columns = TrieColumns.from_embeddings([], 3)
        assert columns.decompress_all() == []
        assert columns.node_count == 0
        assert columns.lookup(0) == []
        assert columns.aggregate("root") == {}


# ----------------------------------------------------------------------
# Flatten/rebuild round-trips against the Sec. 5 trie (property tests)
# ----------------------------------------------------------------------
class TestTrieRoundTrip:
    def _check_round_trip(self, embeddings, num_vertices):
        columns = TrieColumns.from_embeddings(embeddings, num_vertices)
        rows = columns.decompress_all()
        assert rows == sorted(set(map(tuple, embeddings)))
        if not rows:
            return
        trie, leaves = trie_from_paths(rows)
        # Leaf paths survive the round trip, in leaf order.
        assert [tuple(leaf.path()) for leaf in leaves] == rows
        # Node and byte accounting agree with the pointer trie.
        assert trie.num_nodes == columns.node_count
        assert trie.memory_bytes() == columns.memory_bytes()
        # Child counts agree level by level (as multisets: the pointer
        # trie has no inherent sibling order).
        nodes = {}
        for leaf in leaves:
            node, depth = leaf, columns.depth - 1
            while node is not None and id(node) not in nodes:
                nodes[id(node)] = (node, depth)
                node, depth = node.parent, depth - 1
        by_depth = defaultdict(list)
        for node, depth in nodes.values():
            by_depth[depth].append(node.child_count)
        for level in range(columns.depth - 1):
            want = np.bincount(
                np.asarray(columns.parents[level + 1]),
                minlength=len(columns.values[level]),
            )
            assert sorted(by_depth[level]) == sorted(want.tolist())
        assert set(by_depth[columns.depth - 1]) <= {0}

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(
            st.lists(
                st.integers(0, 30), min_size=3, max_size=3, unique=True
            ).map(tuple),
            max_size=40,
        )
    )
    def test_random_paths_round_trip(self, rows):
        self._check_round_trip(rows, 3)

    @settings(max_examples=30, deadline=None)
    @given(
        num_vertices=st.integers(3, 5),
        extra_edges=st.integers(0, 3),
        seed=st.integers(0, 1000),
    )
    def test_pattern_gen_embeddings_round_trip(
        self, num_vertices, extra_edges, seed
    ):
        pattern = random_connected_pattern(
            num_vertices, extra_edges, seed=seed
        )
        graph = erdos_renyi(20, 0.25, seed=5)
        embeddings = _enumerated(graph, pattern)
        self._check_round_trip(embeddings, pattern.num_vertices)


# ----------------------------------------------------------------------
# EmbeddingStore persistence
# ----------------------------------------------------------------------
class TestEmbeddingStore:
    def _put(self, store, graph, pattern, *, engine="RADS"):
        key = cache_key(
            graph, pattern, engine, RunConfig(), collect="store"
        )
        embeddings = _enumerated(graph, pattern)
        store.put(key, pattern, _result(pattern, embeddings))
        return key, embeddings

    def test_restart_serves_byte_identical_pages(self, graph, tmp_path):
        pattern = triangle()
        first = EmbeddingStore(tmp_path / "store")
        key, embeddings = self._put(first, graph, pattern)
        reference = first.page(key, pattern, limit=7, offset=3)
        # A brand-new store over the same directory (a restarted server).
        second = EmbeddingStore(tmp_path / "store")
        served = second.page(key, pattern, limit=7, offset=3)
        assert served == reference
        assert served["embeddings"] == embeddings[3:10]
        assert served["total"] == len(embeddings)

    def test_result_for_strips_embeddings_and_counts_hit(
        self, graph, tmp_path
    ):
        pattern = triangle()
        store = EmbeddingStore(tmp_path)
        key, embeddings = self._put(store, graph, pattern)
        served = store.result_for(key, pattern)
        assert served.embeddings is None
        assert served.embedding_count == len(embeddings)
        assert served.counters[STORE_HIT_COUNTER] == 1

    def test_isomorphic_rewrite_hits_the_same_set(self, graph, tmp_path):
        store = EmbeddingStore(tmp_path)
        key, embeddings = self._put(store, graph, triangle())
        rewrite = repro.pattern("c-a, a-b, b-c").copy_with_name("rewrite")
        rewrite_key = cache_key(
            graph, rewrite, "RADS", RunConfig(), collect="store"
        )
        assert rewrite_key == key
        page = store.page(rewrite_key, rewrite, limit=len(embeddings))
        # Same matches as enumerating the rewrite directly (the sorted
        # order is the *stored* pattern's leaf order).
        assert sorted(page["embeddings"]) == _enumerated(graph, rewrite)

    def test_lookup_and_orbit_aggregate(self, graph, tmp_path):
        pattern = triangle()
        store = EmbeddingStore(tmp_path)
        key, embeddings = self._put(store, graph, pattern)
        vertex = embeddings[0][0]
        found = store.lookup(key, pattern, vertex)
        assert found["embeddings"] == [
            emb for emb in embeddings if vertex in emb
        ]
        assert found["count"] == len(found["embeddings"])
        # All three triangle positions are one automorphism orbit.
        assert pattern_orbits(pattern) == [(0, 1, 2)]
        agg = store.aggregate(key, pattern, "orbit")
        assert set(agg["groups"]) == {"0,1,2"}
        assert agg["groups"]["0,1,2"] == {
            str(k): v
            for k, v in Counter(v for emb in embeddings for v in emb).items()
        }

    def test_evict_graph_unlinks_files_by_fingerprint(self, graph, tmp_path):
        store = EmbeddingStore(tmp_path)
        key, _ = self._put(store, graph, triangle())
        other = erdos_renyi(30, 0.2, seed=9)
        other_key, _ = self._put(store, other, triangle())
        assert len(list(tmp_path.glob("*.npz"))) == 2
        assert store.evict_graph(graph.fingerprint()) == 1
        assert store.get(key) is None
        assert store.get(other_key) is not None
        assert len(list(tmp_path.glob("*.npz"))) == 1
        assert store.invalidations == 1

    def test_corrupt_file_is_a_miss_not_a_crash(self, graph, tmp_path):
        store = EmbeddingStore(tmp_path)
        key, _ = self._put(store, graph, triangle())
        [path] = tmp_path.glob("*.npz")
        path.write_bytes(b"not an npz payload")
        fresh = EmbeddingStore(tmp_path)
        assert fresh.get(key) is None
        assert fresh.errors == 1

    def test_put_rejects_uncollected_and_failed_runs(self, graph, tmp_path):
        pattern = triangle()
        store = EmbeddingStore(tmp_path)
        key = cache_key(
            graph, pattern, "RADS", RunConfig(), collect="store"
        )
        uncollected = _result(pattern, [])
        uncollected.embeddings = None
        with pytest.raises(ValueError):
            store.put(key, pattern, uncollected)
        with pytest.raises(ValueError):
            store.put(
                key,
                pattern,
                _result(
                    pattern,
                    [(0, 1, 2)],
                    failed=True,
                    failure="oom on machine 0",
                ),
            )


# ----------------------------------------------------------------------
# Scheduler: collect="store" submissions and indexed reads
# ----------------------------------------------------------------------
class TestSchedulerStore:
    def test_store_submission_then_hit(self, graph, tmp_path):
        with QueryScheduler(
            graph,
            RunConfig(machines=2),
            threads=2,
            store=EmbeddingStore(tmp_path),
        ) as scheduler:
            first = scheduler.submit("triangle", "RADS", collect="store")
            result = first.result(30)
            assert first.store == "stored"
            assert result.embeddings is None
            second = scheduler.submit("triangle", "RADS", collect="store")
            served = second.result(30)
            assert second.store == "hit"
            assert served.embedding_count == result.embedding_count
            assert served.counters[STORE_HIT_COUNTER] == 1
            stats = scheduler.stats()
            assert stats["store_hits"] == 1
            assert stats["store_stored"] == 1
            assert stats["store"]["sets"] == 1

    def test_stored_set_equals_plain_enumeration(self, graph, tmp_path):
        store = EmbeddingStore(tmp_path)
        with QueryScheduler(
            graph, RunConfig(machines=2), threads=2, store=store
        ) as scheduler:
            scheduler.submit("q1", "RADS", collect="store").result(30)
            plain = scheduler.submit("q1", "RADS", collect=True).result(30)
            page = scheduler.page("q1", "RADS", limit=10 ** 6)
        assert page["embeddings"] == sorted(set(map(tuple, plain.embeddings)))
        assert page["store"] == "hit"

    def test_store_mode_without_a_store_is_rejected(self, graph):
        with QueryScheduler(graph, RunConfig(machines=2)) as scheduler:
            with pytest.raises(ValueError, match="store-dir|store"):
                scheduler.submit("triangle", "RADS", collect="store")

    def test_reads_before_any_store_run_raise_lookup_error(
        self, graph, tmp_path
    ):
        with QueryScheduler(
            graph,
            RunConfig(machines=2),
            store=EmbeddingStore(tmp_path),
        ) as scheduler:
            with pytest.raises(LookupError, match="collect='store'"):
                scheduler.page("triangle", "RADS", limit=5)
            with pytest.raises(LookupError):
                scheduler.lookup("triangle", "RADS", vertex=0)
            with pytest.raises(LookupError):
                scheduler.aggregate("triangle", "RADS", group_by="root")

    def test_truthy_non_bool_collect_is_rejected(self, graph):
        with QueryScheduler(graph, RunConfig(machines=2)) as scheduler:
            with pytest.raises(Exception, match="collect"):
                scheduler.submit("triangle", "RADS", collect=1)


# ----------------------------------------------------------------------
# Engine x catalogue parity: stored sets equal plain enumeration
# ----------------------------------------------------------------------
ENGINES = [
    "RADS", "PSgL", "TwinTwig", "SEED", "Crystal",
    "BigJoin", "Multiway", "Replication", "Single",
]
QUERIES = ["triangle", "q1", "q4", "star3"]


class TestEngineCatalogueParity:
    @pytest.fixture(scope="class")
    def small_graph(self):
        return erdos_renyi(30, 0.18, seed=7)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("query", QUERIES)
    def test_full_decompression_equals_collect_true(
        self, small_graph, tmp_path, engine, query
    ):
        session = (
            repro.open(small_graph)
            .with_cluster(machines=2)
            .with_store(tmp_path)
            .engine(engine)
            .query(query)
        )
        stored = session.run(collect="store")
        plain = session.run(collect=True)
        page = session.page(limit=max(1, stored.embedding_count))
        assert page["total"] == plain.embedding_count
        assert page["embeddings"] == sorted(
            set(map(tuple, plain.embeddings))
        )


# ----------------------------------------------------------------------
# Server: wire ops, restart, request log
# ----------------------------------------------------------------------
class TestServerStore:
    def test_submit_page_lookup_aggregate_over_the_wire(
        self, graph, tmp_path
    ):
        with QueryServer(
            graph,
            RunConfig(machines=2),
            threads=2,
            store_dir=str(tmp_path / "store"),
            log_path=str(tmp_path / "requests.jsonl"),
        ).start() as server:
            with connect(server.address, timeout=60) as client:
                first = client.submit("triangle", collect="store")
                assert client.last_store == "stored"
                assert first.embeddings is None
                client.submit("triangle", collect="store")
                assert client.last_store == "hit"
                page = client.page("triangle", limit=5, offset=2)
                found = client.lookup(
                    "triangle", vertex=page["embeddings"][0][0]
                )
                agg = client.aggregate("triangle", group_by="root")
                metrics = client.metrics()
        assert page["store"] == "hit" and len(page["embeddings"]) == 5
        assert found["count"] >= 1
        assert sum(agg["groups"].values()) == first.embedding_count
        assert metrics["store"]["sets"] == 1
        # The request log replays: store reads come back as plain dicts
        # tagged with their kind (no embedding payload).
        records = read_records_jsonl(tmp_path / "requests.jsonl")
        kinds = [r["kind"] for r in records if isinstance(r, dict)]
        assert kinds == ["page", "lookup", "aggregate"]
        assert all(
            "embeddings" not in r for r in records if isinstance(r, dict)
        )

    def test_restart_serves_identical_pages_from_disk(self, graph, tmp_path):
        store_dir = str(tmp_path / "store")
        with QueryServer(
            graph, RunConfig(machines=2), store_dir=store_dir
        ).start() as server:
            with connect(server.address, timeout=60) as client:
                client.submit("triangle", collect="store")
                reference = client.page("triangle", limit=6, offset=1)
        with QueryServer(
            graph, RunConfig(machines=2), store_dir=store_dir
        ).start() as server:
            with connect(server.address, timeout=60) as client:
                served = client.page("triangle", limit=6, offset=1)
                client.submit("triangle", collect="store")
                assert client.last_store == "hit"
        assert served == reference

    def test_ingest_invalidates_stored_sets(self, tmp_path):
        graph = erdos_renyi(40, 0.15, seed=23)
        missing = next(
            (u, v)
            for u in range(40)
            for v in range(u + 1, 40)
            if v not in graph.neighbors(u)
        )
        with QueryServer(
            graph, RunConfig(machines=2), store_dir=str(tmp_path)
        ).start() as server:
            with connect(server.address, timeout=60) as client:
                client.submit("triangle", collect="store")
                client.page("triangle", limit=1)
                client.ingest(additions=[missing])
                with pytest.raises(Exception, match="no stored set"):
                    client.page("triangle", limit=1)
        assert list(tmp_path.glob("*.npz")) == []

    def test_wire_validation(self, graph, tmp_path):
        from repro.service.client import ServiceError

        with QueryServer(
            graph, RunConfig(machines=2), store_dir=str(tmp_path)
        ).start() as server:
            with connect(server.address, timeout=60) as client:
                with pytest.raises(ServiceError, match="limit"):
                    client.page("triangle", limit=0)
                with pytest.raises(ServiceError, match="offset"):
                    client.page("triangle", limit=1, offset=-1)
                with pytest.raises(ServiceError, match="vertex"):
                    client.lookup("triangle", vertex=-3)
                with pytest.raises(ServiceError, match="group_by"):
                    client.aggregate("triangle", group_by="median")
                with pytest.raises(ServiceError, match="collect"):
                    client.submit("triangle", collect=1)

    def test_store_ops_without_a_store_dir_fail_cleanly(self, graph):
        from repro.service.client import ServiceError

        with QueryServer(graph, RunConfig(machines=2)).start() as server:
            with connect(server.address, timeout=60) as client:
                with pytest.raises(ServiceError, match="store"):
                    client.submit("triangle", collect="store")
                with pytest.raises(ServiceError, match="store"):
                    client.page("triangle", limit=1)

    def test_store_and_store_dir_are_mutually_exclusive(self, graph, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            QueryServer(
                graph,
                store=EmbeddingStore(tmp_path),
                store_dir=str(tmp_path),
            )


# ----------------------------------------------------------------------
# Session: with_store / run(collect="store") / indexed reads
# ----------------------------------------------------------------------
class TestSessionStore:
    def test_run_store_mode_round_trip(self, graph, tmp_path):
        session = (
            repro.open(graph).with_store(tmp_path)
            .engine("RADS").query("triangle")
        )
        stored = session.run(collect="store")
        assert stored.embeddings is None
        again = session.run(collect="store")
        assert again.counters[STORE_HIT_COUNTER] == 1
        want = _enumerated(graph, triangle())
        assert session.page(limit=4, offset=1)["embeddings"] == want[1:5]
        vertex = want[0][0]
        assert session.lookup(vertex)["embeddings"] == [
            emb for emb in want if vertex in emb
        ]
        assert session.aggregate("root")["groups"] == {
            str(k): v for k, v in Counter(emb[0] for emb in want).items()
        }

    def test_reads_need_a_store_and_a_stored_set(self, graph, tmp_path):
        session = repro.open(graph).engine("RADS").query("triangle")
        with pytest.raises(RuntimeError, match="with_store"):
            session.page(limit=1)
        session.with_store(tmp_path)
        with pytest.raises(LookupError, match="collect='store'"):
            session.page(limit=1)

    def test_store_mode_without_a_store_is_rejected(self, graph):
        session = repro.open(graph).engine("RADS").query("triangle")
        with pytest.raises(RuntimeError, match="with_store"):
            session.run(collect="store")

    def test_config_collect_store_applies_to_plain_run(self, graph, tmp_path):
        session = (
            repro.open(graph, config=RunConfig(collect="store"))
            .with_store(tmp_path).engine("RADS").query("triangle")
        )
        assert session.run().embeddings is None
        assert session.page(limit=1)["total"] > 0

    def test_ingest_evicts_the_old_snapshot(self, tmp_path):
        graph = erdos_renyi(40, 0.15, seed=23)
        missing = next(
            (u, v)
            for u in range(40)
            for v in range(u + 1, 40)
            if v not in graph.neighbors(u)
        )
        session = (
            repro.open(graph).with_store(tmp_path)
            .engine("RADS").query("triangle")
        )
        session.run(collect="store")
        session.ingest(additions=[missing])
        with pytest.raises(LookupError):
            session.page(limit=1)
        assert session.store.invalidations == 1
        # Re-storing against the new snapshot works.
        session.run(collect="store")
        assert session.page(limit=1)["total"] > 0

    def test_serve_shares_the_session_store(self, graph, tmp_path):
        session = repro.open(graph).with_store(tmp_path)
        server = session.serve(port=0, start=False)
        try:
            assert server.store is session.store
        finally:
            server.close()


# ----------------------------------------------------------------------
# ResultCache.evict_graph also unlinks disk spills (PR 8 fix)
# ----------------------------------------------------------------------
class TestCacheEvictGraphDiskTier:
    def test_disk_spills_are_unlinked_by_fingerprint(self, tmp_path):
        p = triangle()
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(("fp-a", "x"), p, _result(p, [(1, 2, 3)]))
        cache.put(("fp-b", "y"), p, _result(p, [(4, 5, 6)]))
        assert len(list(tmp_path.glob("*.json"))) == 2
        # One memory entry + one spill file for fp-a, both invalidated.
        assert cache.evict_graph("fp-a") == 2
        assert cache.invalidations == 2
        assert cache.get(("fp-a", "x"), p) is None
        assert cache.get(("fp-b", "y"), p) is not None
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_stale_spill_cannot_survive_a_restart(self, tmp_path):
        p = triangle()
        first = ResultCache(capacity=1, disk_dir=tmp_path)
        first.put(("fp-a", "x"), p, _result(p, [(1, 2, 3)]))
        first.evict_graph("fp-a")
        # A restarted cache over the same directory has nothing to serve
        # for the evicted fingerprint.
        second = ResultCache(disk_dir=tmp_path)
        assert second.get(("fp-a", "x"), p) is None

    def test_unreadable_spill_counts_as_disk_error(self, tmp_path):
        p = triangle()
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(("fp-a", "x"), p, _result(p, [(1, 2, 3)]))
        digest = key_digest(("fp-a", "x"))
        (tmp_path / f"{digest}.json").write_text("{broken json")
        assert cache.evict_graph("fp-a") == 1  # the memory entry
        assert cache.disk_errors == 1


# ----------------------------------------------------------------------
# Record-log replay of store reads
# ----------------------------------------------------------------------
class TestStoreReadRecords:
    def test_store_read_kinds_pass_through_as_dicts(self):
        record = {
            "kind": "page", "query": "triangle", "engine": "RADS",
            "total": 9, "offset": 0, "limit": 5, "store": "hit",
        }
        assert record_from_dict(record) is record

    def test_unknown_kind_still_raises(self):
        with pytest.raises(ValueError, match="unrecognised"):
            record_from_dict({"kind": "mystery"})
