"""Tests for the edge verification index and the foreign-vertex cache."""

import numpy as np
import pytest

from repro.core.cache import ForeignVertexCache
from repro.core.embedding_trie import EmbeddingTrie
from repro.core.evi import EdgeVerificationIndex


class TestEVI:
    @pytest.fixture()
    def leaves(self):
        trie = EmbeddingTrie()
        return [trie.extend_path(None, (i, i + 1)) for i in range(0, 9, 3)]

    def test_shared_edge_groups_ecs(self, leaves):
        """Def. 5: ECs sharing an undetermined edge live under one key."""
        evi = EdgeVerificationIndex()
        evi.add((5, 9), leaves[0])
        evi.add((9, 5), leaves[1])  # reversed endpoints, same edge
        assert len(evi) == 1
        assert len(evi.leaves_for((5, 9))) == 2

    def test_failed_leaves_dedup(self, leaves):
        evi = EdgeVerificationIndex()
        evi.add((1, 2), leaves[0])
        evi.add((3, 4), leaves[0])  # same EC depends on two edges
        evi.add((3, 4), leaves[1])
        dead = evi.failed_leaves([(1, 2), (3, 4)])
        assert len(dead) == 2  # leaf 0 counted once

    def test_group_by_machine(self, leaves):
        evi = EdgeVerificationIndex()
        evi.add((0, 7), leaves[0])
        evi.add((2, 9), leaves[1])
        groups = evi.group_by_machine(lambda v: v % 2)
        assert set(groups) == {0}
        evi.add((1, 8), leaves[2])
        groups = evi.group_by_machine(lambda v: v % 2)
        assert sorted(groups) == [0, 1]

    def test_contains_and_clear(self, leaves):
        evi = EdgeVerificationIndex()
        evi.add((4, 2), leaves[0])
        assert (2, 4) in evi
        evi.clear()
        assert len(evi) == 0


class TestForeignVertexCache:
    def test_put_get(self):
        cache = ForeignVertexCache()
        adj = np.array([1, 2, 3], dtype=np.int64)
        cache.put(7, adj)
        assert 7 in cache
        assert cache.get(7) is adj
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = ForeignVertexCache()
        assert cache.get(3) is None
        assert cache.misses == 1

    def test_eviction_under_budget(self):
        cache = ForeignVertexCache(budget_bytes=100)
        a = np.arange(5, dtype=np.int64)   # 48 bytes
        b = np.arange(5, dtype=np.int64)
        c = np.arange(5, dtype=np.int64)
        cache.put(1, a)
        cache.put(2, b)
        evicted = cache.put(3, c)  # must evict the oldest (1)
        assert evicted == ForeignVertexCache.entry_bytes(a)
        assert 1 not in cache and 2 in cache and 3 in cache
        assert cache.evictions == 1

    def test_budget_respected(self):
        cache = ForeignVertexCache(budget_bytes=200)
        for v in range(20):
            cache.put(v, np.arange(4, dtype=np.int64))
        assert cache.bytes_used <= 200

    def test_duplicate_put_free(self):
        cache = ForeignVertexCache()
        adj = np.arange(3, dtype=np.int64)
        cache.put(1, adj)
        before = cache.bytes_used
        assert cache.put(1, adj) == 0
        assert cache.bytes_used == before

    def test_clear(self):
        cache = ForeignVertexCache()
        cache.put(1, np.arange(10, dtype=np.int64))
        released = cache.clear()
        assert released > 0
        assert len(cache) == 0 and cache.bytes_used == 0

    def test_peek_no_stats(self):
        cache = ForeignVertexCache()
        cache.put(4, np.arange(2, dtype=np.int64))
        cache.peek(4)
        cache.peek(5)
        assert cache.hits == 0 and cache.misses == 0


class TestEvictionPolicies:
    def _fill(self, cache):
        # Three single-neighbour entries of 16 bytes each.
        for v in (1, 2, 3):
            cache.put(v, np.array([v + 10], dtype=np.int64))

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ForeignVertexCache(policy="mru")

    def test_fifo_evicts_oldest_even_if_hot(self):
        cache = ForeignVertexCache(budget_bytes=48, policy="fifo")
        self._fill(cache)
        cache.get(1)  # hot, but FIFO does not care
        cache.put(4, np.array([14], dtype=np.int64))
        assert 1 not in cache
        assert 2 in cache and 3 in cache and 4 in cache

    def test_lru_keeps_hot_entry(self):
        cache = ForeignVertexCache(budget_bytes=48, policy="lru")
        self._fill(cache)
        cache.get(1)  # refresh: 2 becomes the least recently used
        cache.put(4, np.array([14], dtype=np.int64))
        assert 1 in cache
        assert 2 not in cache

    def test_peek_does_not_refresh_lru(self):
        cache = ForeignVertexCache(budget_bytes=48, policy="lru")
        self._fill(cache)
        cache.peek(1)
        cache.put(4, np.array([14], dtype=np.int64))
        assert 1 not in cache  # peek left 1 as the eviction victim
