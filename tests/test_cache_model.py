"""Model-based test: ForeignVertexCache against a reference model.

A hypothesis state machine drives the cache with arbitrary put/get/clear
sequences and checks every observable (membership, byte accounting,
hit/miss counters, eviction order) against a straightforward Python model
for both eviction policies.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.cache import ForeignVertexCache

BUDGET = 160  # small enough that eviction happens constantly


def entry_cost(degree: int) -> int:
    return (degree + 1) * 8


class CacheModel(RuleBasedStateMachine):
    @initialize(policy=st.sampled_from(["fifo", "lru"]))
    def setup(self, policy):
        self.policy = policy
        self.cache = ForeignVertexCache(budget_bytes=BUDGET, policy=policy)
        self.model: dict[int, int] = {}  # vertex -> degree, in order
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @rule(v=st.integers(0, 14), degree=st.integers(0, 8))
    def put(self, v, degree):
        adjacency = np.arange(degree, dtype=np.int64)
        self.cache.put(v, adjacency)
        if v in self.model:
            return  # duplicate put is a no-op
        cost = entry_cost(degree)
        used = sum(entry_cost(d) for d in self.model.values())
        while self.model and used + cost > BUDGET:
            oldest = next(iter(self.model))
            used -= entry_cost(self.model.pop(oldest))
        self.model[v] = degree

    @rule(v=st.integers(0, 14))
    def get(self, v):
        got = self.cache.get(v)
        if v in self.model:
            self.hits += 1
            assert got is not None
            assert len(got) == self.model[v]
            if self.policy == "lru":
                self.model[v] = self.model.pop(v)  # move to end
        else:
            self.misses += 1
            assert got is None

    @rule()
    def clear(self):
        released = self.cache.clear()
        assert released == sum(entry_cost(d) for d in self.model.values())
        self.model.clear()

    # ------------------------------------------------------------------
    @invariant()
    def same_membership(self):
        if not hasattr(self, "model"):
            return
        for v in range(15):
            assert (v in self.cache) == (v in self.model)
        assert len(self.cache) == len(self.model)

    @invariant()
    def byte_accounting_matches(self):
        if not hasattr(self, "model"):
            return
        assert self.cache.bytes_used == sum(
            entry_cost(d) for d in self.model.values()
        )
        assert self.cache.bytes_used <= BUDGET or len(self.model) == 1

    @invariant()
    def counters_match(self):
        if not hasattr(self, "model"):
            return
        assert self.cache.hits == self.hits
        assert self.cache.misses == self.misses


TestCacheModel = CacheModel.TestCase
TestCacheModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
