"""Streaming graph ingest + incremental continuous queries (PR 7).

Covers the whole streaming subsystem end to end:

- the versioned mutable graph layer (``Graph.apply_batch`` delta-merge,
  read-only CSR arrays, fingerprint/version keying);
- the incremental matcher — per-batch delta embeddings asserted equal to
  the diff of full re-enumerations for several patterns across
  additions-only, deletions-only and mixed batches, on the serial path
  and through a socket-backed server (the PR's parity acceptance);
- the continuous-query surface: manager, scheduler jobs + tenant quotas,
  the register/unregister/ingest/poll protocol ops, push mode and
  ``subscribe``, the ``Session.watch``/``Session.ingest`` API, and the
  ``repro ingest`` / ``repro subscribe`` CLI;
- a registered continuous query firing correct deltas across a shard
  worker crash + replacement announce (the elastic acceptance path).
"""

from __future__ import annotations

import contextlib
import io
import json
import threading
import time

import numpy as np
import pytest

import repro
from repro.api import RunConfig
from repro.api.results import append_record_jsonl, read_records_jsonl
from repro.cli import main as cli_main
from repro.distributed import ShardRegistry, ShardWorker
from repro.enumeration.backtracking import (
    BacktrackingEnumerator,
    compute_matching_order,
)
from repro.graph import erdos_renyi
from repro.graph.graph import Graph, canonical_edge_array
from repro.graph.labeled import LabeledGraph
from repro.query.dsl import parse_pattern
from repro.runtime.executor import ProcessExecutor
from repro.service import (
    QueryScheduler,
    QueryServer,
    ServiceError,
    TenantQuota,
    connect,
)
from repro.streaming import (
    ContinuousQueryManager,
    DeltaParityError,
    DeltaRecord,
    GraphVersion,
    IncrementalMatcher,
    VersionedGraph,
    full_embeddings,
)

# The parity patterns the acceptance criterion sweeps (>= 3).
PATTERNS = {
    "triangle": "a-b, b-c, c-a",
    "square": "a-b, b-c, c-d, d-a",
    "path4": "a-b, b-c, c-d",
}


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(40, 0.12, seed=17)


def _present(graph):
    return sorted(graph.edges())

def _absent(graph):
    present = set(graph.edges())
    n = graph.num_vertices
    return [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if (u, v) not in present
    ]


def _batches(graph):
    """Three batch shapes per graph: add-only, delete-only, mixed."""
    absent, present = _absent(graph), _present(graph)
    return {
        "additions": (absent[:6], []),
        "deletions": ([], present[:5]),
        "mixed": (absent[6:10], present[5:9]),
    }


def _poll_until(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


# ----------------------------------------------------------------------
# Satellite 1: frozen CSR arrays (fingerprint cannot go stale)
# ----------------------------------------------------------------------
class TestFrozenGraph:
    def test_csr_arrays_are_read_only(self, graph):
        with pytest.raises(ValueError):
            graph.indptr[0] = 99
        with pytest.raises(ValueError):
            graph.indices[0] = 99

    def test_fingerprint_stays_valid_because_arrays_cannot_mutate(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2)])
        before = g.fingerprint()
        with pytest.raises(ValueError):
            g.indices[:] = 0
        assert g.fingerprint() == before

    def test_frozen_view_shares_memory_with_caller_array(self):
        # _frozen must be a view, not a copy: shared-memory graphs rely
        # on zero-copy construction.
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        g = Graph(indptr, indices)
        assert np.shares_memory(g.indptr, indptr)
        assert np.shares_memory(g.indices, indices)


# ----------------------------------------------------------------------
# Graph.apply_batch: delta-merge snapshot builds
# ----------------------------------------------------------------------
class TestApplyBatch:
    @pytest.mark.parametrize("kind", ["additions", "deletions", "mixed"])
    def test_matches_from_edges_ground_truth(self, graph, kind):
        adds, dels = _batches(graph)[kind]
        merged = graph.apply_batch(additions=adds, deletions=dels)
        edges = (set(graph.edges()) | set(adds)) - set(dels)
        truth = Graph.from_edges(graph.num_vertices, sorted(edges))
        assert merged == truth
        assert merged.fingerprint() == truth.fingerprint()

    def test_parallel_chunked_merge_equals_serial(self, graph):
        adds, dels = _batches(graph)["mixed"]
        serial = graph.apply_batch(additions=adds, deletions=dels)
        with ProcessExecutor(2) as executor:
            parallel = graph.apply_batch(
                additions=adds, deletions=dels, executor=executor
            )
        assert parallel == serial
        assert parallel.fingerprint() == serial.fingerprint()

    def test_original_snapshot_is_untouched(self, graph):
        before = graph.fingerprint()
        edges_before = list(graph.edges())
        graph.apply_batch(additions=_absent(graph)[:3])
        assert graph.fingerprint() == before
        assert list(graph.edges()) == edges_before

    def test_empty_batch_is_a_fresh_equal_snapshot(self, graph):
        snapshot = graph.apply_batch()
        assert snapshot == graph
        assert snapshot is not graph
        assert snapshot.fingerprint() == graph.fingerprint()

    def test_validation_errors_name_the_offender(self, graph):
        present, absent = _present(graph), _absent(graph)
        u, v = present[0]
        with pytest.raises(ValueError, match=rf"additions.*\({u}, {v}\)"):
            graph.apply_batch(additions=[(u, v)])
        a, b = absent[0]
        with pytest.raises(ValueError, match=rf"deletions.*\({a}, {b}\)"):
            graph.apply_batch(deletions=[(a, b)])
        with pytest.raises(ValueError, match=rf"overlap.*\({a}, {b}\)"):
            graph.apply_batch(additions=[(a, b)], deletions=[(a, b)])
        with pytest.raises(ValueError, match="self loops"):
            graph.apply_batch(additions=[(3, 3)])
        with pytest.raises(ValueError, match="out of range"):
            graph.apply_batch(additions=[(0, graph.num_vertices)])

    def test_canonical_edge_array_dedups_and_orients(self):
        edges = canonical_edge_array([(5, 2), (2, 5), (1, 3)], 8)
        assert edges.tolist() == [[1, 3], [2, 5]]


# ----------------------------------------------------------------------
# Enumeration machinery: prefix orders + seeded runs
# ----------------------------------------------------------------------
class TestPrefixAndSeeded:
    def test_prefix_leads_the_matching_order(self):
        square = parse_pattern(PATTERNS["square"])
        order = compute_matching_order(square, prefix=[2, 3])
        assert order[:2] == [2, 3]
        assert sorted(order) == list(range(4))

    def test_prefix_validation(self):
        square = parse_pattern(PATTERNS["square"])
        with pytest.raises(ValueError, match="not both"):
            compute_matching_order(square, start=0, prefix=[1])
        with pytest.raises(ValueError, match="repeats"):
            compute_matching_order(square, prefix=[1, 1])
        with pytest.raises(ValueError, match="not in pattern"):
            compute_matching_order(square, prefix=[9])
        # 0 and 2 are opposite corners of the square: not adjacent to
        # any earlier prefix vertex.
        with pytest.raises(ValueError):
            compute_matching_order(square, prefix=[0, 2])

    def test_run_seeded_agrees_with_filtered_full_run(self, graph):
        from repro.query.symmetry import symmetry_breaking_constraints

        tri = parse_pattern(PATTERNS["triangle"])
        order = compute_matching_order(tri, prefix=[0, 1])
        full = full_embeddings(graph, tri)
        a, b = sorted(_present(graph))[10]
        enum = BacktrackingEnumerator(
            tri, graph.neighbors,
            constraints=list(symmetry_breaking_constraints(tri)),
            order=order,
        )
        seeded = set(enum.run_seeded({0: a, 1: b}))
        expected = {f for f in full if f[0] == a and f[1] == b}
        assert seeded == expected

    def test_run_seeded_invalid_seed_is_empty_not_an_error(self, graph):
        tri = parse_pattern(PATTERNS["triangle"])
        order = compute_matching_order(tri, prefix=[0, 1])
        enum = BacktrackingEnumerator(tri, graph.neighbors, order=order)
        # Non-injective seed matches nothing.
        assert list(enum.run_seeded({0: 4, 1: 4})) == []
        # Seeding vertices out of order position is a caller bug.
        with pytest.raises(ValueError, match="order"):
            list(enum.run_seeded({0: 1, 2: 3}))
        with pytest.raises(ValueError, match="at least one"):
            list(enum.run_seeded({}))


# ----------------------------------------------------------------------
# Acceptance: incremental delta == diff of full re-enumerations
# ----------------------------------------------------------------------
class TestDeltaParitySerial:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    @pytest.mark.parametrize("kind", ["additions", "deletions", "mixed"])
    def test_delta_equals_full_recount_diff(self, graph, name, kind):
        pattern = parse_pattern(PATTERNS[name])
        adds, dels = _batches(graph)[kind]
        new = graph.apply_batch(additions=adds, deletions=dels)
        matcher = IncrementalMatcher(pattern)
        added, removed = matcher.delta(graph, new, adds, dels)
        old_full, new_full = (
            full_embeddings(graph, pattern),
            full_embeddings(new, pattern),
        )
        assert set(added) == new_full - old_full
        assert set(removed) == old_full - new_full
        assert len(added) == len(set(added))
        assert len(removed) == len(set(removed))
        # verify_parity is the same assertion, packaged for CI.
        matcher.verify_parity(graph, new, added, removed)

    def test_verify_parity_rejects_wrong_deltas(self, graph):
        pattern = parse_pattern(PATTERNS["triangle"])
        adds = _absent(graph)[:4]
        new = graph.apply_batch(additions=adds)
        matcher = IncrementalMatcher(pattern)
        added, removed = matcher.delta(graph, new, adds, [])
        with pytest.raises(DeltaParityError):
            matcher.verify_parity(graph, new, added[:-1], removed)

    def test_randomized_batches_hold_parity(self):
        rng = np.random.default_rng(7)
        g = erdos_renyi(30, 0.15, seed=3)
        matchers = {
            name: IncrementalMatcher(parse_pattern(dsl))
            for name, dsl in PATTERNS.items()
        }
        for _ in range(8):
            absent, present = _absent(g), _present(g)
            adds = [
                absent[i]
                for i in rng.choice(len(absent), size=5, replace=False)
            ]
            dels = [
                present[i]
                for i in rng.choice(len(present), size=4, replace=False)
            ]
            new = g.apply_batch(additions=adds, deletions=dels)
            for name, matcher in matchers.items():
                added, removed = matcher.delta(g, new, adds, dels)
                matcher.verify_parity(g, new, added, removed)
            g = new


# ----------------------------------------------------------------------
# Versioned graph handles
# ----------------------------------------------------------------------
class TestVersionedGraph:
    def test_linear_version_history(self, graph):
        versions = VersionedGraph(graph)
        v0 = versions.current
        assert v0.version == 0
        assert v0.fingerprint == graph.fingerprint()
        old, new = versions.apply_batch(_absent(graph)[:2], ())
        assert old is v0
        assert new.version == 1
        assert versions.current is new
        assert new.fingerprint != v0.fingerprint
        # In-flight readers holding v0 still see the old snapshot.
        assert v0.graph.fingerprint() == graph.fingerprint()

    def test_rejected_batch_leaves_version_unchanged(self, graph):
        versions = VersionedGraph(graph)
        with pytest.raises(ValueError):
            versions.apply_batch([(0, 0)], ())
        assert versions.current.version == 0

    def test_describe_is_json_safe(self, graph):
        handle = GraphVersion.initial(graph)
        described = handle.describe()
        assert described["version"] == 0
        assert described["num_edges"] == graph.num_edges
        json.dumps(described)


# ----------------------------------------------------------------------
# ContinuousQueryManager: watches, fan-out, quotas
# ----------------------------------------------------------------------
class TestContinuousQueryManager:
    def test_register_ingest_poll_unregister(self, graph):
        manager = ContinuousQueryManager(graph, verify=True)
        watch = manager.register("a-b, b-c, c-a")
        report = manager.ingest(_absent(graph)[:5], ())
        assert report["version"] == 1
        assert report["watches"][watch.id]["added"] >= 0
        [record] = watch.poll()
        assert isinstance(record, DeltaRecord)
        assert record.version == 1
        assert record.graph_fingerprint == manager.current.fingerprint
        assert watch.poll() == []
        assert manager.unregister(watch.id) is True
        assert manager.unregister(watch.id) is False

    def test_collect_false_carries_counts_only(self, graph):
        manager = ContinuousQueryManager(graph)
        watch = manager.register("a-b, b-c, c-a", collect=False)
        manager.ingest(_absent(graph)[:5], ())
        [record] = watch.poll()
        assert record.added is None and record.removed is None
        assert record.added_count >= 0

    def test_labeled_queries_are_rejected(self, graph):
        manager = ContinuousQueryManager(graph)
        with pytest.raises((ValueError, KeyError)):
            manager.register(42)  # type: ignore[arg-type]

    def test_scheduler_jobs_and_quota_drop(self, graph):
        with QueryScheduler(
            graph,
            RunConfig(machines=3),
            threads=2,
            tenants={"starved": TenantQuota(rate=1.0, burst=1)},
        ) as scheduler:
            manager = ContinuousQueryManager(
                graph,
                scheduler=scheduler,
                on_rebind=lambda old, new: scheduler.rebind_graph(new.graph),
            )
            free = manager.register("a-b, b-c, c-a")
            starved = manager.register("a-b, b-c, c-a", tenant="starved")
            absent = _absent(graph)
            first = manager.ingest(absent[:2], ())
            assert "added" in first["watches"][free.id]
            assert "added" in first["watches"][starved.id]
            # The second batch exhausts the starved tenant's burst:
            # its delta is dropped, the free watch still fires.
            second = manager.ingest(absent[2:4], ())
            assert "added" in second["watches"][free.id]
            assert second["watches"][starved.id]["dropped"] is True
            assert starved.dropped == 1
            assert len(free.poll()) == 2
            assert len(starved.poll()) == 1
            stats = manager.stats()
            assert stats["batches"] == 2
            assert stats["quota_dropped"] == 1
            # The scheduler now serves the ingested graph version.
            assert scheduler.graph.fingerprint() == \
                manager.current.fingerprint

    def test_pending_queue_overflow_drops_oldest(self, graph):
        manager = ContinuousQueryManager(graph)
        watch = manager.register("a-b, b-c, c-a")
        watch._pending_limit = 2
        absent = _absent(graph)
        for i in range(4):
            manager.ingest([absent[i]], ())
        records = watch.poll()
        assert len(records) == 2
        assert [r.version for r in records] == [3, 4]
        assert watch.dropped == 2


# ----------------------------------------------------------------------
# Service surface over a real socket
# ----------------------------------------------------------------------
@pytest.fixture()
def server(graph, tmp_path):
    server = QueryServer(
        graph,
        RunConfig(machines=3),
        threads=2,
        verify_deltas=True,
        log_path=str(tmp_path / "requests.jsonl"),
    )
    with server.start():
        yield server


class TestServiceStreaming:
    def test_register_ingest_poll_round_trip(self, graph, server):
        batches = _batches(graph)
        with connect(server.address, timeout=60) as client:
            assert client.hello["graph_version"] == 0
            info = client.register("a-b, b-c, c-a")
            watch = info["watch"]
            snapshots = [graph]
            for kind in ("additions", "deletions", "mixed"):
                adds, dels = batches[kind]
                report = client.ingest(
                    additions=adds or None, deletions=dels or None
                )
                snapshots.append(
                    snapshots[-1].apply_batch(additions=adds, deletions=dels)
                )
                assert report["version"] == len(snapshots) - 1
                assert report["fingerprint"] == \
                    snapshots[-1].fingerprint()
            deltas = client.poll(watch)
            assert [d.version for d in deltas] == [1, 2, 3]
            tri = parse_pattern(PATTERNS["triangle"])
            for delta, old, new in zip(
                deltas, snapshots, snapshots[1:]
            ):
                old_full, new_full = (
                    full_embeddings(old, tri),
                    full_embeddings(new, tri),
                )
                assert set(delta.added) == new_full - old_full
                assert set(delta.removed) == old_full - new_full
            # Post-ingest submits run against the latest snapshot.
            result = client.submit("triangle", engine="rads")
            assert result.embedding_count == len(
                full_embeddings(snapshots[-1], tri)
            )
            assert client.unregister(watch) is True

    def test_ingest_errors_and_connection_survival(self, graph, server):
        present = _present(graph)
        with connect(server.address, timeout=60) as client:
            with pytest.raises(ServiceError, match="already present"):
                client.ingest(additions=[present[0]])
            with pytest.raises(ServiceError, match="additions.*deletions"):
                client.ingest()
            with pytest.raises(ServiceError, match="unknown 'watch'"):
                client.poll("w99")
            assert client.ping()

    def test_push_mode_subscribe(self, graph, server):
        absent = _absent(graph)
        with connect(server.address, timeout=60) as ingester, \
                connect(server.address, timeout=60) as subscriber:
            got = []
            subscription = subscriber.subscribe("a-b, b-c, c-a")

            def consume():
                for record in subscription:
                    got.append(record)
                    if len(got) >= 2:
                        break

            thread = threading.Thread(target=consume, daemon=True)
            thread.start()
            _poll_until(
                lambda: server.streams.stats()["watches"]
                and server.streams.stats()["watches"][0]["push"],
                message="push sink attached",
            )
            ingester.ingest(additions=absent[:2])
            ingester.ingest(additions=absent[2:4])
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert [r.version for r in got] == [1, 2]
            subscription.close()
            # Closing unregistered the watch server-side.
            assert server.streams.stats()["watches"] == []

    def test_cache_invalidation_by_version(self, graph, server):
        with connect(server.address, timeout=60) as client:
            client.submit("triangle", engine="rads")
            client.submit("triangle", engine="rads")
            assert client.last_cache == "hit"
            client.ingest(additions=[_absent(graph)[0]])
            # The old version's entries are unreachable and evicted.
            client.submit("triangle", engine="rads")
            assert client.last_cache == "miss"
            stats = client.stats()
            assert stats["cache"]["invalidations"] >= 1

    def test_metrics_and_request_log_replay(self, graph, server):
        with connect(server.address, timeout=60) as client:
            info = client.register("a-b, b-c, c-a")
            client.ingest(additions=[_absent(graph)[0]])
            metrics = client.metrics()
            assert metrics["graph_version"] == 1
            assert metrics["streaming"]["batches"] == 1
            assert metrics["streaming"]["delta_records"] == 1
            client.unregister(info["watch"])
        server.close()
        # Satellite 2: the request log replays delta records as typed
        # objects alongside RunResults/QueryExplanations.
        records = read_records_jsonl(server._log_path)
        deltas = [r for r in records if isinstance(r, DeltaRecord)]
        assert len(deltas) == 1
        assert deltas[0].version == 1


# ----------------------------------------------------------------------
# Acceptance: parity through the socket backend + crash/replacement
# ----------------------------------------------------------------------
class TestSocketBackendStreaming:
    def test_deltas_stay_correct_across_crash_and_replacement(self, graph):
        registry = ShardRegistry()
        batches = _batches(graph)
        tri = parse_pattern(PATTERNS["triangle"])
        w1 = ShardWorker().start()
        registry.announce(w1.address, graphs=w1.fingerprints())
        w2 = None
        config = RunConfig(machines=3, backend="socket")
        with QueryServer(
            graph, config, threads=1, verify_deltas=True,
            shard_registry=registry,
        ) as server:
            try:
                with connect(server.address, timeout=60) as client:
                    info = client.register("a-b, b-c, c-a")
                    watch = info["watch"]
                    # Batch 1 with a healthy roster; the submit runs on
                    # the shard worker against the new snapshot.
                    adds, dels = batches["additions"]
                    client.ingest(additions=adds)
                    g1 = graph.apply_batch(additions=adds)
                    [d1] = client.poll(watch)
                    f0, f1 = (
                        full_embeddings(graph, tri),
                        full_embeddings(g1, tri),
                    )
                    assert set(d1.added) == f1 - f0
                    assert set(d1.removed) == f0 - f1
                    first = client.submit("triangle", engine="rads")
                    assert first.embedding_count == len(f1)

                    # Kill the worker (no withdraw): the continuous
                    # query keeps firing — deltas never needed the
                    # shard roster.
                    w1.crash()
                    adds, dels = batches["deletions"]
                    client.ingest(deletions=dels)
                    g2 = g1.apply_batch(deletions=dels)
                    [d2] = client.poll(watch)
                    f2 = full_embeddings(g2, tri)
                    assert set(d2.added) == f2 - f1
                    assert set(d2.removed) == f1 - f2

                    # A replacement announces into the running server;
                    # ingest keeps going and the next submit (served by
                    # the new worker) agrees with the latest snapshot.
                    w2 = ShardWorker(
                        announce=server.address, announce_interval=60.0
                    ).start()
                    _poll_until(
                        lambda: registry.announces(
                            "%s:%d" % w2.address
                        ) >= 1,
                        message="replacement announced",
                    )
                    adds, dels = batches["mixed"]
                    client.ingest(additions=adds, deletions=dels)
                    g3 = g2.apply_batch(additions=adds, deletions=dels)
                    [d3] = client.poll(watch)
                    f3 = full_embeddings(g3, tri)
                    assert set(d3.added) == f3 - f2
                    assert set(d3.removed) == f2 - f3
                    second = client.submit("triangle", engine="rads")
                    assert second.embedding_count == len(f3)
            finally:
                w1.close()
                if w2 is not None:
                    w2.close()

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_socket_backend_parity_per_pattern(self, graph, name):
        registry = ShardRegistry()
        worker = ShardWorker().start()
        registry.announce(worker.address, graphs=worker.fingerprints())
        config = RunConfig(machines=3, backend="socket")
        dsl = PATTERNS[name]
        pattern = parse_pattern(dsl)
        try:
            with QueryServer(
                graph, config, threads=1, verify_deltas=True,
                shard_registry=registry,
            ) as server:
                with connect(server.address, timeout=60) as client:
                    info = client.register(dsl)
                    snapshot = graph
                    for kind, (adds, dels) in _batches(graph).items():
                        client.ingest(
                            additions=adds or None, deletions=dels or None
                        )
                        new = snapshot.apply_batch(
                            additions=adds, deletions=dels
                        )
                        [delta] = client.poll(info["watch"])
                        old_full = full_embeddings(snapshot, pattern)
                        new_full = full_embeddings(new, pattern)
                        assert set(delta.added) == new_full - old_full
                        assert set(delta.removed) == old_full - new_full
                        # The distributed engine agrees with the local
                        # recount on the freshly shipped snapshot.
                        result = client.submit(dsl, engine="rads")
                        assert result.embedding_count == len(new_full)
                        snapshot = new
        finally:
            worker.close()


# ----------------------------------------------------------------------
# Session API: watch / ingest / rebind
# ----------------------------------------------------------------------
class TestSessionStreaming:
    def test_watch_ingest_rebind(self, graph):
        tri = parse_pattern(PATTERNS["triangle"])
        with repro.open(graph).with_cluster(machines=3) as session:
            session.engine("rads").query("triangle")
            before = session.run().embedding_count
            watch = session.watch("triangle")
            adds = _absent(graph)[:10]
            report = session.ingest(additions=adds)
            assert report["version"] == 1
            new = graph.apply_batch(additions=adds)
            [delta] = watch.poll()
            old_full, new_full = (
                full_embeddings(graph, tri),
                full_embeddings(new, tri),
            )
            assert set(delta.added) == new_full - old_full
            assert before == len(old_full)
            # The session rebound: graph property and runs see v1.
            assert session.graph.fingerprint() == new.fingerprint()
            assert session.run().embedding_count == len(new_full)
            assert session.unwatch(watch) is True
            assert session.unwatch(watch) is False

    def test_labeled_sessions_refuse_streaming(self, graph):
        labeled = LabeledGraph(graph, [0] * graph.num_vertices)
        with repro.open(labeled) as session:
            with pytest.raises(ValueError, match="unlabeled"):
                session.ingest(additions=[(0, 1)])
            with pytest.raises(ValueError, match="unlabeled"):
                session.watch("a-b, b-c, c-a")


# ----------------------------------------------------------------------
# CLI: repro ingest / repro subscribe
# ----------------------------------------------------------------------
class TestStreamingCLI:
    def test_ingest_round_trip_and_json(self, graph, server, capsys):
        host, port = server.address
        a, b = _absent(graph)[0]
        c, d = _absent(graph)[1]
        assert cli_main([
            "ingest", "--host", host, "--port", str(port),
            "--add", f"{a}-{b},{c}-{d}",
        ]) == 0
        out = capsys.readouterr().out
        assert "version 1" in out and "+2" in out
        assert cli_main([
            "ingest", "--host", host, "--port", str(port),
            "--delete", f"{a}-{b}", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["batch"] == {"additions": 0, "deletions": 1}

    def test_ingest_rejects_bad_edge_specs(self, graph, server):
        host, port = server.address
        with pytest.raises(SystemExit, match="u-v"):
            cli_main(["ingest", "--host", host, "--port", str(port),
                      "--add", "zap"])
        with pytest.raises(SystemExit, match="--add"):
            cli_main(["ingest", "--host", host, "--port", str(port)])

    def test_subscribe_streams_deltas(self, graph, server):
        host, port = server.address
        absent = _absent(graph)

        def ingest_later():
            _poll_until(
                lambda: server.streams.stats()["watches"],
                message="subscriber registered",
            )
            with connect(server.address, timeout=30) as client:
                client.ingest(additions=absent[:1])
                client.ingest(additions=absent[1:2])

        thread = threading.Thread(target=ingest_later, daemon=True)
        thread.start()
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            rc = cli_main([
                "subscribe", "--host", host, "--port", str(port),
                "--query", "a-b, b-c, c-a", "--count", "2", "--json",
            ])
        thread.join(timeout=30)
        assert rc == 0
        lines = [
            json.loads(line)
            for line in buffer.getvalue().splitlines() if line.strip()
        ]
        assert [line["version"] for line in lines] == [1, 2]
        assert all(line["kind"] == "delta" for line in lines)

    def test_subscribe_timeout_with_no_deltas_exits(self, graph, server):
        host, port = server.address
        with pytest.raises(SystemExit):
            cli_main([
                "subscribe", "--host", host, "--port", str(port),
                "--query", "triangle", "--timeout", "0.5",
            ])


# ----------------------------------------------------------------------
# Satellite 2: DeltaRecord JSONL round-trips
# ----------------------------------------------------------------------
class TestDeltaRecordJSONL:
    def test_jsonl_round_trip_mixed_with_run_results(self, tmp_path):
        from repro.engines.base import RunResult

        record = DeltaRecord(
            pattern_name="triangle",
            pattern="a-b, b-c, c-a",
            version=3,
            graph_fingerprint="f" * 64,
            added_count=2,
            removed_count=1,
            added=[(0, 1, 2), (3, 4, 5)],
            removed=[(6, 7, 8)],
            batch={"additions": 2, "deletions": 1},
            watch="w1",
            tenant="acme",
        )
        run = RunResult(
            engine="RADS", pattern_name="triangle", embedding_count=9,
            makespan=0.1, total_comm_bytes=0, peak_memory=0,
            per_machine_time=[0.1],
        )
        path = tmp_path / "log.jsonl"
        append_record_jsonl(run, path)
        append_record_jsonl(record, path)
        replayed = read_records_jsonl(path)
        assert isinstance(replayed[0], RunResult)
        assert isinstance(replayed[1], DeltaRecord)
        assert replayed[1] == record
        assert replayed[1].added == [(0, 1, 2), (3, 4, 5)]
        assert replayed[1].failed is False

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="delta"):
            DeltaRecord.from_dict({"kind": "result"})
