"""Additional enumeration edge cases and failure-injection tests."""

import numpy as np
import pytest

from repro.enumeration import BacktrackingEnumerator, enumerate_embeddings
from repro.graph import Graph, erdos_renyi
from repro.query import Pattern
from repro.query.patterns import clique, path, star, triangle


class TestEdgeCases:
    def test_empty_graph(self):
        g = Graph.from_edges(5, [])
        assert enumerate_embeddings(g.neighbors, g.vertices(), triangle()) == []

    def test_graph_smaller_than_pattern(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert enumerate_embeddings(g.neighbors, g.vertices(), clique(4)) == []

    def test_pattern_equals_graph(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        embs = enumerate_embeddings(g.neighbors, g.vertices(), triangle())
        assert len(embs) == 6  # 3! automorphic images without breaking

    def test_single_edge_pattern(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        embs = enumerate_embeddings(g.neighbors, g.vertices(), path(2))
        assert len(embs) == 4  # each edge in both directions

    def test_isolated_vertices_never_matched(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (0, 2)])
        for emb in enumerate_embeddings(g.neighbors, g.vertices(), triangle()):
            assert set(emb) <= {0, 1, 2}

    def test_star_center_degree_filter(self):
        # star4's centre requires degree >= 4.
        g = Graph.from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        embs = enumerate_embeddings(g.neighbors, g.vertices(), star(4))
        assert all(emb[0] == 0 for emb in embs)
        assert len(embs) == 24  # 4! leaf orderings

    def test_duplicate_start_candidates(self):
        g = erdos_renyi(20, 0.3, seed=1)
        once = enumerate_embeddings(g.neighbors, [5], triangle())
        twice = enumerate_embeddings(g.neighbors, [5, 5], triangle())
        assert len(twice) == 2 * len(once)  # caller owns start multiplicity


class TestAdversarialPatterns:
    def test_disconnected_pattern_rejected(self):
        bad = Pattern(4, [(0, 1), (2, 3)])
        g = erdos_renyi(10, 0.5, seed=2)
        with pytest.raises(ValueError):
            enumerate_embeddings(g.neighbors, g.vertices(), bad)

    def test_adjacency_returning_copies_is_fine(self):
        g = erdos_renyi(25, 0.2, seed=3)
        copying = lambda v: np.array(g.neighbors(v))
        a = enumerate_embeddings(copying, g.vertices(), triangle())
        b = enumerate_embeddings(g.neighbors, g.vertices(), triangle())
        assert set(a) == set(b)

    def test_limit_zero(self):
        g = erdos_renyi(20, 0.3, seed=4)
        enumerator = BacktrackingEnumerator(
            pattern=triangle(), adjacency=g.neighbors
        )
        assert list(enumerator.run(g.vertices(), limit=0)) in ([], )
