"""Tests for the label-propagation partitioner."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.graph import erdos_renyi, grid_road_network
from repro.partition import HashPartitioner, MetisLikePartitioner, edge_cut, partition_balance
from repro.partition.label_propagation import LabelPropagationPartitioner


@pytest.fixture(scope="module")
def grid():
    return grid_road_network(14, 14, extra_edge_prob=0.05, seed=6)


class TestLabelPropagation:
    def test_valid_assignment(self, grid):
        owner = LabelPropagationPartitioner(seed=1).assign(grid, 4)
        assert len(owner) == grid.num_vertices
        assert owner.min() >= 0 and owner.max() < 4

    def test_balance_respected(self, grid):
        owner = LabelPropagationPartitioner(
            max_imbalance=1.1, seed=1
        ).assign(grid, 4)
        assert partition_balance(owner, 4) <= 1.15

    def test_better_locality_than_hash(self, grid):
        lp = LabelPropagationPartitioner(seed=2).assign(grid, 4)
        hashed = HashPartitioner(seed=2).assign(grid, 4)
        assert edge_cut(grid, lp) < edge_cut(grid, hashed)

    def test_single_machine(self, grid):
        owner = LabelPropagationPartitioner().assign(grid, 1)
        assert (owner == 0).all()

    def test_deterministic(self, grid):
        a = LabelPropagationPartitioner(seed=5).assign(grid, 3)
        b = LabelPropagationPartitioner(seed=5).assign(grid, 3)
        assert np.array_equal(a, b)

    def test_rejects_zero_machines(self, grid):
        with pytest.raises(ValueError):
            LabelPropagationPartitioner().assign(grid, 0)

    def test_rads_correct_on_lp_partition(self, grid):
        """The engine stack is partitioner-agnostic."""
        from repro.core.rads import RADSEngine
        from repro.engines import SingleMachineEngine
        from repro.query import paper_query

        cluster = Cluster.create(
            grid, 4, partitioner=LabelPropagationPartitioner(seed=3)
        )
        pattern = paper_query("q1")
        expected = set(
            SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
        )
        result = RADSEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected


class TestPartitionerComparison:
    def test_quality_ordering_on_grids(self, grid):
        """hash >= label propagation >= METIS-like in edge cut."""
        cuts = {
            "hash": edge_cut(grid, HashPartitioner(seed=7).assign(grid, 4)),
            "lp": edge_cut(
                grid, LabelPropagationPartitioner(seed=7).assign(grid, 4)
            ),
            "metis": edge_cut(
                grid, MetisLikePartitioner(seed=7).assign(grid, 4)
            ),
        }
        assert cuts["metis"] <= cuts["lp"] <= cuts["hash"]

    def test_all_work_on_random_graphs(self):
        g = erdos_renyi(150, 0.05, seed=8)
        for partitioner in (
            HashPartitioner(),
            LabelPropagationPartitioner(),
            MetisLikePartitioner(),
        ):
            owner = partitioner.assign(g, 5)
            assert len(np.unique(owner)) >= 2
