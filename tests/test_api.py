"""The repro.api surface: registry, RunConfig, Session, serialization."""

import json
import threading

import pytest

import repro
from repro.api import (
    ConfigError,
    EngineRegistry,
    EngineSpec,
    RunConfig,
    Session,
    UnknownEngineError,
    UnknownQueryError,
    default_registry,
    read_results_jsonl,
    register_engine,
    result_from_json,
    result_to_json,
    write_results_jsonl,
)
from repro.bench.harness import make_cluster, run_query_grid
from repro.engines import all_engines
from repro.engines.base import RunResult
from repro.graph import erdos_renyi
from repro.query import paper_query


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, seed=17)


# ----------------------------------------------------------------------
# EngineRegistry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_canonical_names_and_order(self):
        names = default_registry().names()
        assert names[:5] == ["RADS", "PSgL", "TwinTwig", "SEED", "Crystal"]
        assert "Single" in names

    @pytest.mark.parametrize("alias,canonical", [
        ("rads", "RADS"),
        ("RADS", "RADS"),
        ("R-MEEF", "RADS"),
        ("pregel", "PSgL"),
        ("tt", "TwinTwig"),
        ("WCOJ", "BigJoin"),
        ("afrati-ullman", "Multiway"),
        ("oracle", "Single"),
        ("CrystalJoin", "Crystal"),
    ])
    def test_resolution_is_case_insensitive_with_aliases(
        self, alias, canonical
    ):
        assert default_registry().resolve(alias).name == canonical

    def test_unknown_name_error_lists_canonical_names_and_aliases(self):
        with pytest.raises(UnknownEngineError) as excinfo:
            default_registry().resolve("nope")
        message = str(excinfo.value)
        assert "'nope'" in message
        assert "TwinTwig" in message
        assert "aliases: tt" in message
        # UnknownEngineError is a KeyError, so dict-style callers work too.
        assert isinstance(excinfo.value, KeyError)

    def test_capability_filtering(self):
        reg = default_registry()
        assert [s.name for s in reg.specs(needs_index=True)] == ["Crystal"]
        assert [s.name for s in reg.specs(paper=True)] == [
            "RADS", "PSgL", "TwinTwig", "SEED", "Crystal",
        ]
        assert [s.name for s in reg.specs(distributed=False)] == ["Single"]
        extensions = [s.name for s in reg.specs(extension=True)]
        assert extensions == ["BigJoin", "Multiway", "Replication"]

    def test_create_passes_factory_kwargs(self):
        from repro.query.plan import best_execution_plan

        engine = default_registry().create(
            "rads", plan_provider=best_execution_plan
        )
        assert engine.name == "RADS"

    def test_create_crystal_index_from_graph(self, graph):
        engine = default_registry().create("crystal", graph=graph, index=True)
        assert engine._index is not None
        assert engine._index.graph is graph

    def test_create_crystal_index_true_without_graph_fails(self):
        with pytest.raises(ValueError, match="needs a graph"):
            default_registry().create("crystal", index=True)

    def test_create_all_with_names_and_kwargs(self, graph):
        engines = default_registry().create_all(
            ["tt", "crystal"],
            graph=graph,
            engine_kwargs={"Crystal": {"index": True}},
        )
        assert list(engines) == ["TwinTwig", "Crystal"]
        assert engines["Crystal"]._index is not None

    def test_create_all_capability_selection(self):
        engines = default_registry().create_all(paper=True)
        assert list(engines) == list(all_engines())

    def test_create_all_engine_kwargs_accept_aliases(self, graph):
        engines = default_registry().create_all(
            ["Crystal"],
            graph=graph,
            engine_kwargs={"crystaljoin": {"index": True}},
        )
        assert engines["Crystal"]._index is not None

    def test_create_all_engine_kwargs_typo_rejected(self):
        with pytest.raises(UnknownEngineError):
            default_registry().create_all(
                ["RADS"], engine_kwargs={"Crystall": {"index": True}}
            )

    def test_create_all_engine_kwargs_for_unselected_rejected(self):
        with pytest.raises(ValueError, match="not selected"):
            default_registry().create_all(
                ["RADS", "SEED"], engine_kwargs={"Crystal": {"index": True}}
            )

    def test_duplicate_registration_rejected(self):
        reg = EngineRegistry()
        spec = EngineSpec(name="Foo", engine_cls=object, aliases=("f",))
        reg.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            reg.register(EngineSpec(name="foo", engine_cls=object))
        with pytest.raises(ValueError, match="already registered"):
            reg.register(EngineSpec(name="Bar", engine_cls=object,
                                    aliases=("F",)))

    def test_register_engine_decorator_on_class(self):
        reg = EngineRegistry()

        @register_engine("Mine", aliases=("m",), registry=reg,
                         description="test engine")
        class MyEngine:
            def __init__(self, knob=1):
                self.knob = knob

        assert "mine" in reg
        assert reg.create("M", knob=7).knob == 7

    def test_register_engine_decorator_on_factory(self):
        reg = EngineRegistry()

        class MyEngine:
            def __init__(self, knob):
                self.knob = knob

        @register_engine("Mine", engine_cls=MyEngine, registry=reg)
        def _make(*, graph=None, knob=2):
            return MyEngine(knob=knob)

        assert reg.resolve("mine").engine_cls is MyEngine
        assert reg.create("mine").knob == 2

    def test_register_engine_factory_without_cls_rejected(self):
        reg = EngineRegistry()
        with pytest.raises(TypeError, match="engine_cls"):
            register_engine("Mine", registry=reg)(lambda graph=None: None)

    def test_shims_delegate_to_registry(self):
        from repro.engines import extended_engines

        reg = default_registry()
        assert all_engines() == {
            s.name: s.engine_cls for s in reg.specs(paper=True)
        }
        assert set(extended_engines()) == {
            s.name for s in reg if s.paper or s.extension
        }


# ----------------------------------------------------------------------
# RunConfig
# ----------------------------------------------------------------------
class TestRunConfig:
    @pytest.mark.parametrize("bad", [
        {"machines": 0},
        {"machines": -2},
        {"machines": 2.5},
        {"memory_mb": 0},
        {"memory_mb": -5},
        {"workers": -1},
        {"workers": 1.5},
        {"partitioner": "voronoi"},
        {"partitioner": 42},
        {"stragglers": {-1: 2.0}},
        {"stragglers": {0: 0.0}},
        {"stragglers": {99: 2.0}},
        {"stragglers": {0: "fast"}},
        {"memory_mb": "512"},
        {"limit": 0},
        {"limit": -3},
    ])
    def test_validation_errors(self, bad):
        with pytest.raises(ConfigError):
            RunConfig(**bad)

    def test_defaults_are_valid(self):
        config = RunConfig()
        assert config.machines == 10
        assert config.memory_bytes is None
        assert config.workers == 0

    def test_memory_bytes_round_trip(self):
        assert RunConfig(memory_mb=512).memory_bytes == 512 * 1024 * 1024
        assert RunConfig(memory_mb=1.5).memory_bytes == 3 * 512 * 1024

    def test_replace_revalidates(self):
        config = RunConfig(machines=4)
        assert config.replace(machines=2).machines == 2
        with pytest.raises(ConfigError):
            config.replace(machines=0)

    def test_named_partitioners(self):
        from repro.partition import HashPartitioner, MetisLikePartitioner
        from repro.partition.label_propagation import (
            LabelPropagationPartitioner,
        )

        assert isinstance(
            RunConfig(partitioner="metis").build_partitioner(),
            MetisLikePartitioner,
        )
        assert isinstance(
            RunConfig(partitioner="hash").build_partitioner(),
            HashPartitioner,
        )
        assert isinstance(
            RunConfig(partitioner="labelprop").build_partitioner(),
            LabelPropagationPartitioner,
        )

    def test_make_cluster_applies_stragglers_and_cap(self, graph):
        config = RunConfig(
            machines=3, memory_mb=64, stragglers={0: 4.0},
        )
        cluster = config.make_cluster(graph)
        assert cluster.num_machines == 3
        assert cluster.memory_capacity == 64 * 1024 * 1024
        assert cluster.machines[0].speed_factor == 0.25
        # Speed factors are hardware config: they survive fresh_copy.
        assert cluster.fresh_copy().machines[0].speed_factor == 0.25

    def test_to_dict_is_json_safe(self):
        config = RunConfig(machines=3, stragglers={0: 2.0}, limit=5)
        payload = json.loads(json.dumps(config.to_dict()))
        assert payload["machines"] == 3
        assert payload["partitioner"] == "metis"
        assert payload["limit"] == 5

    @pytest.mark.parametrize("bad", [1, 0, "yes", "Store", [], 2.0])
    def test_collect_rejects_truthy_non_modes(self, bad):
        # Tri-state means exactly False / True / "store": a truthy 1 must
        # not silently become True (it would change the cache key).
        with pytest.raises(ConfigError, match="collect"):
            RunConfig(collect=bad)

    @pytest.mark.parametrize("mode", [False, True, "store"])
    def test_collect_mode_round_trips_through_dicts(self, mode):
        config = RunConfig(collect=mode, machines=3, stragglers={1: 2.0})
        payload = json.loads(json.dumps(config.to_dict()))
        assert payload["collect"] == mode
        rebuilt = RunConfig.from_dict(payload)
        assert rebuilt == config
        assert rebuilt.collect is mode if isinstance(mode, bool) else (
            rebuilt.collect == mode
        )

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="colect"):
            RunConfig.from_dict({"colect": True})


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class TestSession:
    def test_open_with_graph_and_path(self, graph, tmp_path):
        from repro.graph.io import save_binary

        assert repro.open(graph).graph is graph
        path = tmp_path / "g.npz"
        save_binary(graph, str(path))
        assert repro.open(path).graph == graph

    def test_open_rejects_non_graph(self):
        with pytest.raises(TypeError, match="needs a Graph"):
            Session(object())

    @pytest.mark.parametrize("engine_name", sorted(all_engines()))
    def test_parity_with_direct_calls_q4(self, graph, engine_name):
        """Acceptance: Session stats == hand-wired stats, all five engines."""
        direct = all_engines()[engine_name]().run(
            make_cluster(graph, 3), paper_query("q4"),
            collect_embeddings=False,
        )
        via_session = (
            repro.open(graph)
            .with_cluster(machines=3)
            .engine(engine_name.lower())
            .query("Q4")
            .run()
        )
        assert via_session.engine == direct.engine
        assert via_session.embedding_count == direct.embedding_count
        assert via_session.makespan == direct.makespan
        assert via_session.total_comm_bytes == direct.total_comm_bytes
        assert via_session.peak_memory == direct.peak_memory
        assert via_session.per_machine_time == direct.per_machine_time
        assert via_session.counters == direct.counters
        assert via_session == direct

    def test_parity_with_workers_q4(self, graph):
        """Acceptance: the workers=2 backend reports bit-identical stats."""
        serial = {
            name: cls().run(
                make_cluster(graph, 3), paper_query("q4"),
                collect_embeddings=False,
            )
            for name, cls in all_engines().items()
        }
        with repro.open(graph).with_cluster(machines=3) \
                .with_workers(2).query("q4") as session:
            for name, direct in serial.items():
                assert session.engine(name).run() == direct

    def test_repeated_runs_are_independent(self, graph):
        session = repro.open(graph).with_cluster(machines=3)
        session.engine("rads").query("q2")
        assert session.run() == session.run()

    def test_collect_and_limit(self, graph):
        session = repro.open(graph).with_cluster(machines=3)
        session.engine("single").query("triangle")
        full = session.run(collect=True)
        assert full.embeddings
        capped = session.configure(collect=True, limit=2).run()
        assert len(capped.embeddings) == 2
        # Stats are unaffected by truncation.
        assert capped.embedding_count == full.embedding_count

    def test_unknown_engine_and_query(self, graph):
        session = repro.open(graph)
        with pytest.raises(UnknownEngineError):
            session.engine("nope")
        with pytest.raises(UnknownQueryError) as excinfo:
            session.query("nope")
        assert "q4" in str(excinfo.value)

    def test_run_without_selection_fails(self, graph):
        with pytest.raises(RuntimeError, match="engine"):
            repro.open(graph).query("q2").run()
        with pytest.raises(RuntimeError, match="query"):
            repro.open(graph).engine("rads").run()

    def test_reconfigure_invalidates_cluster(self, graph):
        session = repro.open(graph).with_cluster(machines=2)
        assert session.cluster().num_machines == 2
        session.with_cluster(machines=4)
        assert session.cluster().num_machines == 4

    def test_engine_kwargs_flow_to_factory(self, graph):
        session = repro.open(graph).with_cluster(machines=2)
        engine = session.engine("crystal", index=True).build_engine()
        assert engine._index is not None

    def test_engine_instance_reused_across_runs(self, graph):
        """Factory work (e.g. Crystal's index) is paid once per selection."""
        session = repro.open(graph).with_cluster(machines=2)
        session.engine("crystal", index=True)
        first = session.build_engine()
        assert session.build_engine() is first
        session.query("q2").run()
        assert session.build_engine() is first
        session.engine("crystal", index=True)
        assert session.build_engine() is not first

    def test_run_grid_honours_collect_and_limit(self, graph):
        grid = (
            repro.open(graph).with_cluster(machines=2)
            .configure(collect=True, limit=2)
            .run_grid(engines=["single"], queries=["triangle"])
        )
        result = grid.get("Single", "triangle")
        assert result.embeddings is not None
        assert len(result.embeddings) == 2
        assert result.embedding_count > 2  # stats unaffected by the limit

    def test_run_grid_reuses_cached_partition(self, graph):
        session = repro.open(graph).with_cluster(machines=2)
        session.engine("single").query("q2").run()
        partition = session._partition
        assert partition is not None
        session.run_grid(engines=["single"], queries=["q2"])
        assert session._partition is partition

    def test_run_grid_matches_harness(self, graph):
        grid = (
            repro.open(graph)
            .with_cluster(machines=3)
            .run_grid(
                engines=["rads", "psgl"],
                queries=["q2", "triangle"],
                dataset_name="t",
            )
        )
        assert grid.engines() == ["RADS", "PSgL"]
        assert grid.queries() == ["q2", "triangle"]
        reference = run_query_grid(
            graph, "t", ["q2", "triangle"],
            engines=default_registry().create_all(["RADS", "PSgL"]),
            num_machines=3,
        )
        assert grid.results == reference.results

    def test_run_grid_defaults_to_selected_query(self, graph):
        grid = (
            repro.open(graph).with_cluster(machines=2)
            .query("Triangle").run_grid(engines=["single"])
        )
        assert grid.queries() == ["triangle"]

    def test_run_grid_keys_are_canonical_lowercase(self, graph):
        grid = (
            repro.open(graph).with_cluster(machines=2)
            .run_grid(engines=["single"], queries=["Q2"])
        )
        assert grid.queries() == ["q2"]
        assert grid.get("Single", "q2") is not None

    def test_run_grid_rejects_kwargs_with_ready_engines(self, graph):
        from repro.engines.single import SingleMachineEngine

        with pytest.raises(ValueError, match="ready engines mapping"):
            repro.open(graph).with_cluster(machines=2).run_grid(
                engines={"Single": SingleMachineEngine()},
                queries=["q2"],
                engine_kwargs={"Single": {}},
            )

    def test_run_grid_with_pattern_object(self, graph):
        """Patterns (even unregistered names) work end to end in grids."""
        pattern = paper_query("q4")  # .name == "house", not a lookup key
        grid = (
            repro.open(graph).with_cluster(machines=2)
            .query(pattern).run_grid(engines=["single"])
        )
        assert grid.queries() == ["house"]
        assert not grid.get("Single", "house").failed

    def test_reconfigure_keeps_partition_for_sweep_fields(self, graph):
        """Memory-cap/straggler/result-mode sweeps must not repartition."""
        session = repro.open(graph).with_cluster(machines=2)
        session.cluster()
        partition = session._partition
        assert partition is not None
        session.configure(collect=True, limit=3, workers=0)
        session.with_cluster(memory_mb=64, stragglers={0: 2.0})
        assert session._partition is partition
        cluster = session.cluster()
        assert cluster.memory_capacity == 64 * 1024 * 1024
        assert cluster.machines[0].speed_factor == 0.5
        session.configure(machines=3)
        assert session._partition is None


# ----------------------------------------------------------------------
# RunResult serialization
# ----------------------------------------------------------------------
class TestResultSerialization:
    def _result(self, graph, collect=True):
        return (
            repro.open(graph).with_cluster(machines=3)
            .engine("rads").query("q2").run(collect=collect)
        )

    def test_dict_round_trip(self, graph):
        result = self._result(graph)
        rebuilt = RunResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt == result
        assert rebuilt.embeddings == result.embeddings
        assert rebuilt.counters == result.counters

    def test_json_round_trip(self, graph):
        result = self._result(graph, collect=False)
        assert result_from_json(result_to_json(result)) == result

    def test_jsonl_round_trip(self, graph, tmp_path):
        results = [
            self._result(graph, collect=False),
            self._result(graph, collect=True),
        ]
        path = tmp_path / "runs.jsonl"
        assert write_results_jsonl(results, path) == 2
        assert read_results_jsonl(path) == results

    def test_failed_run_round_trips_and_keeps_counters(self):
        """Satellite: simulated-OOM results still carry machine counters."""
        dense = erdos_renyi(120, 0.25, seed=19)
        result = (
            repro.open(dense)
            .with_cluster(machines=3, memory_mb=1)
            .engine("tt").query("q5").run()
        )
        assert result.failed
        assert result.counters, "failure path must keep per-machine stats"
        assert RunResult.from_dict(result.to_dict()) == result


class TestRecordLog:
    """Satellite: append-mode JSONL + mixed RunResult/explanation replay."""

    def _result(self, graph):
        return (
            repro.open(graph).with_cluster(machines=3)
            .engine("rads").query("q2").run()
        )

    def test_append_mode_extends_an_existing_log(self, graph, tmp_path):
        from repro.api import write_results_jsonl

        path = tmp_path / "log.jsonl"
        first, second = self._result(graph), self._result(graph)
        assert write_results_jsonl([first], path) == 1
        assert write_results_jsonl([second], path, append=True) == 1
        assert read_results_jsonl(path) == [first, second]
        # Without append, the file is truncated (the historic behaviour).
        assert write_results_jsonl([first], path) == 1
        assert read_results_jsonl(path) == [first]

    def test_append_record_accepts_explanations_and_dicts(
        self, graph, tmp_path
    ):
        from repro.api import append_record_jsonl, read_records_jsonl

        path = tmp_path / "mixed.jsonl"
        result = self._result(graph)
        explanation = (
            repro.open(graph).engine("rads").query("q4").explain()
        )
        append_record_jsonl(result, path)           # a live RunResult
        append_record_jsonl(explanation, path)      # a live explanation
        append_record_jsonl(explanation.to_dict(), path)  # a ready dict
        replayed = read_records_jsonl(path)
        assert [type(r).__name__ for r in replayed] == [
            "RunResult", "QueryExplanation", "QueryExplanation"
        ]
        assert replayed[0] == result
        assert replayed[1].to_dict() == explanation.to_dict()

    def test_unrecognised_record_schema_raises(self, tmp_path):
        from repro.api import read_records_jsonl

        path = tmp_path / "bad.jsonl"
        path.write_text('{"what": "is this"}\n')
        with pytest.raises(ValueError, match="unrecognised record"):
            read_records_jsonl(path)


class TestThreadSafety:
    """Satellite: registry resolution + session selection under threads."""

    def test_registry_concurrent_register_and_resolve(self):
        registry = EngineRegistry()
        from repro.engines.single import SingleMachineEngine

        errors = []

        def register_engines(base):
            try:
                for i in range(20):
                    registry.register(EngineSpec(
                        name=f"eng{base}-{i}",
                        engine_cls=SingleMachineEngine,
                        aliases=(f"alias{base}-{i}",),
                    ))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def resolve_engines():
            try:
                for _ in range(200):
                    registry.names()
                    registry.known_names()
                    len(registry)
                    list(registry)
                    for spec in registry.specs():
                        registry.resolve(spec.name)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=register_engines, args=(base,))
            for base in range(4)
        ] + [threading.Thread(target=resolve_engines) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        assert len(registry) == 80
        for base in range(4):
            assert registry.resolve(f"ALIAS{base}-7").name == f"eng{base}-7"

    def test_session_query_hammered_from_threads(self, graph):
        """Concurrent .query()/.run() never tears the (engine, query) pair."""
        session = repro.open(graph).with_cluster(machines=2)
        session.engine("single")
        expected = {}
        for name in ("triangle", "q2"):
            reference = (
                repro.open(graph).with_cluster(machines=2)
                .engine("single").query(name).run()
            )
            expected[reference.pattern_name] = reference.embedding_count
        errors = []

        def hammer(name):
            try:
                for _ in range(8):
                    session.query(name)
                    result = session.run()
                    # Another thread may have swapped the query between
                    # our two calls, but the run must be internally
                    # consistent: a real (name, count) pair.
                    assert result.pattern_name in expected
                    assert (
                        result.embedding_count
                        == expected[result.pattern_name]
                    )
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(name,))
            for name in ("triangle", "q2") * 3
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert not errors

    def test_session_selection_hammered_without_runs(self, graph):
        """query()/engine()/configure() racing stays exception-free."""
        session = repro.open(graph)
        errors = []

        def spin(seed):
            try:
                for i in range(30):
                    session.query("triangle" if (seed + i) % 2 else "q2")
                    session.engine("single" if (seed + i) % 3 else "rads")
                    session.configure(collect=bool(i % 2))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=spin, args=(s,)) for s in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        # The surviving state is one coherent selection.
        assert session.run().pattern_name in ("triangle", "tailed_triangle")


# ----------------------------------------------------------------------
# The declarative query surface: DSL queries, labeled front door, errors
# ----------------------------------------------------------------------
class TestQuerySurface:
    def test_dsl_string_through_session(self, graph):
        direct = (
            repro.open(graph).with_cluster(machines=3)
            .engine("single").query("triangle").run()
        )
        via_dsl = (
            repro.open(graph).with_cluster(machines=3)
            .engine("single").query("a-b, b-c, c-a").run()
        )
        assert via_dsl.embedding_count == direct.embedding_count

    def test_pattern_object_and_alias_names(self, graph):
        from repro.query.patterns import house

        session = repro.open(graph).with_cluster(machines=3).engine("rads")
        by_alias = session.query("HOUSE").run()
        by_object = session.query(house()).run()
        assert by_alias == by_object

    def test_unknown_query_suggests_near_misses(self, graph):
        with pytest.raises(UnknownQueryError) as excinfo:
            repro.open(graph).query("q44")
        message = str(excinfo.value)
        assert "did you mean" in message and "'q4'" in message
        assert "a-b, b-c, c-a" in message  # the DSL hint

    def test_bad_dsl_reports_parse_error(self, graph):
        with pytest.raises(UnknownQueryError) as excinfo:
            repro.open(graph).query("a-b, c-d")
        assert "not connected" in str(excinfo.value)

    def test_unknown_engine_suggests_near_misses(self, graph):
        with pytest.raises(UnknownEngineError) as excinfo:
            repro.open(graph).engine("radss")
        assert "did you mean 'RADS'" in str(excinfo.value)


class TestLabeledSession:
    """Satellite: the labeled path end-to-end through the front door."""

    @pytest.fixture(scope="class")
    def labeled_graph(self, graph):
        from repro.graph.labeled import label_randomly

        return label_randomly(graph, 3, seed=0)

    @pytest.mark.parametrize("dsl,labels", [
        ("a:0-b:1, b-c:0, c-a", (0, 1, 0)),
        ("a:2-b:2, b-c:2, c-a", (2, 2, 2)),
        ("hub:0-x:1, hub-y:1, hub-z:2", (0, 1, 1, 2)),
    ])
    def test_counts_match_labeled_embeddings(
        self, labeled_graph, dsl, labels
    ):
        from repro.enumeration.labeled import (
            LabeledPattern,
            labeled_embeddings,
        )

        result = (
            repro.open(labeled_graph)
            .engine("single").query(dsl).run(collect=True)
        )
        resolved = repro.resolve_query(dsl)
        assert resolved.labels == labels
        reference = labeled_embeddings(
            labeled_graph, LabeledPattern(resolved.pattern, labels)
        )
        assert result.embedding_count == len(reference)
        assert sorted(result.embeddings) == sorted(reference)

    def test_labeled_pattern_object_through_session(self, labeled_graph):
        from repro.enumeration.labeled import (
            LabeledPattern,
            labeled_embeddings,
        )
        from repro.query.patterns import triangle

        query = LabeledPattern(triangle(), (0, 0, 1))
        result = repro.open(labeled_graph).engine("oracle").query(query).run()
        assert result.embedding_count == len(
            labeled_embeddings(labeled_graph, query)
        )

    def test_limit_caps_labeled_enumeration(self, labeled_graph):
        result = (
            repro.open(labeled_graph).engine("single")
            .query("a:0-b:0").run(collect=True, limit=2)
        )
        assert result.embedding_count == 2 and len(result.embeddings) == 2

    def test_capability_enforced_both_selection_orders(self, labeled_graph):
        from repro.api import CapabilityError

        with pytest.raises(CapabilityError, match="Single"):
            repro.open(labeled_graph).engine("rads").query("a:0-b:1")
        with pytest.raises(CapabilityError, match="labeled"):
            repro.open(labeled_graph).query("a:0-b:1").engine("rads")

    def test_labeled_query_needs_labeled_graph(self, graph):
        with pytest.raises(ValueError, match="LabeledGraph"):
            repro.open(graph).query("a:0-b:1")

    def test_labeled_graph_session_still_runs_unlabeled(self, labeled_graph):
        result = (
            repro.open(labeled_graph).with_cluster(machines=3)
            .engine("rads").query("q2").run()
        )
        assert not result.failed

    def test_labeled_queries_not_gridable(self, labeled_graph):
        session = repro.open(labeled_graph).engine("single").query("a:0-b:1")
        with pytest.raises(ValueError, match="grid"):
            session.run_grid()


class TestLoadGraphSuffix:
    """Satellite: extension dispatch is case-insensitive."""

    def test_uppercase_npz_round_trips(self, graph, tmp_path):
        from repro.api import load_graph
        from repro.graph.io import save_binary

        path = tmp_path / "ROAD.NPZ"
        save_binary(graph, str(path))
        assert load_graph(path) == graph
        assert repro.open(str(path)).graph == graph

    def test_mixed_case_edges(self, graph, tmp_path):
        from repro.api import load_graph
        from repro.graph.io import save_edge_list

        path = tmp_path / "g.Edges"
        save_edge_list(graph, str(path))
        assert load_graph(path) == graph

    def test_unknown_suffix_names_offender(self, tmp_path):
        from repro.api import load_graph

        with pytest.raises(ValueError, match=r"\.graphml"):
            load_graph(tmp_path / "g.graphml")


class TestReviewRegressions:
    """Fixes from the PR-3 review: failure paths and selection atomicity."""

    def test_labeled_oom_returns_failed_result(self):
        from repro.graph.labeled import label_randomly

        dense = label_randomly(erdos_renyi(400, 0.2, seed=5), 2, seed=0)
        result = (
            repro.open(dense)
            .with_cluster(machines=2, memory_mb=0.001)
            .engine("single").query("a:0-b:0, b-c:0, c-a").run()
        )
        assert result.failed and "OOM" in result.failure
        assert result.embedding_count == 0
        assert RunResult.from_dict(result.to_dict()) == result

    def test_rejected_engine_keeps_previous_selection(self, graph):
        from repro.api import CapabilityError
        from repro.graph.labeled import label_randomly

        session = repro.open(label_randomly(graph, 2, seed=0))
        session.engine("single").query("a:0-b:1")
        before = session.run().embedding_count
        with pytest.raises(CapabilityError):
            session.engine("rads")
        # The session still runs as Single, and a fresh labeled query is
        # not spuriously rejected against the failed selection.
        session.query("a:1-b:0")
        result = session.run()
        assert result.engine == "Single"
        session.query("a:0-b:1")
        assert session.run().embedding_count == before

    def test_rejected_labeled_query_keeps_previous_selection(self, graph):
        from repro.api import CapabilityError
        from repro.graph.labeled import label_randomly

        session = repro.open(label_randomly(graph, 2, seed=0))
        session.with_cluster(machines=2).engine("rads").query("q2")
        with pytest.raises(CapabilityError):
            session.query("a:0-b:1")
        result = session.run()  # still the unlabeled q2 selection
        assert result.engine == "RADS"
        assert result.pattern_name == "tailed_triangle"

    def test_mixed_int_and_symbolic_labels_do_not_collide(self):
        lp = repro.pattern("a:0-b:person, b-c:0, c-a")
        assert lp.labels == (0, 1, 0)
        lp2 = repro.pattern("a:1-b:x, b-c:y")
        assert lp2.labels == (1, 0, 2)
