"""Tests for the benchmark harness and datasets (small scales)."""


import pytest

from repro.bench.datasets import DATASETS, dataset, dataset_profile
from repro.bench.harness import (
    format_comm_table,
    format_count_table,
    format_time_table,
    make_cluster,
    run_query_grid,
)
from repro.core.rads import RADSEngine
from repro.engines import PSgLEngine


class TestDatasets:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_deterministic(self, name):
        assert dataset(name, 0.1) == dataset(name, 0.1)

    def test_scale_grows_graph(self):
        assert (
            dataset("livejournal", 0.3).num_vertices
            < dataset("livejournal", 0.6).num_vertices
        )

    def test_profile_fields(self):
        profile = dataset_profile("dblp", 0.2)
        assert set(profile) == {
            "dataset", "num_vertices", "num_edges", "avg_degree",
            "diameter_lb",
        }

    def test_roadnet_has_large_diameter(self):
        road = dataset_profile("roadnet", 0.2)
        social = dataset_profile("livejournal", 0.2)
        assert road["diameter_lb"] > 3 * social["diameter_lb"]


class TestHarness:
    @pytest.fixture(scope="class")
    def grid(self):
        graph = dataset("dblp", 0.12)
        return run_query_grid(
            graph,
            "dblp-mini",
            ["q1", "q2"],
            engines={"RADS": RADSEngine(), "PSgL": PSgLEngine()},
            num_machines=3,
        )

    def test_grid_complete(self, grid):
        assert grid.engines() == ["RADS", "PSgL"]
        assert grid.queries() == ["q1", "q2"]
        assert all(
            grid.get(e, q) is not None
            for e in grid.engines() for q in grid.queries()
        )

    def test_consistency_enforced(self, grid):
        counts = {
            (e, q): grid.get(e, q).embedding_count
            for e in grid.engines() for q in grid.queries()
        }
        assert counts[("RADS", "q1")] == counts[("PSgL", "q1")]

    def test_tables_render(self, grid):
        for fmt in (format_time_table, format_comm_table, format_count_table):
            text = fmt(grid)
            assert "q1" in text and "RADS" in text
            assert len(text.splitlines()) == 4

    def test_makespans_positive(self, grid):
        for e in grid.engines():
            for q in grid.queries():
                assert grid.get(e, q).makespan > 0

    def test_make_cluster_machines(self):
        cluster = make_cluster(dataset("dblp", 0.12), 5)
        assert cluster.num_machines == 5

    def test_oom_recorded_not_raised(self):
        graph = dataset("livejournal", 0.25)
        grid = run_query_grid(
            graph, "lj-mini", ["q5"],
            engines={"PSgL": PSgLEngine()},
            num_machines=3,
            memory_capacity=64 * 1024,
        )
        assert grid.get("PSgL", "q5").failed
