"""Tests for the VF2-style serial enumerator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration import (
    EnumerationStats,
    enumerate_embeddings,
    vf2_embeddings,
)
from repro.enumeration.vf2 import VF2Enumerator
from repro.graph import erdos_renyi
from repro.graph.graph import Graph
from repro.query import named_patterns
from repro.query.patterns import clique, path, star, triangle
from repro.query.symmetry import symmetry_breaking_constraints


def embeddings_on(graph, pattern, constraints=None):
    return vf2_embeddings(
        graph.neighbors, graph.vertices(), pattern, constraints=constraints
    )


class TestVF2Basics:
    def test_triangle_in_k3(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        found = embeddings_on(g, triangle())
        # 3! orderings without symmetry breaking.
        assert sorted(found) == sorted(
            [
                (0, 1, 2), (0, 2, 1), (1, 0, 2),
                (1, 2, 0), (2, 0, 1), (2, 1, 0),
            ]
        )

    def test_triangle_with_symmetry_breaking(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        pattern = triangle()
        constraints = symmetry_breaking_constraints(pattern)
        found = embeddings_on(g, pattern, constraints)
        assert len(found) == 1

    def test_no_match_in_triangle_free_graph(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert embeddings_on(g, triangle()) == []

    def test_path_pattern(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        found = embeddings_on(g, path(3))
        # Two directions of the single path.
        assert len(found) == 2

    def test_star_requires_degree(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        found = embeddings_on(g, star(3))
        # Only vertex 0 has degree 3; 3! leaf orderings.
        assert len(found) == 6
        assert all(emb[0] == 0 for emb in found)

    def test_limit_short_circuits(self):
        g = erdos_renyi(40, 0.3, seed=1)
        pattern = triangle()
        found = vf2_embeddings(
            g.neighbors, g.vertices(), pattern, limit=5
        )
        assert len(found) == 5

    def test_allowed_predicate_restricts_all_positions(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        found = vf2_embeddings(
            g.neighbors,
            g.vertices(),
            triangle(),
            allowed=lambda v: v != 2,
        )
        assert found == []

    def test_single_vertex_pattern(self):
        from repro.query.pattern import Pattern

        g = Graph.from_edges(2, [(0, 1)])
        found = vf2_embeddings(g.neighbors, g.vertices(), Pattern(1, []))
        assert sorted(found) == [(0,), (1,)]

    def test_invalid_order_rejected(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(ValueError):
            VF2Enumerator(
                pattern=triangle(), adjacency=g.neighbors, order=[0, 1]
            )

    def test_stats_populated(self):
        g = erdos_renyi(30, 0.2, seed=3)
        stats = EnumerationStats()
        vf2_embeddings(
            g.neighbors, g.vertices(), triangle(), stats=stats
        )
        assert stats.recursive_calls > 0
        assert stats.candidates_scanned > 0


class TestVF2AgreesWithBacktracking:
    @pytest.mark.parametrize(
        "qname", ["q1", "q2", "q3", "q4", "q6", "cq1", "cq3"]
    )
    def test_named_queries_on_er(self, er_graph, qname):
        pattern = named_patterns()[qname]
        constraints = symmetry_breaking_constraints(pattern)
        expected = enumerate_embeddings(
            er_graph.neighbors, er_graph.vertices(), pattern,
            constraints=constraints,
        )
        found = vf2_embeddings(
            er_graph.neighbors, er_graph.vertices(), pattern,
            constraints=constraints,
        )
        assert set(found) == set(expected)
        assert len(found) == len(expected)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(8, 30),
        k=st.integers(3, 4),
    )
    def test_cliques_on_random_graphs(self, seed, n, k):
        g = erdos_renyi(n, 0.35, seed=seed)
        pattern = clique(k)
        constraints = symmetry_breaking_constraints(pattern)
        expected = enumerate_embeddings(
            g.neighbors, g.vertices(), pattern, constraints=constraints
        )
        found = vf2_embeddings(
            g.neighbors, g.vertices(), pattern, constraints=constraints
        )
        assert set(found) == set(expected)
        assert len(found) == len(expected)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_symmetry_counting_identity(self, seed):
        """|constrained| * |Aut(P)| == |unconstrained| must hold for VF2."""
        from repro.query.symmetry import automorphisms

        g = erdos_renyi(25, 0.25, seed=seed)
        pattern = named_patterns()["q1"]
        aut = len(automorphisms(pattern))
        constrained = vf2_embeddings(
            g.neighbors, g.vertices(), pattern,
            constraints=symmetry_breaking_constraints(pattern),
        )
        unconstrained = vf2_embeddings(
            g.neighbors, g.vertices(), pattern
        )
        assert len(constrained) * aut == len(unconstrained)
