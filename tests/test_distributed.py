"""Distributed shard runtime: socket backend, worker daemons, fault tolerance.

The correctness bar mirrors the process backend's: every engine must
report **bit-identical** counts and stats on the socket backend, no
matter how tasks were dealt across shards — including after a mid-run
worker crash (outstanding tasks are resubmitted to survivors and the
merge order is unchanged).  Roster management (handshakes, fingerprint
rejection, heartbeats, total-loss errors) and the capability enforcement
for non-distributed engines are covered alongside.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

import repro
from repro.api import CapabilityError, RunConfig, default_registry
from repro.api.config import ConfigError
from repro.cluster import Cluster
from repro.core.rads import RADSEngine
from repro.distributed import (
    DistributedError,
    ShardCoordinator,
    ShardWorker,
    SocketExecutor,
    stop_worker,
)
from repro.distributed import protocol as dproto
from repro.graph import erdos_renyi
from repro.query import named_patterns
from repro.runtime import SerialExecutor
from repro.service import QueryScheduler
from repro.service.cache import cache_key, config_digest


def _addr(worker: ShardWorker) -> str:
    host, port = worker.address
    return f"{host}:{port}"


def _echo_task(cluster, args):
    """Top-level (picklable) task used by the wire-protocol tests."""
    return ("echo", args)


def _unpicklable_task(cluster, args):
    """Runs fine, but its result cannot survive the pool round trip."""
    return lambda: None


def _stats(result) -> tuple:
    return (
        result.failed,
        result.embedding_count,
        result.makespan,
        result.total_comm_bytes,
        result.peak_memory,
        tuple(result.per_machine_time),
        dict(result.counters),
    )


@pytest.fixture(scope="module")
def shard_pair():
    """Two local in-process shard workers (serial task execution)."""
    workers = [ShardWorker().start(), ShardWorker().start()]
    yield workers
    for worker in workers:
        worker.close()


@pytest.fixture(scope="module")
def socket_pool(shard_pair):
    """One long-lived SocketExecutor over the module's shard pair."""
    executor = SocketExecutor(
        [w.address for w in shard_pair], heartbeat_interval=None
    )
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def dist_cluster(er_graph):
    return Cluster.create(er_graph, 3)


class TestSocketBackendEquivalence:
    def test_all_engines_q4_bit_identical(
        self, dist_cluster, socket_pool
    ):
        """Every distributed-capable engine: socket stats == serial stats."""
        pattern = named_patterns()["q4"]
        for spec in default_registry().specs(distributed=True):
            serial = spec.create(graph=dist_cluster.graph).run(
                dist_cluster.fresh_copy(), pattern,
                collect_embeddings=False, executor=SerialExecutor(),
            )
            via_socket = spec.create(graph=dist_cluster.graph).run(
                dist_cluster.fresh_copy(), pattern,
                collect_embeddings=False, executor=socket_pool,
            )
            assert not serial.failed, spec.name
            assert _stats(via_socket) == _stats(serial), spec.name

    def test_collected_embeddings_match(self, dist_cluster, socket_pool):
        pattern = named_patterns()["q1"]
        serial = RADSEngine().run(
            dist_cluster.fresh_copy(), pattern, collect_embeddings=True
        )
        via_socket = RADSEngine().run(
            dist_cluster.fresh_copy(), pattern,
            collect_embeddings=True, executor=socket_pool,
        )
        # RADS picks its parallel-capable decomposition when the backend
        # is parallel (same as the process pool), so the *order* of
        # collected embeddings may differ from serial; the set may not.
        assert sorted(via_socket.embeddings) == sorted(serial.embeddings)
        assert via_socket.embedding_count == serial.embedding_count

    def test_simulated_oom_parity(self, er_graph, socket_pool):
        """A capacity blow-up fails identically on both backends.

        PSgL is schedule-free (identical decomposition on every
        backend), so the whole failed RunResult — partial counters
        included — must match bit for bit.
        """
        from repro.engines.psgl import PSgLEngine

        pattern = named_patterns()["q4"]
        base = Cluster.create(er_graph, 3)
        serial = PSgLEngine().run(
            Cluster(base.partition, base.cost_model, 50_000), pattern,
            collect_embeddings=False,
        )
        via_socket = PSgLEngine().run(
            Cluster(base.partition, base.cost_model, 50_000), pattern,
            collect_embeddings=False, executor=socket_pool,
        )
        assert serial.failed and via_socket.failed
        assert _stats(via_socket) == _stats(serial)

    def test_session_socket_backend(self, er_graph, shard_pair):
        """The whole Session stack on RunConfig(backend='socket')."""
        shards = [_addr(w) for w in shard_pair]
        serial = (
            repro.open(er_graph).with_cluster(machines=3)
            .engine("rads").query("q2").run()
        )
        with repro.open(er_graph).with_cluster(machines=3).backend(
            "socket", shards=shards
        ).engine("rads").query("q2") as session:
            via_socket = session.run()
        assert _stats(via_socket) == _stats(serial)

    def test_scheduler_fans_out_over_shards(self, er_graph, shard_pair):
        """A served session (QueryScheduler) runs queries on the roster."""
        shards = tuple(_addr(w) for w in shard_pair)
        with QueryScheduler(
            er_graph, RunConfig(machines=3), threads=1
        ) as serial_scheduler:
            reference = serial_scheduler.run("q1", "rads")
        with QueryScheduler(
            er_graph,
            RunConfig(machines=3, backend="socket", shards=shards),
            threads=2,
            cache=False,
        ) as scheduler:
            served = scheduler.run("q1", "rads")
            assert scheduler.stats()["executor_fallbacks"] == 0
        assert served.embedding_count == reference.embedding_count
        assert served.makespan == reference.makespan


class TestFaultTolerance:
    def test_worker_crash_mid_run_resubmits(self, er_graph):
        workers = [ShardWorker().start(), ShardWorker().start()]
        try:
            session = repro.open(er_graph).with_cluster(machines=4).backend(
                "socket", shards=[_addr(w) for w in workers]
            ).engine("rads").query("q4")
            serial = (
                repro.open(er_graph).with_cluster(machines=4)
                .engine("rads").query("q4").run()
            )
            healthy = session.run()
            assert _stats(healthy) == _stats(serial)
            # Kill one shard between batches: the next run discovers the
            # death mid-batch, resubmits its outstanding tasks to the
            # survivor, and still reports bit-identical stats (plus the
            # fault counters).
            workers[1].crash()
            recovered = session.run()
            assert recovered.embedding_count == serial.embedding_count
            assert recovered.makespan == serial.makespan
            assert recovered.total_comm_bytes == serial.total_comm_bytes
            assert recovered.counters["distributed.resubmits"] > 0
            assert recovered.counters["distributed.lost_workers"] == 1
            session.close()
        finally:
            for worker in workers:
                worker.close()

    def test_total_roster_loss_raises(self, er_graph):
        workers = [ShardWorker().start(), ShardWorker().start()]
        try:
            executor = SocketExecutor(
                [w.address for w in workers], heartbeat_interval=None
            )
            cluster = Cluster.create(er_graph, 3)
            pattern = named_patterns()["q1"]
            RADSEngine().run(
                cluster.fresh_copy(), pattern,
                collect_embeddings=False, executor=executor,
            )
            for worker in workers:
                worker.crash()
            with pytest.raises(DistributedError):
                RADSEngine().run(
                    cluster.fresh_copy(), pattern,
                    collect_embeddings=False, executor=executor,
                )
            executor.close()
        finally:
            for worker in workers:
                worker.close()

    def test_startup_unreachable_shard_surfaces_on_first_run(self, er_graph):
        """A configured-but-dead shard is a lost worker, visibly."""
        worker = ShardWorker().start()
        try:
            executor = SocketExecutor(
                [worker.address, "127.0.0.1:1"],
                connect_timeout=0.5, heartbeat_interval=None,
            )
            assert executor.workers == 1
            cluster = Cluster.create(er_graph, 3)
            result = RADSEngine().run(
                cluster.fresh_copy(), named_patterns()["q1"],
                collect_embeddings=False, executor=executor,
            )
            assert result.counters["distributed.lost_workers"] == 1
            assert "distributed.resubmits" not in result.counters
            executor.close()
        finally:
            worker.close()

    def test_unreachable_roster_fails_at_construction(self):
        with pytest.raises(DistributedError, match="no shard worker"):
            SocketExecutor(
                ["127.0.0.1:1"], connect_timeout=0.5,
                heartbeat_interval=None,
            )

    def test_heartbeat_prunes_dead_workers(self):
        worker = ShardWorker().start()
        coordinator = ShardCoordinator(
            [worker.address], heartbeat_interval=None
        )
        try:
            assert coordinator.heartbeat() == 1
            worker.crash()
            assert coordinator.heartbeat() == 0
            assert not coordinator.live_shards()
            assert coordinator.counters["distributed.lost_workers"] == 1
        finally:
            coordinator.close()
            worker.close()

    def test_lose_is_idempotent(self):
        """A shard buried twice (heartbeat + batch racing) counts once."""
        worker = ShardWorker().start()
        coordinator = ShardCoordinator(
            [worker.address], heartbeat_interval=None
        )
        try:
            shard = coordinator.live_shards()[0]
            coordinator._lose(shard, RuntimeError("first cause"))
            coordinator._lose(shard, RuntimeError("second cause"))
            assert coordinator.counters["distributed.lost_workers"] == 1
            assert "first cause" in shard.last_error
        finally:
            coordinator.close()
            worker.close()

    def test_heartbeat_burial_then_run_recovers(self, er_graph):
        """A shard the heartbeat buried must not poison the next batch."""
        workers = [ShardWorker().start(), ShardWorker().start()]
        try:
            executor = SocketExecutor(
                [w.address for w in workers], heartbeat_interval=None
            )
            workers[1].crash()
            assert executor.coordinator.heartbeat() == 1
            cluster = Cluster.create(er_graph, 3)
            pattern = named_patterns()["q1"]
            serial = RADSEngine().run(
                cluster.fresh_copy(), pattern, collect_embeddings=False
            )
            result = RADSEngine().run(
                cluster.fresh_copy(), pattern,
                collect_embeddings=False, executor=executor,
            )
            assert result.embedding_count == serial.embedding_count
            assert result.counters["distributed.lost_workers"] == 1
            executor.close()
        finally:
            for worker in workers:
                worker.close()


class TestHandshake:
    def test_fingerprint_mismatch_rejected_without_shipping(self, er_graph):
        other = erdos_renyi(40, 0.1, seed=11)
        worker = ShardWorker(graph=other).start()
        try:
            executor = SocketExecutor(
                [worker.address], ship_graph=False, heartbeat_interval=None
            )
            cluster = Cluster.create(er_graph, 3)
            with pytest.raises(
                DistributedError, match="fingerprint mismatch"
            ) as excinfo:
                RADSEngine().run(
                    cluster.fresh_copy(), named_patterns()["q1"],
                    collect_embeddings=False, executor=executor,
                )
            assert er_graph.fingerprint() in str(excinfo.value)
            assert other.fingerprint() in str(excinfo.value)
            executor.close()
        finally:
            worker.close()

    def test_preloaded_graph_needs_no_shipping(self, er_graph):
        worker = ShardWorker(graph=er_graph).start()
        try:
            executor = SocketExecutor(
                [worker.address], ship_graph=False, heartbeat_interval=None
            )
            cluster = Cluster.create(er_graph, 3)
            serial = RADSEngine().run(
                cluster.fresh_copy(), named_patterns()["q1"],
                collect_embeddings=False,
            )
            result = RADSEngine().run(
                cluster.fresh_copy(), named_patterns()["q1"],
                collect_embeddings=False, executor=executor,
            )
            assert _stats(result) == _stats(serial)
            executor.close()
        finally:
            worker.close()

    def test_shipped_graph_cached_by_fingerprint(self, er_graph):
        worker = ShardWorker().start()
        try:
            assert worker.fingerprints() == []
            executor = SocketExecutor(
                [worker.address], heartbeat_interval=None
            )
            cluster = Cluster.create(er_graph, 3)
            RADSEngine().run(
                cluster.fresh_copy(), named_patterns()["q1"],
                collect_embeddings=False, executor=executor,
            )
            assert worker.fingerprints() == [er_graph.fingerprint()]
            executor.close()
            # A later coordinator binds without shipping: the worker
            # already holds the graph.
            executor = SocketExecutor(
                [worker.address], ship_graph=False, heartbeat_interval=None
            )
            RADSEngine().run(
                cluster.fresh_copy(), named_patterns()["q1"],
                collect_embeddings=False, executor=executor,
            )
            executor.close()
        finally:
            worker.close()

    def test_version_mismatch_rejected(self):
        """An endpoint speaking a different protocol version is refused."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def impostor():
            conn, _ = listener.accept()
            conn.sendall((json.dumps({
                "kind": "hello", "version": 999,
                "role": dproto.WORKER_ROLE,
            }) + "\n").encode())
            conn.recv(1)
            conn.close()

        thread = threading.Thread(target=impostor, daemon=True)
        thread.start()
        try:
            with pytest.raises(DistributedError, match="version mismatch"):
                ShardCoordinator(
                    [listener.getsockname()], heartbeat_interval=None
                )
        finally:
            listener.close()

    def test_wrong_role_rejected(self, er_graph):
        """Pointing the coordinator at a query server is a loud error."""
        server = repro.open(er_graph).serve(port=0)
        try:
            with pytest.raises(DistributedError, match="not a shard worker"):
                ShardCoordinator([server.address], heartbeat_interval=None)
        finally:
            server.close()


class TestWorkerDaemon:
    def test_ping_stats_and_polite_stop(self, er_graph):
        worker = ShardWorker(graph=er_graph).start()
        host, port = worker.address
        with socket.create_connection((host, port), timeout=10) as sock:
            rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
            hello = dproto.read_message(rfile)
            assert hello["role"] == dproto.WORKER_ROLE
            assert hello["version"] == dproto.WORKER_PROTOCOL_VERSION
            assert hello["graphs"] == [er_graph.fingerprint()]
            dproto.write_message(wfile, {"op": "ping", "id": 1})
            assert dproto.read_message(rfile)["kind"] == "pong"
            dproto.write_message(wfile, {"op": "stats", "id": 2})
            stats = dproto.read_message(rfile)["result"]
            assert stats["graphs"] == [er_graph.fingerprint()]
            dproto.write_message(wfile, {"op": "nonsense", "id": 3})
            answer = dproto.read_message(rfile)
            assert not answer["ok"] and "unknown op" in answer["error"]
        assert stop_worker((host, port))
        worker.close()
        assert not stop_worker((host, port))

    def test_process_pool_worker_bit_identical(self, er_graph):
        worker = ShardWorker(workers=2).start()
        try:
            executor = SocketExecutor(
                [worker.address], heartbeat_interval=None
            )
            cluster = Cluster.create(er_graph, 3)
            pattern = named_patterns()["q2"]
            serial = RADSEngine().run(
                cluster.fresh_copy(), pattern, collect_embeddings=False
            )
            pooled = RADSEngine().run(
                cluster.fresh_copy(), pattern,
                collect_embeddings=False, executor=executor,
            )
            assert _stats(pooled) == _stats(serial)
            executor.close()
        finally:
            worker.close()

    def test_pool_result_transport_failure_is_per_task(self, er_graph):
        """A result that dies in transit must not kill the daemon pool.

        The failure is answered on the task's id (no coordinator stall,
        no false shard burial) and the pool keeps serving — mirrors
        ProcessExecutor, which resets only on BrokenProcessPool.
        """
        worker = ShardWorker(workers=2).start()
        try:
            coordinator = ShardCoordinator(
                [worker.address], heartbeat_interval=None
            )
            cluster = Cluster.create(er_graph, 2)
            bad = coordinator.run_batch(cluster, _unpicklable_task, [0])
            assert bad[0][0] == "transport_error"
            good = coordinator.run_batch(cluster, _echo_task, ["ok"])
            assert good[0][0] == "ok" and good[0][1] == ("echo", "ok")
            assert coordinator.live_shards()
            assert coordinator.counters["distributed.lost_workers"] == 0
            coordinator.close()
        finally:
            worker.close()

    def test_malformed_bind_answers_instead_of_dying(self, er_graph):
        """Worker-side bind failures come back as error responses.

        A shipped graph whose fingerprint does not match the bind's, or
        any construction failure, must be answered on the connection —
        a dead executor thread would strand the coordinator until its
        task timeout.
        """
        worker = ShardWorker().start()
        try:
            host, port = worker.address
            with socket.create_connection((host, port), timeout=10) as sock:
                rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
                dproto.read_message(rfile)  # hello
                import numpy as np

                owner = np.zeros(er_graph.num_vertices, dtype=np.int64)
                dproto.write_message(wfile, {
                    "op": "bind", "id": 1,
                    "fingerprint": "not-the-real-fingerprint",
                    "data": dproto.pack({
                        "owner": owner, "cost_model": None,
                        "memory_capacity": None,
                    }),
                    "graph": dproto.pack(er_graph),
                })
                answer = dproto.read_message(rfile)
                assert not answer["ok"]
                assert "does not match" in answer["error"]
                # The connection is still alive and answers pings.
                dproto.write_message(wfile, {"op": "ping", "id": 2})
                assert dproto.read_message(rfile)["kind"] == "pong"
        finally:
            worker.close()

    def test_batch_ctx_shipped_once_and_cached(self, er_graph):
        """The (base, fn) context rides the first task only, then sticks.

        A task naming an unknown batch token (no ctx shipped on this
        connection yet) is answered with an error, not a dead thread; a
        later task reusing a shipped token runs without re-shipping.
        """
        import numpy as np

        from repro.cluster.costmodel import CostModel
        from repro.runtime.delta import capture_state

        worker = ShardWorker().start()
        try:
            host, port = worker.address
            with socket.create_connection((host, port), timeout=10) as sock:
                rfile, wfile = sock.makefile("rb"), sock.makefile("wb")
                dproto.read_message(rfile)  # hello
                owner = np.zeros(er_graph.num_vertices, dtype=np.int64)
                dproto.write_message(wfile, {
                    "op": "bind", "id": 1,
                    "fingerprint": er_graph.fingerprint(),
                    "data": dproto.pack({
                        "owner": owner, "cost_model": CostModel(),
                        "memory_capacity": None,
                    }),
                    "graph": dproto.pack(er_graph),
                })
                assert dproto.read_message(rfile)["ok"]
                # No ctx shipped yet: answered, and the connection lives.
                dproto.write_message(wfile, {
                    "op": "task", "id": 2, "batch": "batch-1",
                    "data": dproto.pack("args"),
                })
                answer = dproto.read_message(rfile)
                assert not answer["ok"]
                assert "batch" in answer["error"]
                # First task of the batch carries ctx ...
                base = capture_state(
                    Cluster(
                        worker._partition_for(er_graph, owner),
                        CostModel(), None,
                    )
                )
                dproto.write_message(wfile, {
                    "op": "task", "id": 3, "batch": "batch-1",
                    "ctx": dproto.pack((base, _echo_task)),
                    "data": dproto.pack("first"),
                })
                answer = dproto.read_message(rfile)
                assert answer["ok"], answer
                assert dproto.unpack(answer["data"])[1] == ("echo", "first")
                # ... and later tasks reuse the cached context.
                dproto.write_message(wfile, {
                    "op": "task", "id": 4, "batch": "batch-1",
                    "data": dproto.pack("second"),
                })
                answer = dproto.read_message(rfile)
                assert answer["ok"], answer
                assert dproto.unpack(answer["data"])[1] == ("echo", "second")
        finally:
            worker.close()

    def test_pack_unpack_roundtrip(self):
        payload = {"base": (1, 2.5), "arr": [(0, 1), (2, 3)]}
        assert dproto.unpack(dproto.pack(payload)) == payload
        with pytest.raises(dproto.ProtocolError):
            dproto.unpack("not base64 pickle!")


class TestConfigAndCapabilities:
    def test_socket_backend_requires_shards_or_registry(self):
        # The config itself is now valid (an elastic registry may supply
        # the roster later); the executor build is where a shardless,
        # registryless socket backend fails loudly.
        config = RunConfig(backend="socket")
        with pytest.raises(ConfigError, match="needs shards"):
            config.make_executor()

    def test_shards_require_socket_backend(self):
        with pytest.raises(ConfigError, match="only apply to the socket"):
            RunConfig(shards=("127.0.0.1:7471",))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            RunConfig(backend="carrier-pigeon")

    def test_shard_addresses_normalized(self):
        config = RunConfig(
            backend="socket",
            shards=[("10.0.0.1", 7471), "10.0.0.2:7472", 7473],
        )
        assert config.shards == (
            "10.0.0.1:7471", "10.0.0.2:7472", "127.0.0.1:7473"
        )
        assert config.to_dict()["backend"] == "socket"
        assert config.to_dict()["shards"] == list(config.shards)

    def test_bad_shard_address_rejected(self):
        with pytest.raises(ConfigError, match="invalid shard address"):
            RunConfig(backend="socket", shards=["not-an-address"])

    def test_backend_excluded_from_cache_key(self, er_graph):
        """Results are backend-independent, so the cache key must be too."""
        serial_config = RunConfig(machines=3)
        socket_config = RunConfig(
            machines=3, backend="socket", shards=("127.0.0.1:7471",)
        )
        assert config_digest(serial_config) == config_digest(socket_config)
        pattern = named_patterns()["q1"]
        assert cache_key(
            er_graph, pattern, "RADS", serial_config, collect=False
        ) == cache_key(
            er_graph, pattern, "RADS", socket_config, collect=False
        )

    def test_make_executor_dispatches_on_backend(self):
        from repro.runtime import ProcessExecutor

        serial = RunConfig(backend="serial", workers=4).make_executor()
        assert isinstance(serial, SerialExecutor)
        process = RunConfig(backend="process", workers=2).make_executor()
        try:
            assert isinstance(process, ProcessExecutor)
            assert process.workers == 2
        finally:
            process.close()

    def test_engine_then_socket_backend_raises(self, er_graph):
        session = repro.open(er_graph).engine("oracle")
        with pytest.raises(CapabilityError) as excinfo:
            session.backend("socket", shards=["127.0.0.1:7471"])
        assert "RADS" in str(excinfo.value)
        # The rejected config must leave the session intact.
        assert session.config.backend == "auto"
        assert session.run_grid is not None  # session still usable

    def test_socket_backend_then_engine_raises(self, er_graph):
        session = repro.open(er_graph).backend(
            "socket", shards=["127.0.0.1:7471"]
        )
        with pytest.raises(CapabilityError, match="distributed"):
            session.engine("single")
        # A distributed engine is accepted without touching the roster
        # (executors connect lazily, at run time).
        session.engine("rads")

    def test_scheduler_fails_fast_on_dead_roster(self, er_graph):
        """A socket-backed scheduler must not silently degrade to serial."""
        with pytest.raises(DistributedError):
            QueryScheduler(
                er_graph,
                RunConfig(
                    machines=3, backend="socket",
                    shards=("127.0.0.1:1",),
                ),
                threads=1,
            )

    def test_scheduler_socket_capability_check(self, er_graph):
        worker = ShardWorker().start()
        try:
            with QueryScheduler(
                er_graph,
                RunConfig(
                    machines=3, backend="socket",
                    shards=(_addr(worker),),
                ),
                threads=1,
                cache=False,
            ) as scheduler:
                with pytest.raises(CapabilityError):
                    scheduler.submit("q1", "single")
        finally:
            worker.close()
