"""Tests for NetworkX interoperability helpers."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration import enumerate_embeddings
from repro.graph import erdos_renyi
from repro.graph.interop import (
    graph_from_networkx,
    graph_to_networkx,
    pattern_from_networkx,
    pattern_to_networkx,
)
from repro.query.patterns import triangle


class TestGraphConversion:
    def test_roundtrip_preserves_structure(self):
        graph = erdos_renyi(40, 0.15, seed=6)
        nx_graph = graph_to_networkx(graph)
        assert nx_graph.number_of_nodes() == graph.num_vertices
        assert nx_graph.number_of_edges() == graph.num_edges
        back, remap = graph_from_networkx(nx_graph)
        assert back == graph
        assert remap == {v: v for v in range(graph.num_vertices)}

    def test_arbitrary_node_names_densified(self):
        nx_graph = nx.Graph([("alice", "bob"), ("bob", "carol")])
        graph, remap = graph_from_networkx(nx_graph)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert graph.has_edge(remap["alice"], remap["bob"])
        assert not graph.has_edge(remap["alice"], remap["carol"])

    def test_self_loops_dropped(self):
        nx_graph = nx.Graph([(0, 0), (0, 1)])
        graph, _ = graph_from_networkx(nx_graph)
        assert graph.num_edges == 1

    def test_directed_rejected(self):
        with pytest.raises(ValueError):
            graph_from_networkx(nx.DiGraph([(0, 1)]))

    def test_nx_algorithms_agree(self):
        graph = erdos_renyi(60, 0.1, seed=9)
        nx_graph = graph_to_networkx(graph)
        from repro.graph import triangle_count

        assert (
            sum(nx.triangles(nx_graph).values()) // 3
            == triangle_count(graph)
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_roundtrip(self, seed):
        graph = erdos_renyi(25, 0.2, seed=seed)
        back, _ = graph_from_networkx(graph_to_networkx(graph))
        assert back == graph


class TestPatternConversion:
    def test_pattern_roundtrip(self):
        pattern = triangle()
        back, _ = pattern_from_networkx(
            pattern_to_networkx(pattern), name="triangle"
        )
        assert back == pattern
        assert back.name == "triangle"

    def test_disconnected_pattern_rejected(self):
        with pytest.raises(ValueError):
            pattern_from_networkx(nx.Graph([(0, 1), (2, 3)]))

    def test_enumeration_on_converted_pattern(self):
        """An nx-authored query runs through the standard enumerator."""
        nx_query = nx.cycle_graph(4)
        pattern, _ = pattern_from_networkx(nx_query, name="square-from-nx")
        data = erdos_renyi(30, 0.2, seed=12)
        found = enumerate_embeddings(
            data.neighbors, data.vertices(), pattern
        )
        # Cross-check with nx's subgraph isomorphism counting.
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            graph_to_networkx(data), nx_query
        )
        expected = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
        assert len(found) == expected
