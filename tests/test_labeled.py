"""Tests for labeled graphs and TurboIso-style labeled enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration import enumerate_embeddings, labeled_embeddings
from repro.enumeration.backtracking import EnumerationStats
from repro.enumeration.labeled import (
    LabeledPattern,
    candidate_sets,
    labeled_matching_order,
)
from repro.graph import (
    LabeledGraph,
    erdos_renyi,
    label_by_degree_buckets,
    label_randomly,
)
from repro.graph.graph import Graph
from repro.query.pattern import Pattern
from repro.query.patterns import path, star, triangle


def brute_force(data: LabeledGraph, query: LabeledPattern):
    """Oracle: unlabeled embeddings filtered by exact label agreement."""
    unlabeled = enumerate_embeddings(
        data.graph.neighbors, data.graph.vertices(), query.pattern
    )
    return {
        emb
        for emb in unlabeled
        if all(data.label(v) == query.label(u) for u, v in enumerate(emb))
    }


class TestLabeledGraph:
    def test_label_lookup(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        lg = LabeledGraph(g, [5, 7, 5])
        assert lg.label(0) == 5
        assert lg.label(1) == 7
        assert list(lg.vertices_with_label(5)) == [0, 2]
        assert list(lg.vertices_with_label(7)) == [1]
        assert list(lg.vertices_with_label(9)) == []

    def test_length_mismatch_rejected(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            LabeledGraph(g, [1])

    def test_negative_labels_rejected(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            LabeledGraph(g, [0, -1])

    def test_nlf(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        lg = LabeledGraph(g, [0, 1, 1, 2])
        nlf = lg.neighborhood_label_frequency(0)
        assert nlf == {1: 2, 2: 1}

    def test_label_frequencies(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        lg = LabeledGraph(g, [0, 0, 1, 0])
        assert lg.label_frequencies() == {0: 3, 1: 1}

    def test_degree_bucket_labeling(self):
        g = star(5)  # pattern, need a data graph; build a hub graph
        data = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
        lg = label_by_degree_buckets(data, 2)
        # Buckets split by degree rank: the hub is in the top bucket, and
        # the two buckets are balanced (3 vertices each).
        assert lg.label(0) == 1
        assert lg.label_frequencies() == {0: 3, 1: 3}

    def test_random_labeling_deterministic(self):
        g = erdos_renyi(30, 0.2, seed=3)
        a = label_randomly(g, 4, seed=9)
        b = label_randomly(g, 4, seed=9)
        assert np.array_equal(a.labels, b.labels)

    def test_weighted_labeling(self):
        g = erdos_renyi(300, 0.02, seed=1)
        lg = label_randomly(g, 3, seed=0, weights={0: 0.8, 1: 0.1, 2: 0.1})
        freq = lg.label_frequencies()
        assert freq[0] > freq[1]
        assert freq[0] > freq[2]

    def test_weighted_labeling_needs_mass(self):
        g = erdos_renyi(10, 0.2, seed=1)
        with pytest.raises(ValueError):
            label_randomly(g, 2, weights={0: 0.0, 1: 0.0})


class TestLabeledPattern:
    def test_basic(self):
        lp = LabeledPattern(triangle(), [1, 2, 1])
        assert lp.label(1) == 2
        assert lp.neighborhood_label_frequency(0) == {2: 1, 1: 1}

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            LabeledPattern(triangle(), [1, 2])


class TestCandidateFiltering:
    def test_label_filter(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        lg = LabeledGraph(g, [0, 1, 0, 1])
        lp = LabeledPattern(triangle(), [0, 1, 0])
        cands = candidate_sets(lg, lp)
        assert set(int(v) for v in cands[0]) <= {0, 2}
        assert set(int(v) for v in cands[1]) <= {1, 3}

    def test_nlf_prunes_more_than_label_alone(self):
        g = erdos_renyi(120, 0.05, seed=4)
        lg = label_randomly(g, 3, seed=2)
        lp = LabeledPattern(star(3), [0, 1, 1, 1])
        with_nlf = candidate_sets(lg, lp, use_nlf=True)
        without = candidate_sets(lg, lp, use_nlf=False)
        assert len(with_nlf[0]) <= len(without[0])

    def test_matching_order_starts_at_rarest(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        lg = LabeledGraph(g, [0, 0, 0, 0, 9])
        lp = LabeledPattern(path(3), [0, 9, 0])
        cands = candidate_sets(lg, lp)
        order = labeled_matching_order(lp.pattern, cands)
        assert order[0] == 1  # the label-9 vertex has one candidate


class TestLabeledEnumeration:
    def test_matches_brute_force_triangle(self):
        g = erdos_renyi(60, 0.12, seed=8)
        lg = label_randomly(g, 2, seed=5)
        lp = LabeledPattern(triangle(), [0, 1, 0])
        assert set(labeled_embeddings(lg, lp)) == brute_force(lg, lp)

    def test_uniform_labels_reduce_to_unlabeled(self):
        g = erdos_renyi(40, 0.15, seed=2)
        lg = LabeledGraph(g, [0] * g.num_vertices)
        lp = LabeledPattern(triangle(), [0, 0, 0])
        unlabeled = enumerate_embeddings(
            g.neighbors, g.vertices(), triangle()
        )
        assert set(labeled_embeddings(lg, lp)) == set(unlabeled)

    def test_impossible_label_yields_nothing(self):
        g = erdos_renyi(40, 0.2, seed=2)
        lg = label_randomly(g, 2, seed=1)
        lp = LabeledPattern(triangle(), [0, 1, 7])  # label 7 never occurs
        assert labeled_embeddings(lg, lp) == []

    def test_limit(self):
        g = erdos_renyi(60, 0.2, seed=9)
        lg = LabeledGraph(g, [0] * g.num_vertices)
        lp = LabeledPattern(triangle(), [0, 0, 0])
        assert len(labeled_embeddings(lg, lp, limit=4)) == 4

    def test_stats_counted(self):
        g = erdos_renyi(50, 0.15, seed=3)
        lg = label_randomly(g, 2, seed=3)
        lp = LabeledPattern(path(3), [0, 1, 0])
        stats = EnumerationStats()
        labeled_embeddings(lg, lp, stats=stats)
        assert stats.candidates_scanned > 0

    def test_single_vertex_pattern(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        lg = LabeledGraph(g, [4, 4, 5])
        lp = LabeledPattern(Pattern(1, []), [4])
        assert sorted(labeled_embeddings(lg, lp)) == [(0,), (1,)]

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        label_seed=st.integers(0, 10_000),
        num_labels=st.integers(1, 4),
    )
    def test_property_matches_brute_force(self, seed, label_seed, num_labels):
        g = erdos_renyi(25, 0.2, seed=seed)
        lg = label_randomly(g, num_labels, seed=label_seed)
        rng = np.random.default_rng(label_seed + 1)
        qlabels = [int(x) for x in rng.integers(0, num_labels, size=3)]
        lp = LabeledPattern(triangle(), qlabels)
        assert set(labeled_embeddings(lg, lp)) == brute_force(lg, lp)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_nlf_never_changes_results(self, seed):
        g = erdos_renyi(30, 0.18, seed=seed)
        lg = label_randomly(g, 3, seed=seed + 1)
        lp = LabeledPattern(path(4), [0, 1, 2, 0])
        with_nlf = set(labeled_embeddings(lg, lp, use_nlf=True))
        without = set(labeled_embeddings(lg, lp, use_nlf=False))
        assert with_nlf == without
