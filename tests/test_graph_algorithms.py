"""Unit tests for graph algorithms (BFS, components, triangles, cliques...)."""

import pytest

from repro.graph import (
    Graph,
    bfs_distances,
    connected_components,
    degeneracy_order,
    diameter_lower_bound,
    enumerate_cliques,
    erdos_renyi,
    grid_road_network,
    k_core,
    maximal_cliques,
    multi_source_bfs,
    triangle_count,
    triangles,
)
from repro.graph.algorithms import UNREACHED, eccentricity
from repro.graph.cliques import local_triangles


@pytest.fixture()
def path_graph():
    return Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture()
def two_triangles():
    # Two disjoint triangles.
    return Graph.from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])


class TestBFS:
    def test_path_distances(self, path_graph):
        assert list(bfs_distances(path_graph, 0)) == [0, 1, 2, 3, 4]

    def test_unreachable(self, two_triangles):
        dist = bfs_distances(two_triangles, 0)
        assert dist[3] == UNREACHED
        assert dist[2] == 1

    def test_multi_source(self, path_graph):
        dist = multi_source_bfs(path_graph, [0, 4])
        assert list(dist) == [0, 1, 2, 1, 0]

    def test_eccentricity(self, path_graph):
        assert eccentricity(path_graph, 0) == 4
        assert eccentricity(path_graph, 2) == 2


class TestComponents:
    def test_connected(self, path_graph):
        assert len(set(connected_components(path_graph))) == 1

    def test_disconnected(self, two_triangles):
        labels = connected_components(two_triangles)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]


class TestDiameter:
    def test_path_diameter_exact(self, path_graph):
        assert diameter_lower_bound(path_graph, sweeps=4) == 4

    def test_grid_diameter_grows(self):
        small = grid_road_network(5, 5, extra_edge_prob=0, seed=0)
        large = grid_road_network(15, 15, extra_edge_prob=0, seed=0)
        assert diameter_lower_bound(large) > diameter_lower_bound(small)

    def test_lower_bound_never_exceeds_n(self):
        g = erdos_renyi(50, 0.1, seed=1)
        assert diameter_lower_bound(g) < 50


class TestTriangles:
    def test_triangle_listing(self, two_triangles):
        assert sorted(triangles(two_triangles)) == [(0, 1, 2), (3, 4, 5)]

    def test_count_matches_listing(self):
        g = erdos_renyi(60, 0.15, seed=2)
        assert triangle_count(g) == len(triangles(g))

    def test_triangle_free(self, path_graph):
        assert triangle_count(path_graph) == 0

    def test_local_triangles(self, two_triangles):
        assert local_triangles(two_triangles, 0) == [(1, 2)]


class TestKCore:
    def test_triangle_is_2core(self, two_triangles):
        assert k_core(two_triangles, 2).all()

    def test_path_has_no_2core(self, path_graph):
        assert not k_core(path_graph, 2).any()

    def test_k_core_subset_of_smaller_core(self):
        g = erdos_renyi(80, 0.1, seed=3)
        core2 = k_core(g, 2)
        core3 = k_core(g, 3)
        assert (core3 <= core2).all()


class TestDegeneracy:
    def test_order_is_permutation(self):
        g = erdos_renyi(40, 0.1, seed=4)
        order = degeneracy_order(g)
        assert sorted(order) == list(range(40))

    def test_path_degeneracy(self, path_graph):
        # A path is 1-degenerate: every prefix removal has a degree-<=1 vertex.
        order = degeneracy_order(path_graph)
        assert len(order) == 5


class TestCliques:
    def test_maximal_cliques_triangle(self, two_triangles):
        cliques = maximal_cliques(two_triangles)
        assert sorted(cliques) == [(0, 1, 2), (3, 4, 5)]

    def test_k4_subcliques(self):
        g = Graph.from_edges(4, [(a, b) for a in range(4) for b in range(a + 1, 4)])
        assert maximal_cliques(g) == [(0, 1, 2, 3)]
        size3 = [c for c in enumerate_cliques(g, 3, 4) if len(c) == 3]
        assert len(size3) == 4

    def test_enumerate_min_size(self, two_triangles):
        cliques = enumerate_cliques(two_triangles, min_size=3, max_size=3)
        assert len(cliques) == 2

    def test_max_count_cap(self):
        g = erdos_renyi(40, 0.3, seed=5)
        capped = maximal_cliques(g, max_count=3)
        assert len(capped) <= 4  # cap is approximate by one batch

    def test_cliques_are_cliques(self):
        g = erdos_renyi(30, 0.25, seed=6)
        for clique in enumerate_cliques(g, 3, 4):
            for i, a in enumerate(clique):
                for b in clique[i + 1:]:
                    assert g.has_edge(a, b)
