"""Tests for partitioners and partition views (border vertices/distances)."""

import numpy as np
import pytest

from repro.graph import Graph, erdos_renyi, grid_road_network
from repro.partition import (
    GraphPartition,
    HashPartitioner,
    MetisLikePartitioner,
    edge_cut,
    partition_balance,
)


@pytest.fixture(scope="module")
def grid():
    return grid_road_network(16, 16, extra_edge_prob=0.05, seed=2)


class TestHashPartitioner:
    def test_assignment_range(self, grid):
        owner = HashPartitioner().assign(grid, 4)
        assert owner.min() >= 0 and owner.max() < 4

    def test_roughly_balanced(self, grid):
        owner = HashPartitioner().assign(grid, 4)
        assert partition_balance(owner, 4) < 1.3

    def test_needs_machine(self, grid):
        with pytest.raises(ValueError):
            HashPartitioner().assign(grid, 0)


class TestMetisLikePartitioner:
    def test_balanced(self, grid):
        owner = MetisLikePartitioner(seed=0).assign(grid, 4)
        assert partition_balance(owner, 4) < 1.35

    def test_locality_beats_hash(self, grid):
        metis_owner = MetisLikePartitioner(seed=0).assign(grid, 4)
        hash_owner = HashPartitioner().assign(grid, 4)
        assert edge_cut(grid, metis_owner) < 0.5 * edge_cut(grid, hash_owner)

    def test_single_machine(self, grid):
        owner = MetisLikePartitioner().assign(grid, 1)
        assert (owner == 0).all()

    def test_all_machines_used(self, grid):
        owner = MetisLikePartitioner(seed=1).assign(grid, 6)
        assert set(np.unique(owner)) == set(range(6))

    def test_works_on_random_graph(self):
        g = erdos_renyi(200, 0.05, seed=4)
        owner = MetisLikePartitioner(seed=0).assign(g, 3)
        assert len(owner) == 200
        assert partition_balance(owner, 3) < 1.5


class TestPartitionView:
    @pytest.fixture()
    def partition(self, grid):
        owner = MetisLikePartitioner(seed=0).assign(grid, 4)
        return GraphPartition(grid, owner)

    def test_ownership_partition(self, partition, grid):
        counts = sum(
            len(partition.machine(t).owned_vertices) for t in range(4)
        )
        assert counts == grid.num_vertices

    def test_foreign_access_raises(self, partition):
        m0 = partition.machine(0)
        foreign = [
            v for v in range(partition.graph.num_vertices)
            if not m0.is_owned(v)
        ][0]
        with pytest.raises(KeyError):
            m0.neighbors(foreign)

    def test_border_vertices_have_foreign_neighbour(self, partition, grid):
        m0 = partition.machine(0)
        for v in m0.border_vertices:
            owners = {partition.owner_of(int(w)) for w in grid.neighbors(int(v))}
            assert owners - {0}

    def test_non_border_fully_local(self, partition, grid):
        m0 = partition.machine(0)
        border = set(int(v) for v in m0.border_vertices)
        for v in m0.owned_vertices:
            v = int(v)
            if v not in border:
                for w in grid.neighbors(v):
                    assert partition.owner_of(int(w)) == 0

    def test_border_distance_zero_on_border(self, partition):
        m0 = partition.machine(0)
        for v in m0.border_vertices[:10]:
            assert m0.border_distance(int(v)) == 0

    def test_border_distance_definition(self, partition, grid):
        """BD(v) = min over border vertices of local-subgraph distance."""
        m0 = partition.machine(0)
        owned = set(int(v) for v in m0.owned_vertices)
        # Build the local induced subgraph once.
        local_edges = [
            (u, v) for u, v in grid.edges() if u in owned and v in owned
        ]
        remap = {v: i for i, v in enumerate(sorted(owned))}
        local = Graph.from_edges(
            len(owned), [(remap[u], remap[v]) for u, v in local_edges]
        )
        from repro.graph import multi_source_bfs

        dist = multi_source_bfs(
            local, [remap[int(b)] for b in m0.border_vertices]
        )
        for v in sorted(owned)[:50]:
            expected = int(dist[remap[v]])
            if expected == -1:
                assert m0.border_distance(v) > grid.num_vertices
            else:
                assert m0.border_distance(v) == expected

    def test_verify_edge(self, partition, grid):
        m0 = partition.machine(0)
        v = int(m0.owned_vertices[0])
        w = int(grid.neighbors(v)[0])
        assert m0.can_verify_edge(v, w)
        assert m0.verify_edge(v, w)

    def test_verify_foreign_edge_raises(self, partition):
        m0 = partition.machine(0)
        foreign = [
            v for v in range(partition.graph.num_vertices)
            if not m0.is_owned(v)
        ]
        with pytest.raises(KeyError):
            m0.verify_edge(foreign[0], foreign[1])

    def test_adjacency_bytes(self, partition):
        assert partition.machine(0).adjacency_bytes() > 0
