"""Tests for the BigJoin extension engine."""

import pytest

from repro.cluster import Cluster
from repro.engines import SingleMachineEngine
from repro.engines.bigjoin import BigJoinEngine
from repro.graph import erdos_renyi, powerlaw_cluster
from repro.query import named_patterns


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(90, 0.1, seed=41)


class TestBigJoinCorrectness:
    @pytest.mark.parametrize(
        "qname", ["q1", "q2", "q4", "q6", "q8", "cq1", "triangle"]
    )
    def test_matches_oracle(self, graph, qname):
        pattern = named_patterns()[qname]
        cluster = Cluster.create(graph, 4)
        expected = set(
            SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
        )
        result = BigJoinEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected
        assert len(result.embeddings) == len(expected)

    def test_powerlaw(self):
        g = powerlaw_cluster(120, 3, seed=42)
        pattern = named_patterns()["q4"]
        cluster = Cluster.create(g, 3)
        expected = SingleMachineEngine().run(
            cluster.fresh_copy(), pattern
        ).embedding_count
        result = BigJoinEngine().run(
            cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        assert result.embedding_count == expected


class TestBigJoinBehaviour:
    def test_shuffles_intermediates(self, graph):
        cluster = Cluster.create(graph, 4)
        result = BigJoinEngine().run(
            cluster, named_patterns()["q4"], collect_embeddings=False
        )
        assert result.total_comm_bytes > 0

    def test_worst_case_optimal_beats_twintwig_memory(self):
        """On hub-heavy graphs the WCO intersection avoids the star blowup,
        so BigJoin's peak memory sits well under TwinTwig's."""
        from repro.engines import TwinTwigEngine

        g = powerlaw_cluster(300, 4, seed=43)
        pattern = named_patterns()["q4"]
        base = Cluster.create(g, 4)
        bj = BigJoinEngine().run(
            base.fresh_copy(), pattern, collect_embeddings=False
        )
        tt = TwinTwigEngine().run(
            base.fresh_copy(), pattern, collect_embeddings=False
        )
        assert bj.peak_memory < tt.peak_memory

    def test_synchronous(self, graph):
        cluster = Cluster.create(graph, 4)
        BigJoinEngine().run(
            cluster, named_patterns()["q2"], collect_embeddings=False
        )
        clocks = {round(m.clock, 12) for m in cluster.machines}
        assert len(clocks) == 1
