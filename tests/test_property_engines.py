"""Property-based end-to-end tests: RADS equals the oracle on random
graphs, partitions and queries (hypothesis)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import Cluster
from repro.core.rads import RADSEngine
from repro.engines import SingleMachineEngine
from repro.graph import erdos_renyi, powerlaw_cluster
from repro.partition import HashPartitioner, MetisLikePartitioner
from repro.query import named_patterns


QUERY_POOL = ["q1", "q2", "q3", "q4", "q6", "cq3", "triangle"]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 1000),
    qname=st.sampled_from(QUERY_POOL),
    machines=st.integers(2, 6),
    hash_partition=st.booleans(),
)
def test_rads_equals_oracle_on_random_inputs(
    seed, qname, machines, hash_partition
):
    graph = erdos_renyi(60, 0.12, seed=seed)
    partitioner = (
        HashPartitioner(seed=seed) if hash_partition
        else MetisLikePartitioner(seed=seed)
    )
    cluster = Cluster.create(graph, machines, partitioner=partitioner)
    pattern = named_patterns()[qname]
    expected = set(
        SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
    )
    result = RADSEngine(seed=seed).run(cluster.fresh_copy(), pattern)
    got = result.embeddings
    assert set(got) == expected
    assert len(got) == len(expected)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 100), qname=st.sampled_from(["q2", "q4"]))
def test_rads_on_powerlaw_graphs(seed, qname):
    graph = powerlaw_cluster(90, 3, seed=seed)
    cluster = Cluster.create(graph, 3)
    pattern = named_patterns()[qname]
    expected = set(
        SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
    )
    result = RADSEngine().run(cluster.fresh_copy(), pattern)
    assert set(result.embeddings) == expected


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100))
def test_all_embeddings_are_valid_subgraphs(seed):
    graph = erdos_renyi(50, 0.15, seed=seed)
    cluster = Cluster.create(graph, 3)
    pattern = named_patterns()["q4"]
    result = RADSEngine().run(cluster.fresh_copy(), pattern)
    for emb in result.embeddings:
        assert len(set(emb)) == pattern.num_vertices
        for u, v in pattern.edges():
            assert graph.has_edge(emb[u], emb[v])
