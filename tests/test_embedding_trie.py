"""Tests for the embedding trie (paper Sec. 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.embedding_trie import (
    NODE_BYTES,
    EmbeddingTrie,
    embedding_list_bytes,
    trie_nodes_for_results,
)


class TestBasicOperations:
    def test_paper_example(self):
        """Example 6 / Fig. 5: three ECs sharing prefixes."""
        trie = EmbeddingTrie()
        leaves = [
            trie.extend_path(None, path)
            for path in [(0, 1, 2), (0, 1, 9), (0, 9, 11)]
        ]
        # v0 root shared; extend_path merges roots but not inner chains
        # (R-Meef's expansion creates each inner node exactly once itself).
        assert trie.num_roots == 1
        assert trie.num_nodes == 7
        assert [leaf.path() for leaf in leaves] == [
            [0, 1, 2], [0, 1, 9], [0, 9, 11]
        ]

    def test_removal_cascade(self):
        trie = EmbeddingTrie()
        a = trie.extend_path(None, (0, 1, 2))
        trie.extend_path(trie.add_root(0), (3,))  # second branch under root
        assert trie.num_nodes == 4
        removed = trie.remove_leaf(a)
        # Leaf 2 and its now-childless parent 1 go; the root survives
        # because the (0, 3) branch still hangs off it.
        assert removed == 2
        assert trie.num_nodes == 2
        assert trie.num_roots == 1

    def test_remove_last_result_empties_trie(self):
        trie = EmbeddingTrie()
        leaf = trie.extend_path(None, (3, 4, 5))
        assert trie.num_nodes == 3
        assert trie.remove_leaf(leaf) == 3
        assert trie.num_nodes == 0
        assert trie.num_roots == 0

    def test_detach_childless_no_cascade(self):
        trie = EmbeddingTrie()
        leaf = trie.extend_path(None, (1, 2, 3))
        parent = leaf.parent
        assert trie.detach_childless(leaf) == 1
        # Parent survives even though it now has no children.
        assert trie.num_nodes == 2
        assert parent.child_count == 0

    def test_detach_with_children_rejected(self):
        trie = EmbeddingTrie()
        leaf = trie.extend_path(None, (1, 2))
        with pytest.raises(ValueError):
            trie.detach_childless(leaf.parent)

    def test_root_dedup(self):
        trie = EmbeddingTrie()
        r1 = trie.add_root(7)
        r2 = trie.add_root(7)
        assert r1 is r2
        assert trie.num_nodes == 1

    def test_unique_leaf_ids(self):
        trie = EmbeddingTrie()
        a = trie.extend_path(None, (0, 1))
        b = trie.extend_path(trie.add_root(0), (2,))
        assert a is not b

    def test_depth(self):
        trie = EmbeddingTrie()
        leaf = trie.extend_path(None, (5, 6, 7, 8))
        assert leaf.depth() == 3

    def test_memory_bytes(self):
        trie = EmbeddingTrie()
        trie.extend_path(None, (0, 1, 2))
        assert trie.memory_bytes() == 3 * NODE_BYTES


class TestCompressionAccounting:
    def test_shared_prefix_compresses(self):
        results = [(0, 1, 2), (0, 1, 3), (0, 1, 4)]
        assert trie_nodes_for_results(results) == 5  # 0,1 shared; 2,3,4
        # Each EL row pays the vertex ids plus the container overhead.
        assert embedding_list_bytes(3, 3) == 3 * (3 * 8 + 24)

    def test_disjoint_results_no_compression(self):
        results = [(0, 1), (2, 3), (4, 5)]
        assert trie_nodes_for_results(results) == 6

    def test_empty(self):
        assert trie_nodes_for_results([]) == 0


class TestTrieProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        paths=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
            min_size=1, max_size=20, unique=True,
        )
    )
    def test_insert_then_remove_all_is_empty(self, paths):
        """Inserting distinct results then removing them empties the trie."""
        trie = EmbeddingTrie()
        # Insert with prefix sharing via a manual prefix map (the R-Meef
        # expansion guarantees sibling uniqueness; we emulate it here).
        index: dict[tuple, object] = {}
        leaves = []
        for path in paths:
            node = None
            for i, v in enumerate(path):
                key = path[: i + 1]
                if key in index:
                    node = index[key]
                else:
                    node = (
                        trie.add_root(v) if node is None
                        else trie.add_child(node, v)
                    )
                    index[key] = node
            leaves.append(index[path])
        expected_nodes = len({p[: i + 1] for p in paths for i in range(3)})
        assert trie.num_nodes == expected_nodes
        for leaf in set(map(id, leaves)):
            pass
        for leaf in leaves:
            trie.remove_leaf(leaf)
        assert trie.num_nodes == 0

    @settings(max_examples=30, deadline=None)
    @given(
        paths=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=1, max_size=10, unique=True,
        )
    )
    def test_paths_roundtrip(self, paths):
        trie = EmbeddingTrie()
        index: dict[tuple, object] = {}
        leaves = {}
        for path in paths:
            node = None
            for i, v in enumerate(path):
                key = path[: i + 1]
                if key not in index:
                    index[key] = (
                        trie.add_root(v) if node is None
                        else trie.add_child(node, v)
                    )
                node = index[key]
            leaves[path] = node
        for path, leaf in leaves.items():
            assert tuple(leaf.path()) == path
