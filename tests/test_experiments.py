"""Tests for the experiment registry (tiny scales for speed)."""

import pytest

from repro.bench import experiments as X
from repro.bench.harness import run_query_grid
from repro.bench.datasets import dataset
from repro.core.rads import RADSEngine
from repro.engines import SEEDEngine


class TestExperimentHelpers:
    def test_table1_rows(self):
        rows = X.exp_table1()
        assert len(rows) == 4
        assert {r["dataset"] for r in rows} == {
            "RoadNet", "DBLP", "LiveJournal", "UK2002"
        }

    def test_compression_small(self):
        rows = X.exp_compression("dblp", queries=["q1", "q2"])
        assert sum(r["et_kb"] for r in rows) < sum(r["el_kb"] for r in rows)
        assert all(r["embeddings"] > 0 for r in rows)

    def test_plan_effectiveness_row_shape(self):
        rows = X.exp_plan_effectiveness(
            "dblp", queries=("q4",), num_machines=3, num_random=1
        )
        assert set(rows[0]) == {"query", "RanS", "RanM", "RADS"}
        assert all(v > 0 for k, v in rows[0].items() if k != "query")

    def test_scalability_base_is_one(self):
        ratios = X.exp_scalability(
            "dblp", machine_counts=(3, 6), queries=("q1",),
            engines={"RADS": RADSEngine()},
        )
        assert ratios["RADS"][3] == pytest.approx(1.0)

    def test_performance_grid_subset(self):
        grid = X.exp_performance(
            "dblp", queries=["q1"], num_machines=3,
            engines={"RADS": RADSEngine(), "SEED": SEEDEngine()},
        )
        assert grid.get("RADS", "q1").embedding_count == grid.get(
            "SEED", "q1"
        ).embedding_count

    def test_consistency_check_raises_on_disagreement(self):
        class BrokenEngine(RADSEngine):
            name = "Broken"

            def run(self, cluster, pattern, collect_embeddings=True, **kwargs):
                result = super().run(
                    cluster, pattern, collect_embeddings, **kwargs
                )
                result.embedding_count += 1
                return result

        graph = dataset("dblp", 0.12)
        with pytest.raises(AssertionError):
            run_query_grid(
                graph, "x", ["q1"],
                engines={"RADS": RADSEngine(), "Broken": BrokenEngine()},
                num_machines=2,
            )


class TestScalabilityConsistency:
    def test_failed_query_excluded_at_all_node_counts(self):
        """A query that OOMs at any node count must not skew the ratios:
        only queries finishing everywhere enter the totals."""

        class FlakyEngine(RADSEngine):
            """OOMs whenever the cluster has exactly 3 machines."""

            name = "Flaky"

            def run(self, cluster, pattern, collect_embeddings=True, **kwargs):
                from repro.engines.base import RunResult

                if cluster.num_machines == 3:
                    return RunResult(
                        engine=self.name, pattern_name=pattern.name,
                        embedding_count=0, makespan=99.0,
                        total_comm_bytes=0, peak_memory=0,
                        per_machine_time=[], failed=True, failure="OOM",
                    )
                return super().run(
                    cluster, pattern, collect_embeddings, **kwargs
                )

        ratios = X.exp_scalability(
            "dblp", machine_counts=(3, 6), queries=("q1",),
            engines={"Flaky": FlakyEngine()}, scale=0.5,
        )
        # q1 failed at 3 machines -> no query survives -> NaN ratios
        # rather than a bogus comparison of different query sets.
        import math

        assert math.isnan(ratios["Flaky"][3]) or ratios["Flaky"][3] == 0
