"""Tests for the Afrati-Ullman single-round multiway join engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.engines import MultiwayJoinEngine, SingleMachineEngine, compute_shares
from repro.graph import erdos_renyi
from repro.query import named_patterns
from repro.query.patterns import path, triangle


def oracle(cluster, pattern):
    return set(
        SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
    )


class TestComputeShares:
    def test_product_bounded(self):
        for m in (1, 2, 4, 8, 10, 16):
            shares = compute_shares(triangle(), m)
            assert int(np.prod(shares)) <= m

    def test_triangle_shares_balanced(self):
        # The classic hypercube result: the triangle wants a cube-balanced
        # grid, so with m = 8 every vertex gets share 2.
        assert compute_shares(triangle(), 8) == (2, 2, 2)

    def test_path_uses_middle_vertex(self):
        # For a 2-edge path, hashing the middle vertex splits both
        # relations without replication; the optimum puts all share there.
        shares = compute_shares(path(3), 4)
        assert shares[1] == 4
        assert shares[0] == shares[2] == 1

    def test_single_reducer_degenerates(self):
        assert compute_shares(named_patterns()["q4"], 1) == (1,) * 5

    def test_invalid_reducer_count(self):
        with pytest.raises(ValueError):
            compute_shares(triangle(), 0)

    def test_length_matches_pattern(self):
        for name in ("q1", "q5", "q8"):
            pattern = named_patterns()[name]
            shares = compute_shares(pattern, 10)
            assert len(shares) == pattern.num_vertices


class TestMultiwayCorrectness:
    @pytest.mark.parametrize(
        "qname", ["q1", "q2", "q3", "q4", "q6", "q8", "cq1", "cq3"]
    )
    def test_agrees_with_oracle_on_er(self, er_cluster, qname):
        pattern = named_patterns()[qname]
        expected = oracle(er_cluster, pattern)
        result = MultiwayJoinEngine().run(er_cluster.fresh_copy(), pattern)
        assert not result.failed
        assert set(result.embeddings) == expected
        assert result.embedding_count == len(expected)

    def test_community_graph(self, community_graph_small):
        cluster = Cluster.create(community_graph_small, 5)
        pattern = named_patterns()["q5"]
        expected = oracle(cluster, pattern)
        result = MultiwayJoinEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected

    def test_counting_mode_matches(self, er_cluster):
        pattern = named_patterns()["q2"]
        collected = MultiwayJoinEngine().run(
            er_cluster.fresh_copy(), pattern
        )
        counted = MultiwayJoinEngine().run(
            er_cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        assert counted.embedding_count == collected.embedding_count
        assert counted.embeddings is None

    def test_single_machine_cluster(self, er_graph):
        cluster = Cluster.create(er_graph, 1)
        pattern = triangle()
        expected = oracle(cluster, pattern)
        result = MultiwayJoinEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected
        # Everything local: nothing crosses the wire.
        assert result.total_comm_bytes == 0

    def test_explicit_share_vector(self, er_cluster):
        pattern = triangle()
        expected = oracle(er_cluster, pattern)
        engine = MultiwayJoinEngine(shares=(2, 2, 1))
        result = engine.run(er_cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected
        assert engine.last_shares == (2, 2, 1)

    def test_bad_share_vector_rejected(self, er_cluster):
        # A malformed share vector is a programming error, not a simulated
        # OOM, so it propagates instead of becoming a failed RunResult.
        engine = MultiwayJoinEngine(shares=(2, 2))
        with pytest.raises(ValueError):
            engine.run(er_cluster.fresh_copy(), triangle())

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), machines=st.integers(2, 7))
    def test_property_triangles_random(self, seed, machines):
        g = erdos_renyi(40, 0.2, seed=seed)
        cluster = Cluster.create(g, machines)
        pattern = triangle()
        expected = oracle(cluster, pattern)
        result = MultiwayJoinEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected


class TestMultiwayCosts:
    def test_replication_grows_with_pattern_complexity(self, er_cluster):
        """The paper's criticism: complex patterns mean more duplication."""
        simple = MultiwayJoinEngine()
        simple.run(er_cluster.fresh_copy(), triangle())
        complex_ = MultiwayJoinEngine()
        complex_.run(er_cluster.fresh_copy(), named_patterns()["q8"])
        assert complex_.last_replicated_tuples > simple.last_replicated_tuples

    def test_communication_recorded(self, er_cluster):
        result = MultiwayJoinEngine().run(
            er_cluster.fresh_copy(), named_patterns()["q1"]
        )
        assert result.total_comm_bytes > 0
        assert result.makespan > 0

    def test_replication_bounded_by_shares(self, er_cluster):
        """Copies per (edge, relation) = prod of the non-edge shares."""
        engine = MultiwayJoinEngine()
        pattern = triangle()
        engine.run(er_cluster.fresh_copy(), pattern)
        shares = engine.last_shares
        total = int(np.prod(shares))
        per_edge = sum(
            2 * total // (shares[a] * shares[b]) for a, b in pattern.edges()
        )
        graph = er_cluster.graph
        assert engine.last_replicated_tuples == per_edge * graph.num_edges


class TestReducerState:
    def test_directed_lookup_both_ways(self):
        from repro.engines.multiway import _ReducerState

        state = _ReducerState()
        state.add(0, 1, 10, 20)
        assert 20 in state.adjacency[(0, 1)][10]
        assert 10 in state.adjacency[(1, 0)][20]
        assert state.tuples == 1

    def test_duplicate_tuples_kept_once_in_sets(self):
        from repro.engines.multiway import _ReducerState

        state = _ReducerState()
        state.add(0, 1, 10, 20)
        state.add(0, 1, 10, 20)
        assert state.adjacency[(0, 1)][10] == {20}
        assert state.tuples == 2  # delivery count still reflects traffic


class TestHashMixing:
    def test_mix_deterministic_and_spread(self):
        from repro.engines.multiway import _mix

        values = {_mix(v) % 2 for v in range(16)}
        assert values == {0, 1}  # both buckets hit
        assert _mix(7) == _mix(7)
