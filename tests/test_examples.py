"""Smoke tests: every example script must run cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_examples_exist():
    assert len(EXAMPLES) >= 4
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
