"""The documented top-level API surface must stay importable and usable."""

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", sorted(repro._EXPORTS))
    def test_every_export_resolves(self, name):
        value = getattr(repro, name)
        assert value is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_dir_lists_exports(self):
        listing = dir(repro)
        assert "RADSEngine" in listing
        assert "Graph" in listing

    def test_docstring_workflow(self):
        """The workflow shown in the package docstring actually runs."""
        from repro import Cluster, RADSEngine, paper_query
        from repro.graph import erdos_renyi

        graph = erdos_renyi(50, 0.1, seed=1)
        cluster = Cluster.create(graph, num_machines=3)
        result = RADSEngine().run(cluster, paper_query("q2"))
        assert not result.failed
        assert result.embedding_count >= 0

    def test_lazy_export_cached(self):
        first = repro.Pattern
        assert repro.__dict__.get("Pattern") is first
