"""Tests for the simulated cluster substrate."""

import numpy as np
import pytest

from repro.cluster import CostModel, Cluster, Machine, Network, SimulatedMemoryError
from repro.graph import erdos_renyi


@pytest.fixture()
def model():
    return CostModel()


class TestCostModel:
    def test_compute_time(self, model):
        assert model.compute_time(model.cpu_ops_per_s) == pytest.approx(1.0)

    def test_message_time_includes_latency(self, model):
        assert model.message_time(0) >= model.latency_s

    def test_embedding_bytes(self, model):
        assert model.embedding_bytes(5) == 40

    def test_adjacency_bytes(self, model):
        assert model.adjacency_bytes(10) == 88

    def test_disk_time(self, model):
        assert model.disk_time(model.disk_bandwidth_bytes_per_s) == pytest.approx(1.0)


class TestMachine:
    def test_charge_ops_advances_clock(self, model):
        m = Machine(0, model)
        m.charge_ops(model.cpu_ops_per_s)
        assert m.clock == pytest.approx(1.0)

    def test_daemon_clock_separate(self, model):
        m = Machine(0, model)
        m.charge_daemon_ops(model.cpu_ops_per_s)
        assert m.clock == 0.0
        assert m.finish_time == pytest.approx(1.0)

    def test_memory_tracking(self, model):
        m = Machine(0, model, memory_capacity=1000)
        m.allocate(600)
        m.free(200)
        assert m.memory_used == 400
        assert m.peak_memory == 600

    def test_oom(self, model):
        m = Machine(0, model, memory_capacity=1000)
        m.allocate(800)
        with pytest.raises(SimulatedMemoryError) as err:
            m.allocate(300)
        assert err.value.machine_id == 0

    def test_unlimited_memory(self, model):
        m = Machine(0, model)
        m.allocate(10**12)  # no capacity, no error
        assert m.peak_memory == 10**12

    def test_reset(self, model):
        m = Machine(0, model, memory_capacity=100)
        m.charge_ops(100)
        m.allocate(50)
        m.reset()
        assert m.clock == 0 and m.memory_used == 0 and m.peak_memory == 0


class TestNetwork:
    def test_rpc_charges_requester(self, model):
        net = Network(2, model)
        a, b = Machine(0, model), Machine(1, model)
        net.rpc(a, b, request_bytes=100, response_bytes=1000, service_ops=10)
        assert a.clock > 2 * model.latency_s
        assert b.clock == 0.0  # daemon served it
        assert b.daemon_clock > 0
        assert net.total_bytes == 1100

    def test_local_rpc_free(self, model):
        net = Network(2, model)
        a = Machine(0, model)
        net.rpc(a, a, 100, 100, service_ops=5)
        assert net.total_bytes == 0

    def test_shuffle_barrier(self, model):
        net = Network(3, model)
        machines = [Machine(i, model) for i in range(3)]
        machines[2].clock = 5.0  # the straggler
        payload = np.zeros((3, 3), dtype=np.int64)
        payload[0, 1] = 10**6
        net.shuffle(machines, payload)
        # Barrier: everyone waits for the slowest.
        assert machines[0].clock == machines[1].clock == machines[2].clock
        assert machines[0].clock >= 5.0

    def test_machine_bytes(self, model):
        net = Network(2, model)
        net.record(0, 1, 500)
        assert net.machine_bytes(0) == 500
        assert net.machine_bytes(1) == 500

    def test_broadcast(self, model):
        net = Network(3, model)
        machines = [Machine(i, model) for i in range(3)]
        net.broadcast(machines[0], machines, nbytes=8)
        assert net.messages == 2


class TestCluster:
    def test_create_partitions_graph(self):
        g = erdos_renyi(100, 0.08, seed=1)
        cluster = Cluster.create(g, 4)
        assert cluster.num_machines == 4
        assert int(cluster.owner_counts().sum()) == 100

    def test_barrier(self):
        g = erdos_renyi(50, 0.1, seed=1)
        cluster = Cluster.create(g, 3)
        cluster.machine(1).advance(7.0)
        cluster.barrier()
        assert all(m.clock == 7.0 for m in cluster.machines)

    def test_makespan_includes_daemon(self):
        g = erdos_renyi(50, 0.1, seed=1)
        cluster = Cluster.create(g, 2)
        cluster.machine(0).charge_daemon_ops(cluster.cost_model.cpu_ops_per_s)
        assert cluster.makespan() == pytest.approx(1.0)

    def test_fresh_copy_shares_partition(self):
        g = erdos_renyi(50, 0.1, seed=1)
        cluster = Cluster.create(g, 2)
        cluster.machine(0).advance(3.0)
        fresh = cluster.fresh_copy()
        assert fresh.makespan() == 0.0
        assert fresh.partition is cluster.partition

    def test_reset(self):
        g = erdos_renyi(50, 0.1, seed=1)
        cluster = Cluster.create(g, 2)
        cluster.machine(0).advance(3.0)
        cluster.network.record(0, 1, 100)
        cluster.reset()
        assert cluster.makespan() == 0.0
        assert cluster.total_comm_bytes() == 0
