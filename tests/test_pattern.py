"""Tests for query patterns and the reconstructed paper query set."""

import pytest

from repro.query import Pattern, named_patterns, paper_query, clique_query
from repro.query.patterns import PAPER_QUERIES, CLIQUE_QUERIES, running_example


class TestPattern:
    def test_basic(self):
        p = Pattern(3, [(0, 1), (1, 2)])
        assert p.num_vertices == 3
        assert p.num_edges == 2
        assert p.degree(1) == 2
        assert p.adj(0) == {1}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Pattern(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Pattern(2, [(0, 2)])

    def test_connectivity(self):
        assert Pattern(3, [(0, 1), (1, 2)]).is_connected()
        assert not Pattern(4, [(0, 1), (2, 3)]).is_connected()

    def test_span(self):
        path = Pattern(4, [(0, 1), (1, 2), (2, 3)])
        assert path.span(0) == 3
        assert path.span(1) == 2
        assert path.diameter() == 3

    def test_max_clique(self):
        assert paper_query("q2").max_clique_size() == 3
        assert clique_query("cq1").max_clique_size() == 4
        assert paper_query("q1").max_clique_size() == 2

    def test_relabel_preserves_structure(self):
        p = paper_query("q4")
        mapping = {u: (u + 1) % p.num_vertices for u in p.vertices()}
        q = p.relabel(mapping)
        assert q.num_edges == p.num_edges
        assert sorted(sorted((p.degree(u)) for u in p.vertices())) == sorted(
            sorted((q.degree(u)) for u in q.vertices())
        )

    def test_equality(self):
        a = Pattern(3, [(0, 1), (1, 2)])
        b = Pattern(3, [(1, 2), (0, 1)])
        assert a == b and hash(a) == hash(b)


class TestPaperQueries:
    """Structural constraints recovered from the paper's Sec. 7 prose."""

    def test_all_connected(self):
        for name, p in {**PAPER_QUERIES, **CLIQUE_QUERIES}.items():
            assert p.is_connected(), name

    def test_triangle_queries(self):
        # q2, q4, q5 contain a triangle; q1, q3, q6, q7, q8 are triangle-free.
        for name in ("q2", "q4", "q5"):
            assert PAPER_QUERIES[name].max_clique_size() >= 3, name
        for name in ("q1", "q3", "q6", "q7", "q8"):
            assert PAPER_QUERIES[name].max_clique_size() == 2, name

    def test_q5_extends_q4_with_end_vertex(self):
        q4, q5 = PAPER_QUERIES["q4"], PAPER_QUERIES["q5"]
        assert q5.num_vertices == q4.num_vertices + 1
        assert q5.num_edges == q4.num_edges + 1
        assert q5.degree(5) == 1  # the end vertex u5

    def test_query_sizes_grow_to_six(self):
        assert PAPER_QUERIES["q1"].num_vertices == 4
        for name in ("q5", "q6", "q7", "q8"):
            assert PAPER_QUERIES[name].num_vertices == 6

    def test_clique_queries_have_cliques(self):
        for name, p in CLIQUE_QUERIES.items():
            assert p.max_clique_size() >= 3, name

    def test_q6_q7_not_isomorphic(self):
        """Both are 6-vertex 7-edge triangle-free, but distinct graphs."""
        from repro.engines import SingleMachineEngine
        from repro.cluster import Cluster
        from repro.graph import erdos_renyi

        g = erdos_renyi(40, 0.15, seed=9)
        counts = []
        for name in ("q6", "q7"):
            cluster = Cluster.create(g, 1)
            counts.append(
                SingleMachineEngine().run(cluster, PAPER_QUERIES[name]).embedding_count
            )
        assert counts[0] != counts[1]

    def test_running_example_matches_paper(self):
        p = running_example()
        assert p.num_vertices == 10
        assert p.num_edges == 14
        # Example 4's MLST-based plans have 3 units, i.e. c_P = 3.
        from repro.query.spanning import connected_domination_number

        assert connected_domination_number(p) == 3

    def test_named_patterns_registry(self):
        reg = named_patterns()
        assert "q1" in reg and "cq4" in reg and "triangle" in reg
        assert all(p.is_connected() for p in reg.values())
