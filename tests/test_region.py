"""Tests for region grouping and memory estimation (paper Sec. 6, Alg. 3)."""

import pytest

from repro.core.embedding_trie import NODE_BYTES
from repro.core.region import MemoryEstimator, RegionGrouper
from repro.graph import erdos_renyi, grid_road_network


@pytest.fixture()
def graph():
    return grid_road_network(12, 12, extra_edge_prob=0.1, seed=3)


def make_grouper(graph, budget, seed=0, estimator=None):
    estimator = estimator or MemoryEstimator(num_unit_leaves=2)
    estimator.calibrate(trie_nodes=400, start_vertices=100)  # 4 nodes/vertex
    return RegionGrouper(graph.neighbors, estimator, budget, seed=seed)


class TestMemoryEstimator:
    def test_calibrated_estimate(self):
        est = MemoryEstimator(2)
        est.calibrate(trie_nodes=1000, start_vertices=10)
        assert est.estimate_bytes(degree=5) == 100 * NODE_BYTES

    def test_fallback_uses_degree(self):
        est = MemoryEstimator(2)
        assert est.estimate_bytes(degree=10) == 100 * NODE_BYTES

    def test_fallback_capped(self):
        est = MemoryEstimator(6)
        assert est.estimate_bytes(degree=1000) <= int(1e6) * NODE_BYTES

    def test_zero_start_vertices_ignored(self):
        est = MemoryEstimator(2)
        est.calibrate(trie_nodes=0, start_vertices=0)
        assert est.estimate_bytes(degree=3) == 9 * NODE_BYTES


class TestRegionGrouper:
    def test_groups_partition_candidates(self, graph):
        candidates = list(range(0, graph.num_vertices, 2))
        groups = make_grouper(graph, budget=50 * NODE_BYTES).groups(candidates)
        flat = sorted(v for g in groups for v in g)
        assert flat == sorted(candidates)

    def test_budget_limits_group_size(self, graph):
        candidates = list(range(60))
        # 4 nodes/vertex calibrated -> 96 bytes/vertex; budget of ~10 vertices.
        groups = make_grouper(graph, budget=40 * NODE_BYTES).groups(candidates)
        assert all(len(g) <= 10 for g in groups)
        assert len(groups) >= 6

    def test_huge_budget_single_group(self, graph):
        candidates = list(range(40))
        groups = make_grouper(graph, budget=1e12).groups(candidates)
        assert len(groups) == 1

    def test_single_vertex_groups_allowed_over_budget(self, graph):
        candidates = [0, 1]
        groups = make_grouper(graph, budget=1).groups(candidates)
        assert sorted(v for g in groups for v in g) == [0, 1]

    def test_deterministic_given_seed(self, graph):
        candidates = list(range(50))
        a = make_grouper(graph, budget=30 * NODE_BYTES, seed=5).groups(candidates)
        b = make_grouper(graph, budget=30 * NODE_BYTES, seed=5).groups(candidates)
        assert a == b

    def test_proximity_definition(self, graph):
        """Eq. 5: fraction of v's neighbours inside the group neighbourhood."""
        grouper = make_grouper(graph, budget=1e9)
        v = 13
        nbrs = {int(w) for w in graph.neighbors(v)}
        assert grouper.proximity(v, nbrs) == 1.0
        assert grouper.proximity(v, set()) == 0.0

    def test_grouping_prefers_nearby_vertices(self):
        """Two far-apart grid clusters should not interleave in one group."""
        graph = grid_road_network(20, 4, extra_edge_prob=0, seed=0)
        left = list(range(0, 8))            # west end of the strip
        right = list(range(72, 80))         # east end
        est = MemoryEstimator(2)
        est.calibrate(trie_nodes=800, start_vertices=100)  # 8 nodes/vertex
        grouper = RegionGrouper(
            graph.neighbors, est, budget_bytes=8 * 8 * NODE_BYTES, seed=1
        )
        groups = grouper.groups(left + right)
        for group in groups:
            sides = {"L" if v in left else "R" for v in group}
            # A group that spans both ends must have been forced by exhaustion.
            if len(group) > 2:
                assert len(sides) == 1


class TestRandomGroupingStrategy:
    @pytest.fixture()
    def graph(self):
        from repro.graph import erdos_renyi

        return erdos_renyi(80, 0.08, seed=13)

    def _grouper(self, graph, strategy, budget=10_000.0):
        estimator = MemoryEstimator(2)
        estimator.calibrate(trie_nodes=50, start_vertices=10)
        return RegionGrouper(
            adjacency=graph.neighbors,
            estimator=estimator,
            budget_bytes=budget,
            seed=5,
            strategy=strategy,
        )

    def test_invalid_strategy_rejected(self, graph):
        with pytest.raises(ValueError):
            self._grouper(graph, "clustered")

    def test_random_groups_still_partition(self, graph):
        candidates = list(range(0, 80, 2))
        groups = self._grouper(graph, "random").groups(candidates)
        flat = sorted(v for g in groups for v in g)
        assert flat == sorted(candidates)

    def test_random_groups_respect_budget(self, graph):
        estimator = MemoryEstimator(2)
        estimator.calibrate(trie_nodes=50, start_vertices=10)
        grouper = self._grouper(graph, "random", budget=2_000.0)
        for group in grouper.groups(list(range(40))):
            if len(group) > 1:
                cost = sum(
                    estimator.estimate_bytes(graph.degree(v)) for v in group
                )
                assert cost <= 2_000.0

    def test_random_less_cohesive_than_proximity(self, graph):
        """Random grouping scatters: group members share fewer neighbours."""

        def cohesion(groups):
            shared = 0
            pairs = 0
            for group in groups:
                for i, v in enumerate(group):
                    nv = set(int(x) for x in graph.neighbors(v))
                    for w in group[i + 1:]:
                        pairs += 1
                        if nv & set(int(x) for x in graph.neighbors(w)):
                            shared += 1
            return shared / max(1, pairs)

        candidates = list(range(80))
        proximity = self._grouper(graph, "proximity", budget=3_000.0)
        random_ = self._grouper(graph, "random", budget=3_000.0)
        assert cohesion(proximity.groups(candidates)) >= cohesion(
            random_.groups(candidates)
        )
