"""Tests for pattern generators and partition statistics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import grid_road_network, erdos_renyi
from repro.partition import GraphPartition, HashPartitioner, MetisLikePartitioner
from repro.partition.stats import partition_report, sme_share
from repro.query import paper_query
from repro.query.pattern_gen import (
    book,
    complete_bipartite,
    cycle,
    random_connected_pattern,
    wheel,
)
from repro.query.patterns import k33, square, triangle
from repro.query.isomorphism import are_isomorphic


class TestPatternGenerators:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(2, 8),
        extra=st.integers(0, 6),
        seed=st.integers(0, 1000),
    )
    def test_random_patterns_connected(self, n, extra, seed):
        p = random_connected_pattern(n, extra, seed)
        assert p.is_connected()
        assert p.num_vertices == n
        assert p.num_edges >= n - 1

    def test_random_pattern_deterministic(self):
        assert random_connected_pattern(6, 2, seed=9) == \
            random_connected_pattern(6, 2, seed=9)

    def test_cycle_matches_named(self):
        assert are_isomorphic(cycle(4), square())
        assert are_isomorphic(cycle(3), triangle())

    def test_wheel_structure(self):
        w = wheel(4)
        assert w.num_vertices == 5
        assert w.degree(0) == 4
        assert w.max_clique_size() == 3

    def test_book_pages_are_triangles(self):
        b = book(3)
        assert b.num_vertices == 5
        for v in range(2, 5):
            assert b.has_edge(0, v) and b.has_edge(1, v)

    def test_complete_bipartite_matches_k33(self):
        assert are_isomorphic(complete_bipartite(3, 3), k33())

    @pytest.mark.parametrize("factory,arg", [
        (cycle, 2), (wheel, 2), (book, 0), (random_connected_pattern, 1),
    ])
    def test_invalid_sizes_rejected(self, factory, arg):
        with pytest.raises(ValueError):
            factory(arg)

    def test_generated_patterns_enumerable(self):
        """Random patterns run through the full engine stack."""
        from repro.cluster import Cluster
        from repro.core.rads import RADSEngine
        from repro.engines import SingleMachineEngine

        graph = erdos_renyi(50, 0.15, seed=3)
        pattern = random_connected_pattern(4, 2, seed=5)
        cluster = Cluster.create(graph, 3)
        expected = set(
            SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
        )
        got = RADSEngine().run(cluster.fresh_copy(), pattern)
        assert set(got.embeddings) == expected


class TestPartitionStats:
    @pytest.fixture(scope="class")
    def grid(self):
        return grid_road_network(16, 16, extra_edge_prob=0.05, seed=5)

    def test_report_fields(self, grid):
        owner = MetisLikePartitioner(seed=0).assign(grid, 4)
        report = partition_report(GraphPartition(grid, owner))
        assert report.num_machines == 4
        assert 0 <= report.edge_cut_fraction <= 1
        assert 0 <= report.border_fraction <= 1
        assert "machines" in report.describe()

    def test_metis_beats_hash_on_every_measure(self, grid):
        metis = partition_report(
            GraphPartition(grid, MetisLikePartitioner(seed=0).assign(grid, 4))
        )
        hashed = partition_report(
            GraphPartition(grid, HashPartitioner(seed=0).assign(grid, 4))
        )
        assert metis.edge_cut < hashed.edge_cut
        assert metis.border_fraction < hashed.border_fraction
        assert metis.mean_border_distance > hashed.mean_border_distance

    def test_sme_share_higher_with_locality(self, grid):
        pattern = paper_query("q1")
        metis = sme_share(
            GraphPartition(grid, MetisLikePartitioner(seed=0).assign(grid, 4)),
            pattern,
        )
        hashed = sme_share(
            GraphPartition(grid, HashPartitioner(seed=0).assign(grid, 4)),
            pattern,
        )
        assert metis > hashed

    def test_sme_share_single_machine_is_total(self, grid):
        partition = GraphPartition(
            grid, MetisLikePartitioner().assign(grid, 1)
        )
        assert sme_share(partition, paper_query("q4")) == 1.0
