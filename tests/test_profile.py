"""Per-request resource profiling: Profiler, flame table, wire path.

PR-10 tentpole surface #1: ``profile=True`` on ``Session.run`` and on
the protocol ``submit`` measures one request's CPU/memory/GC cost and
aggregates its span tree into a flame table; socket-backed runs ship
per-task worker rusage back and the profile attributes CPU per shard.
The acceptance bound lives here: a profiled socket submit returns
per-worker CPU attribution and a flame table whose self times sum to
the root duration within 5%, with counts and stats bit-identical to an
unprofiled run.  Profiles are per-request diagnostics — cache hits and
cached copies never carry one.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.api import RunConfig
from repro.api.results import RunResult
from repro.distributed import ShardWorker
from repro.graph import erdos_renyi
from repro.obs.profile import (
    Profiler,
    current_profiler,
    flame_table,
    profile_active,
    task_rusage,
    worker_usage,
)
from repro.service import QueryServer, connect
from repro.service.client import ServiceError


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, seed=17)


def _addr(worker: ShardWorker) -> str:
    host, port = worker.address
    return f"{host}:{port}"


def _engine_stats(result):
    """Everything that must be bit-identical, service annotations aside."""
    return (
        result.failed,
        result.embedding_count,
        result.makespan,
        result.total_comm_bytes,
        result.peak_memory,
        tuple(result.per_machine_time),
        {
            name: value
            for name, value in result.counters.items()
            if not name.startswith("service.")
        },
    )


def _span(name, duration, *children):
    return {"name": name, "duration": duration, "children": list(children)}


# ----------------------------------------------------------------------
# Flame table (pure aggregation)
# ----------------------------------------------------------------------
class TestFlameTable:
    def test_empty_tree(self):
        assert flame_table(None) == []
        assert flame_table({}) == []

    def test_self_times_telescope_to_root_duration(self):
        tree = _span(
            "root", 1.0,
            _span("round", 0.3, _span("task", 0.1)),
            _span("round", 0.2),
            _span("flush", 0.05),
        )
        table = flame_table(tree)
        rows = {row["name"]: row for row in table}
        assert rows["root"] == {
            "name": "root", "count": 1, "total": 1.0,
            "self": pytest.approx(0.45),
        }
        # Same-named spans aggregate into one row.
        assert rows["round"]["count"] == 2
        assert rows["round"]["total"] == pytest.approx(0.5)
        assert rows["round"]["self"] == pytest.approx(0.4)
        assert rows["task"]["self"] == pytest.approx(0.1)
        assert sum(r["self"] for r in table) == pytest.approx(
            tree["duration"]
        )
        # Hottest self-time first, name as the tie-break.
        assert [r["name"] for r in table] == [
            "root", "round", "task", "flush",
        ]

    def test_overlapping_children_rescale_into_parent_wall_time(self):
        # Concurrent children (shard tasks under one batch) sum past
        # their parent's wall time; their self shares are rescaled to
        # divide exactly the parent's duration, so the telescoping
        # identity survives concurrency.  Totals stay unscaled.
        tree = _span("root", 0.1, _span("a", 0.08), _span("b", 0.07))
        rows = {r["name"]: r for r in flame_table(tree)}
        assert rows["root"]["self"] == 0.0
        assert rows["a"]["total"] == pytest.approx(0.08)
        assert rows["a"]["self"] == pytest.approx(0.08 * 0.1 / 0.15)
        assert rows["b"]["self"] == pytest.approx(0.07 * 0.1 / 0.15)
        assert sum(r["self"] for r in flame_table(tree)) == pytest.approx(
            tree["duration"]
        )


# ----------------------------------------------------------------------
# Profiler measurement and context propagation
# ----------------------------------------------------------------------
class TestProfiler:
    def test_measures_and_propagates(self):
        assert not profile_active()
        with Profiler() as profiler:
            assert profile_active()
            assert current_profiler() is profiler
            ballast = [bytes(1024) for _ in range(64)]  # allocate
            del ballast
        assert not profile_active()
        record = profiler.result()
        assert record["wall_seconds"] > 0
        assert record["cpu"]["process_seconds"] >= 0
        assert record["cpu"]["thread_seconds"] >= 0
        assert record["memory"]["peak_bytes"] > 0
        assert isinstance(record["memory"]["allocated_bytes"], int)
        assert set(record["gc"]) == {
            "collections", "collected", "uncollectable",
        }
        assert record["flame"] == []  # no span tree supplied
        assert record["workers"] == []

    def test_worker_usage_aggregates_by_shard_pid_mode(self):
        profiler = Profiler()
        profiler.add_worker_usage([
            {"shard": "a:1", "pid": 10, "mode": "inline",
             "utime": 0.2, "stime": 0.1, "maxrss_kb": 100},
            {"shard": "a:1", "pid": 10, "mode": "inline",
             "utime": 0.3, "stime": 0.0, "maxrss_kb": 90},
            {"shard": "b:2", "pid": 11, "mode": "pool",
             "utime": 0.1, "stime": 0.0, "maxrss_kb": 500},
        ])
        profiler.add_worker_usage(None)  # tolerated: nothing shipped
        rows = profiler.worker_rows()
        assert [r["shard"] for r in rows] == ["a:1", "b:2"]  # busiest CPU
        merged = rows[0]
        assert merged["tasks"] == 2
        assert merged["utime"] == pytest.approx(0.5)
        assert merged["stime"] == pytest.approx(0.1)
        assert merged["maxrss_kb"] == 100  # max, not sum
        assert rows[1]["mode"] == "pool"

    def test_task_rusage_row(self):
        before = task_rusage()
        sum(i * i for i in range(50_000))  # burn a little CPU
        row = worker_usage(before, shard="127.0.0.1:9001", mode="inline")
        assert row["shard"] == "127.0.0.1:9001"
        assert row["pid"] == os.getpid()
        assert row["mode"] == "inline"
        assert row["utime"] >= 0.0 and row["stime"] >= 0.0
        assert row["maxrss_kb"] > 0


# ----------------------------------------------------------------------
# Session.run(profile=True)
# ----------------------------------------------------------------------
class TestSessionProfile:
    def test_profiled_run_attaches_record(self, graph):
        session = (
            repro.open(graph).with_cluster(machines=2)
            .engine("rads").query("q1")
        )
        plain = session.run()
        profiled = session.run(profile=True)
        assert plain.profile is None
        assert profiled.embedding_count == plain.embedding_count
        assert profiled.counters == plain.counters
        profile = profiled.profile
        assert profile["wall_seconds"] > 0
        names = [row["name"] for row in profile["flame"]]
        assert "session.run" in names
        # Profiling forces an internal tracer (the flame table needs the
        # span tree) but the trace itself is only attached when asked.
        assert profiled.trace is None
        both = session.run(profile=True, trace=True)
        assert both.trace is not None and both.profile is not None

    def test_profile_round_trips_through_to_dict(self, graph):
        result = (
            repro.open(graph).with_cluster(machines=2)
            .engine("seed").query("q3").run(profile=True)
        )
        clone = RunResult.from_dict(result.to_dict())
        assert clone.profile == result.profile
        # Unprofiled records simply omit the key.
        assert "profile" not in (
            repro.open(graph).with_cluster(machines=2)
            .engine("seed").query("q3").run()
        ).to_dict()


# ----------------------------------------------------------------------
# The acceptance path: profiled submit over the socket backend
# ----------------------------------------------------------------------
class TestDistributedProfile:
    @pytest.fixture(scope="class")
    def shard_pair(self):
        workers = [ShardWorker().start(), ShardWorker().start()]
        yield workers
        for worker in workers:
            worker.close()

    @pytest.fixture(scope="class")
    def server(self, graph, shard_pair):
        config = RunConfig(
            machines=3,
            backend="socket",
            shards=[_addr(w) for w in shard_pair],
        )
        with QueryServer(graph, config, threads=2, cache=True) as server:
            yield server

    def test_profiled_submit_attributes_workers_and_telescopes(
        self, server, shard_pair
    ):
        with connect(server.address, timeout=60) as client:
            # Profiled first (cold, executes); the plain repeat is a
            # cache hit served from the same enumeration.
            profiled = client.submit("q2", engine="rads", profile=True)
            plain = client.submit("q2", engine="rads")

        # Bit-parity: profiles observe, never perturb — and the cached
        # copy the repeat was served from was stripped of the profile.
        assert _engine_stats(profiled) == _engine_stats(plain)
        assert plain.profile is None

        profile = profiled.profile
        assert profile["wall_seconds"] > 0

        # Per-worker CPU attribution: every task's rusage row shipped
        # back and aggregated per shard address.
        shard_addrs = {_addr(w) for w in shard_pair}
        workers = profile["workers"]
        assert workers
        assert {row["shard"] for row in workers} <= shard_addrs
        for row in workers:
            assert row["tasks"] >= 1
            assert row["utime"] >= 0.0 and row["stime"] >= 0.0
            assert row["pid"] > 0
            assert row["mode"] in ("inline", "pool")
        # Busiest-first ordering.
        cpu = [row["utime"] + row["stime"] for row in workers]
        assert cpu == sorted(cpu, reverse=True)

        # The flame table covers the whole request: self times telescope
        # to the root span's duration within the 5% acceptance bound.
        rows = {row["name"]: row for row in profile["flame"]}
        assert rows["service.execute"]["count"] == 1
        assert "worker.task" in rows
        root = rows["service.execute"]["total"]
        self_sum = sum(row["self"] for row in profile["flame"])
        assert self_sum == pytest.approx(root, rel=0.05)

    def test_cache_hit_fast_path_has_no_profile(self, server):
        with connect(server.address, timeout=60) as client:
            client.submit("q1", engine="rads")
            again = client.submit("q1", engine="rads", profile=True)
        # Served from the result cache without executing: nothing ran,
        # so there is nothing to profile (and the payload stays
        # byte-stable).
        assert again.counters["service.cache_hit"] == 1
        assert again.profile is None

    def test_profile_field_is_validated(self, server):
        with connect(server.address, timeout=60) as client:
            with pytest.raises(ServiceError, match="profile"):
                client._call(
                    "submit", query="q1", engine="rads", profile="yes"
                )
