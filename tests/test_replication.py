"""Tests for the Fan et al. d-hop replication engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.engines import ReplicationEngine, SingleMachineEngine
from repro.graph import erdos_renyi, grid_road_network, powerlaw_cluster
from repro.query import named_patterns
from repro.query.patterns import path, triangle


def oracle(cluster, pattern):
    return set(
        SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
    )


class TestReplicationCorrectness:
    @pytest.mark.parametrize(
        "qname", ["q1", "q2", "q3", "q4", "q6", "q7", "q8", "cq1", "cq3"]
    )
    def test_agrees_with_oracle_on_er(self, er_cluster, qname):
        pattern = named_patterns()[qname]
        expected = oracle(er_cluster, pattern)
        result = ReplicationEngine().run(er_cluster.fresh_copy(), pattern)
        assert not result.failed
        assert set(result.embeddings) == expected
        assert result.embedding_count == len(expected)

    def test_grid_graph(self, grid_cluster):
        pattern = named_patterns()["q1"]
        expected = oracle(grid_cluster, pattern)
        result = ReplicationEngine().run(grid_cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected

    def test_counting_mode_matches(self, er_cluster):
        pattern = named_patterns()["q2"]
        collected = ReplicationEngine().run(er_cluster.fresh_copy(), pattern)
        counted = ReplicationEngine().run(
            er_cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        assert counted.embedding_count == collected.embedding_count

    def test_single_machine_no_replication(self, er_graph):
        cluster = Cluster.create(er_graph, 1)
        engine = ReplicationEngine()
        result = engine.run(cluster.fresh_copy(), triangle())
        assert engine.last_replicated_vertices == 0
        assert result.total_comm_bytes == 0
        assert set(result.embeddings) == oracle(cluster, triangle())

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), machines=st.integers(2, 6))
    def test_property_random_graphs(self, seed, machines):
        g = erdos_renyi(35, 0.18, seed=seed)
        cluster = Cluster.create(g, machines)
        pattern = named_patterns()["q2"]
        expected = oracle(cluster, pattern)
        result = ReplicationEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected


class TestReplicationVolume:
    def test_small_diameter_graph_replicates_heavily(self):
        """The paper: on small-diameter (social) graphs with a wide query,
        "the entire partition of the neighboring machine may have to be
        fetched"."""
        g = powerlaw_cluster(150, 4, seed=7)
        cluster = Cluster.create(g, 4)
        wide = path(4)  # diameter 3
        engine = ReplicationEngine()
        engine.run(cluster.fresh_copy(), wide)
        foreign_totals = [
            g.num_vertices - len(cluster.partition.machine(t).owned_vertices)
            for t in range(4)
        ]
        # Heavy replication: a large share of all foreign vertices is
        # copied somewhere.
        assert engine.last_replicated_vertices > 0.5 * sum(foreign_totals)

    def test_radius_grows_replication(self, er_cluster):
        narrow = ReplicationEngine(hop_override=1)
        narrow.run(er_cluster.fresh_copy(), triangle())
        wide = ReplicationEngine(hop_override=3)
        wide.run(er_cluster.fresh_copy(), triangle())
        assert wide.last_replicated_vertices >= narrow.last_replicated_vertices
        assert wide.last_replicated_bytes >= narrow.last_replicated_bytes

    def test_road_network_replicates_lightly(self):
        """Huge-diameter graphs keep the d-hop ball thin."""
        g = grid_road_network(20, 20, extra_edge_prob=0.05, seed=2)
        cluster = Cluster.create(g, 4)
        engine = ReplicationEngine()
        engine.run(cluster.fresh_copy(), triangle())
        assert engine.last_replicated_vertices < 0.5 * g.num_vertices

    def test_memory_charged_for_replicas(self, er_cluster):
        engine = ReplicationEngine()
        result = engine.run(er_cluster.fresh_copy(), named_patterns()["q3"])
        assert engine.last_replicated_bytes > 0
        assert result.peak_memory >= engine.last_replicated_bytes / er_cluster.num_machines
