"""End-to-end tests for the RADS engine (correctness + robustness)."""

import pytest

from repro.cluster import Cluster
from repro.core.rads import RADSEngine
from repro.engines import SingleMachineEngine
from repro.query import named_patterns, paper_query, random_star_plan


QUERIES = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "cq1", "cq3"]


def truth_set(cluster, pattern):
    return set(
        SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
    )


class TestCorrectness:
    @pytest.mark.parametrize("qname", QUERIES)
    def test_matches_ground_truth_er(self, er_cluster, qname):
        pattern = named_patterns()[qname]
        expected = truth_set(er_cluster, pattern)
        result = RADSEngine().run(er_cluster.fresh_copy(), pattern)
        assert not result.failed
        assert set(result.embeddings) == expected
        assert len(result.embeddings) == len(expected)  # no duplicates

    @pytest.mark.parametrize("qname", ["q1", "q4", "q5", "q8"])
    def test_matches_ground_truth_grid(self, grid_cluster, qname):
        pattern = named_patterns()[qname]
        expected = truth_set(grid_cluster, pattern)
        result = RADSEngine().run(grid_cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected

    def test_single_machine_cluster(self, er_graph):
        cluster = Cluster.create(er_graph, 1)
        pattern = paper_query("q4")
        expected = truth_set(cluster, pattern)
        result = RADSEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected
        assert result.total_comm_bytes == 0

    def test_many_machines(self, er_graph):
        cluster = Cluster.create(er_graph, 8)
        pattern = paper_query("q2")
        expected = truth_set(cluster, pattern)
        result = RADSEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected

    def test_count_only_mode(self, er_cluster):
        pattern = paper_query("q4")
        expected = truth_set(er_cluster, pattern)
        result = RADSEngine().run(
            er_cluster.fresh_copy(), pattern, collect_embeddings=False
        )
        assert result.embeddings is None
        assert result.embedding_count == len(expected)


class TestConfigurations:
    def test_without_sme(self, grid_cluster):
        pattern = paper_query("q1")
        expected = truth_set(grid_cluster, pattern)
        result = RADSEngine(enable_sme=False).run(
            grid_cluster.fresh_copy(), pattern
        )
        assert set(result.embeddings) == expected

    def test_without_work_stealing(self, er_cluster):
        pattern = paper_query("q4")
        expected = truth_set(er_cluster, pattern)
        result = RADSEngine(enable_work_stealing=False).run(
            er_cluster.fresh_copy(), pattern
        )
        assert set(result.embeddings) == expected

    def test_custom_plan_provider(self, er_cluster):
        pattern = paper_query("q5")
        expected = truth_set(er_cluster, pattern)
        provider = lambda p: random_star_plan(p, seed=3)
        result = RADSEngine(plan_provider=provider).run(
            er_cluster.fresh_copy(), pattern
        )
        assert set(result.embeddings) == expected

    def test_sme_dominates_on_grid(self, grid_graph):
        """On road-like graphs most of the work happens in SM-E, so the
        distributed phase exchanges very little (paper Exp-1)."""
        cluster = Cluster.create(grid_graph, 4)
        result = RADSEngine().run(cluster, paper_query("q1"))
        # A couple of fetch/verify batches at most.
        assert result.total_comm_bytes < 200_000


class TestRobustness:
    def test_survives_tight_memory(self, powerlaw_graph):
        """Region groups keep RADS alive under a cap that is generous enough
        for single groups but too small for one-shot processing."""
        pattern = paper_query("q4")
        loose = Cluster.create(powerlaw_graph, 4)
        expected = truth_set(loose, pattern)
        tight = Cluster(
            loose.partition, loose.cost_model, memory_capacity=1024 * 1024
        )
        result = RADSEngine().run(tight, pattern)
        assert not result.failed
        assert set(result.embeddings) == expected
        assert result.peak_memory <= 1024 * 1024

    def test_more_groups_under_smaller_budget(self, powerlaw_graph):
        pattern = paper_query("q4")
        runs = {}
        for cap in (1024 * 1024, 16 * 1024 * 1024):
            cluster = Cluster.create(powerlaw_graph, 4)
            cluster.memory_capacity = cap
            for m in cluster.machines:
                m.memory_capacity = cap
            engine = RADSEngine()
            result = engine.run(cluster, pattern, collect_embeddings=False)
            assert not result.failed
            runs[cap] = result.peak_memory
        assert runs[1024 * 1024] <= runs[16 * 1024 * 1024]


class TestAsynchrony:
    def test_no_barriers_in_rads(self, er_cluster):
        """Machines finish at different times (no lock-step clocks)."""
        result = RADSEngine().run(er_cluster.fresh_copy(), paper_query("q5"))
        times = [t for t in result.per_machine_time if t > 0]
        assert len(set(times)) > 1

    def test_stealing_reduces_makespan_on_skew(self, powerlaw_graph):
        """With hubs concentrated on few machines, stealing helps."""
        pattern = paper_query("q2")
        base = Cluster.create(powerlaw_graph, 4)
        with_steal = RADSEngine(enable_work_stealing=True).run(
            base.fresh_copy(), pattern, collect_embeddings=False
        )
        without = RADSEngine(enable_work_stealing=False).run(
            base.fresh_copy(), pattern, collect_embeddings=False
        )
        assert with_steal.makespan <= without.makespan * 1.05


class TestRunCounters:
    def test_sme_embeddings_counter_surfaces(self, grid_cluster):
        from repro.query import named_patterns

        result = RADSEngine().run(
            grid_cluster.fresh_copy(), named_patterns()["q1"],
            collect_embeddings=False,
        )
        # On the grid graph most interior candidates qualify for SM-E.
        assert result.counters.get("sme_embeddings", 0) > 0

    def test_grouping_strategy_does_not_change_results(self, er_cluster):
        from repro.query import named_patterns

        pattern = named_patterns()["q2"]
        proximity = RADSEngine(grouping="proximity").run(
            er_cluster.fresh_copy(), pattern
        )
        random_ = RADSEngine(grouping="random").run(
            er_cluster.fresh_copy(), pattern
        )
        assert set(proximity.embeddings) == set(random_.embeddings)

    def test_unknown_grouping_rejected(self, er_cluster):
        from repro.query import named_patterns

        with pytest.raises(ValueError):
            RADSEngine(grouping="zigzag").run(
                er_cluster.fresh_copy(), named_patterns()["q2"]
            )
