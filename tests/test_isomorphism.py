"""Tests for pattern isomorphism checking."""


from repro.query import Pattern
from repro.query.isomorphism import are_isomorphic, find_isomorphism
from repro.query.patterns import (
    PAPER_QUERIES,
    domino,
    k33,
    square,
    theta_graph,
    triangle,
)


class TestIsomorphism:
    def test_identity(self):
        for p in PAPER_QUERIES.values():
            assert are_isomorphic(p, p)

    def test_relabelled_square(self):
        relabelled = Pattern(4, [(2, 3), (3, 0), (0, 1), (1, 2)])
        assert are_isomorphic(square(), relabelled)

    def test_mapping_is_valid(self):
        shifted = square().relabel({0: 1, 1: 2, 2: 3, 3: 0})
        mapping = find_isomorphism(square(), shifted)
        assert mapping is not None
        for u, v in square().edges():
            assert shifted.has_edge(mapping[u], mapping[v])

    def test_q6_not_isomorphic_to_q7(self):
        """The regression that motivated the theta-graph q6: both are
        6-vertex 7-edge triangle-free graphs with equal degree sequences."""
        assert not are_isomorphic(theta_graph(), domino())

    def test_different_sizes(self):
        assert not are_isomorphic(triangle(), square())

    def test_same_counts_different_structure(self):
        path_like = Pattern(4, [(0, 1), (1, 2), (2, 3)])
        star_like = Pattern(4, [(0, 1), (0, 2), (0, 3)])
        assert not are_isomorphic(path_like, star_like)

    def test_k33_self(self):
        flipped = k33().relabel({0: 3, 1: 4, 2: 5, 3: 0, 4: 1, 5: 2})
        assert are_isomorphic(k33(), flipped)

    def test_all_paper_queries_pairwise_distinct(self):
        names = sorted(PAPER_QUERIES)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                assert not are_isomorphic(
                    PAPER_QUERIES[a], PAPER_QUERIES[b]
                ), (a, b)
