"""Tests for the generic backtracking enumerator (ground truth oracle)."""

from itertools import permutations

import pytest
from hypothesis import given, settings, strategies as st

from repro.enumeration import (
    BacktrackingEnumerator,
    EnumerationStats,
    compute_matching_order,
    enumerate_embeddings,
)
from repro.graph import Graph, erdos_renyi, triangle_count
from repro.query import Pattern, symmetry_breaking_constraints
from repro.query.patterns import PAPER_QUERIES, square, triangle


def brute_force(graph: Graph, pattern: Pattern) -> set[tuple[int, ...]]:
    """All embeddings by checking every injective vertex assignment."""
    result = set()
    for perm in permutations(range(graph.num_vertices), pattern.num_vertices):
        if all(graph.has_edge(perm[u], perm[v]) for u, v in pattern.edges()):
            result.add(perm)
    return result


class TestMatchingOrderHeuristic:
    def test_order_is_permutation(self):
        for p in PAPER_QUERIES.values():
            order = compute_matching_order(p)
            assert sorted(order) == list(p.vertices())

    def test_order_connectivity(self):
        for p in PAPER_QUERIES.values():
            order = compute_matching_order(p)
            for i in range(1, len(order)):
                assert p.adj(order[i]) & set(order[:i])

    def test_explicit_start(self):
        order = compute_matching_order(PAPER_QUERIES["q1"], start=3)
        assert order[0] == 3


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("pattern", [triangle(), square()])
    def test_small_graphs(self, pattern, seed):
        graph = erdos_renyi(9, 0.4, seed=seed)
        expected = brute_force(graph, pattern)
        got = enumerate_embeddings(
            graph.neighbors, graph.vertices(), pattern
        )
        assert set(got) == expected
        assert len(got) == len(expected)

    def test_triangle_count_matches(self):
        graph = erdos_renyi(50, 0.15, seed=3)
        cons = symmetry_breaking_constraints(triangle())
        got = enumerate_embeddings(
            graph.neighbors, graph.vertices(), triangle(), cons
        )
        assert len(got) == triangle_count(graph)


class TestEnumeratorFeatures:
    @pytest.fixture()
    def graph(self):
        return erdos_renyi(40, 0.15, seed=4)

    def test_allowed_predicate(self, graph):
        allowed = set(range(20))
        got = enumerate_embeddings(
            graph.neighbors, graph.vertices(), triangle(),
            allowed=lambda v: v in allowed,
        )
        for emb in got:
            assert set(emb) <= allowed

    def test_limit(self, graph):
        got = enumerate_embeddings(
            graph.neighbors, graph.vertices(), triangle(), limit=5
        )
        assert len(got) == 5

    def test_start_candidates_restrict_first_vertex(self, graph):
        pattern = triangle()
        order = compute_matching_order(pattern)
        got = enumerate_embeddings(
            graph.neighbors, [0, 1, 2], pattern, order=order
        )
        for emb in got:
            assert emb[order[0]] in {0, 1, 2}

    def test_stats_populated(self, graph):
        stats = EnumerationStats()
        enumerate_embeddings(
            graph.neighbors, graph.vertices(), square(), stats=stats
        )
        assert stats.total_ops > 0
        assert stats.embeddings > 0

    def test_bad_order_rejected(self, graph):
        with pytest.raises(ValueError):
            BacktrackingEnumerator(
                pattern=square(), adjacency=graph.neighbors, order=[0, 1]
            )

    def test_injectivity(self, graph):
        for emb in enumerate_embeddings(
            graph.neighbors, graph.vertices(), square()
        ):
            assert len(set(emb)) == len(emb)


class TestHypothesisInvariants:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100), prob=st.floats(0.05, 0.3))
    def test_embeddings_are_valid(self, seed, prob):
        graph = erdos_renyi(20, prob, seed=seed)
        pattern = PAPER_QUERIES["q2"]
        for emb in enumerate_embeddings(
            graph.neighbors, graph.vertices(), pattern
        ):
            assert len(set(emb)) == pattern.num_vertices
            for u, v in pattern.edges():
                assert graph.has_edge(emb[u], emb[v])
