"""Straggler (heterogeneous CPU) simulation tests.

The paper motivates asynchrony with the synchronisation-delay argument:
synchronous systems run at the pace of the slowest machine.  These tests
check the simulator's speed-factor plumbing and that the asynchronous RADS
degrades more gracefully than the barrier-synchronised engines when one
machine is slowed down.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.costmodel import CostModel
from repro.cluster.machine import Machine
from repro.core.rads import RADSEngine
from repro.engines import SEEDEngine, SingleMachineEngine, TwinTwigEngine
from repro.graph import community_graph
from repro.query import named_patterns


class TestSpeedFactorPlumbing:
    def test_charge_ops_scales_with_speed(self):
        model = CostModel()
        fast = Machine(0, model, speed_factor=2.0)
        slow = Machine(1, model, speed_factor=0.5)
        fast.charge_ops(1000)
        slow.charge_ops(1000)
        assert slow.clock == pytest.approx(4 * fast.clock)

    def test_daemon_clock_scales_too(self):
        model = CostModel()
        slow = Machine(0, model, speed_factor=0.25)
        ref = Machine(1, model)
        slow.charge_daemon_ops(500)
        ref.charge_daemon_ops(500)
        assert slow.daemon_clock == pytest.approx(4 * ref.daemon_clock)

    def test_invalid_speed_factor(self):
        with pytest.raises(ValueError):
            Machine(0, CostModel(), speed_factor=0.0)

    def test_cluster_setter_and_fresh_copy(self, er_graph):
        cluster = Cluster.create(er_graph, 4)
        cluster.set_speed_factor(2, 0.125)
        copy = cluster.fresh_copy()
        assert copy.machine(2).speed_factor == 0.125
        assert copy.machine(0).speed_factor == 1.0
        with pytest.raises(ValueError):
            cluster.set_speed_factor(0, -1.0)

    def test_reset_preserves_speed(self, er_graph):
        cluster = Cluster.create(er_graph, 3)
        cluster.set_speed_factor(1, 0.5)
        cluster.machine(1).charge_ops(100)
        cluster.reset()
        assert cluster.machine(1).speed_factor == 0.5
        assert cluster.machine(1).clock == 0.0

    def test_rpc_service_uses_responder_speed(self, er_graph):
        cluster = Cluster.create(er_graph, 2)
        baseline = cluster.fresh_copy()
        baseline.network.rpc(
            baseline.machine(0), baseline.machine(1),
            request_bytes=8, response_bytes=8, service_ops=1_000_000,
        )
        slowed = cluster.fresh_copy()
        slowed.set_speed_factor(1, 0.5)
        slowed.network.rpc(
            slowed.machine(0), slowed.machine(1),
            request_bytes=8, response_bytes=8, service_ops=1_000_000,
        )
        assert slowed.machine(0).clock > baseline.machine(0).clock


class TestStragglerDegradation:
    @pytest.fixture(scope="class")
    def dense_cluster(self):
        graph = community_graph(10, 12, intra_prob=0.5, inter_edges=3, seed=11)
        return Cluster.create(graph, 4)

    def _makespan(self, engine, cluster, pattern, slowdown):
        run_cluster = cluster.fresh_copy()
        if slowdown != 1.0:
            run_cluster.set_speed_factor(0, 1.0 / slowdown)
        result = engine.run(run_cluster, pattern, collect_embeddings=False)
        assert not result.failed
        return result.makespan

    def test_results_unchanged_by_straggler(self, dense_cluster):
        pattern = named_patterns()["q2"]
        expected = set(
            SingleMachineEngine()
            .run(dense_cluster.fresh_copy(), pattern)
            .embeddings
        )
        slowed = dense_cluster.fresh_copy()
        slowed.set_speed_factor(0, 0.125)
        result = RADSEngine().run(slowed, pattern)
        assert set(result.embeddings) == expected

    def test_async_degrades_less_than_sync(self, dense_cluster):
        """RADS (asynchronous, work stealing) absorbs a straggler better
        than the barrier-synchronised join engines: it stays fastest and
        pays the smallest absolute penalty."""
        pattern = named_patterns()["q4"]
        slowdown = 8.0
        makespans = {}
        penalties = {}
        for engine in (RADSEngine(), SEEDEngine(), TwinTwigEngine()):
            base = self._makespan(engine, dense_cluster, pattern, 1.0)
            slow = self._makespan(engine, dense_cluster, pattern, slowdown)
            makespans[engine.name] = slow
            penalties[engine.name] = slow - base
        assert makespans["RADS"] < makespans["SEED"]
        assert makespans["RADS"] < makespans["TwinTwig"]
        assert penalties["RADS"] < penalties["SEED"]
        assert penalties["RADS"] < penalties["TwinTwig"]

    def test_work_stealing_helps_under_straggler(self, dense_cluster):
        pattern = named_patterns()["q4"]
        with_stealing = RADSEngine(enable_work_stealing=True)
        without = RADSEngine(enable_work_stealing=False)
        slow_with = self._makespan(with_stealing, dense_cluster, pattern, 8.0)
        slow_without = self._makespan(without, dense_cluster, pattern, 8.0)
        assert slow_with <= slow_without
