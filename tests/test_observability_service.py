"""End-to-end tracing and the live metrics pipeline through the service.

The PR-9 acceptance path: a traced ``submit`` against a socket-backed
``QueryServer`` must come back as ONE connected span tree whose leaf
spans were emitted on the shard workers (parented across the wire), the
per-round engine spans must account for the root duration, and the
traced run's counts and stats must be bit-identical to an untraced run.
Plus the surfaces: ``metrics`` op histograms with percentiles after a
burst, Prometheus-style text exposition, request-log wall-clock ``ts``
stamps (and :func:`read_records_jsonl` accepting logs without them).
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.api import RunConfig
from repro.api.results import (
    RunResult,
    append_record_jsonl,
    read_records_jsonl,
)
from repro.distributed import ShardWorker
from repro.graph import erdos_renyi
from repro.obs.trace import span_names
from repro.service import QueryServer, connect, protocol


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, seed=17)


def _addr(worker: ShardWorker) -> str:
    host, port = worker.address
    return f"{host}:{port}"


def _walk(tree):
    yield tree
    for child in tree["children"]:
        yield from _walk(child)


def _engine_stats(result):
    """Everything that must be bit-identical, service annotations aside."""
    return (
        result.failed,
        result.embedding_count,
        result.makespan,
        result.total_comm_bytes,
        result.peak_memory,
        tuple(result.per_machine_time),
        {
            name: value
            for name, value in result.counters.items()
            if not name.startswith("service.")
        },
    )


# ----------------------------------------------------------------------
# One connected tree across the wire (socket backend)
# ----------------------------------------------------------------------
class TestDistributedTrace:
    @pytest.fixture(scope="class")
    def shard_pair(self):
        workers = [ShardWorker().start(), ShardWorker().start()]
        yield workers
        for worker in workers:
            worker.close()

    @pytest.fixture(scope="class")
    def server(self, graph, shard_pair):
        config = RunConfig(
            machines=3,
            backend="socket",
            shards=[_addr(w) for w in shard_pair],
        )
        with QueryServer(graph, config, threads=2, cache=True) as server:
            yield server

    def test_traced_submit_returns_one_connected_tree(
        self, graph, server, shard_pair
    ):
        with connect(server.address, timeout=60) as client:
            # Traced first (cold, executes); the untraced repeat is a
            # cache hit served from the same enumeration.
            traced = client.submit("q2", engine="rads", trace=True)
            untraced = client.submit("q2", engine="rads")
        # Bit-parity: spans observe, never perturb.  Only the service
        # tier's cache-disposition annotations may differ.
        assert untraced.trace is None
        assert _engine_stats(traced) == _engine_stats(untraced)

        tree = traced.trace
        assert tree is not None
        assert tree["name"] == "service.execute"
        names = list(span_names(tree))
        assert any(name.startswith("round.") for name in names)
        assert "worker.task" in names

        # One connected tree: every span's parent is in the same tree
        # and shares the trace id, including the shard-emitted leaves.
        nodes = {node["span_id"]: node for node in _walk(tree)}
        shard_addrs = {_addr(w) for w in shard_pair}
        leaf_shards = set()
        for node in nodes.values():
            assert node["trace_id"] == tree["trace_id"]
            if node is not tree:
                assert node["parent"] in nodes
            if node["name"] == "worker.task":
                # Emitted on the worker, parented under this process's
                # batch span across the wire.
                assert nodes[node["parent"]]["name"] == "executor.batch"
                leaf_shards.add(node["attributes"]["shard"])
        assert leaf_shards <= shard_addrs
        assert leaf_shards, "no shard-emitted leaf spans came back"

        # Per-round engine spans account for (almost all of) the root.
        rounds = [n for n in tree["children"]
                  if n["name"].startswith("round.")]
        assert rounds
        assert sum(r["duration"] for r in rounds) <= tree["duration"]

    def test_cache_hit_fast_path_has_no_trace(self, server):
        with connect(server.address, timeout=60) as client:
            client.submit("q1", engine="rads")
            again = client.submit("q1", engine="rads", trace=True)
        # Served from the result cache without executing: nothing ran,
        # so there is no span tree (and the payload stays byte-stable).
        assert again.counters["service.cache_hit"] == 1
        assert again.trace is None

    def test_trace_round_trips_through_to_dict(self, server):
        with connect(server.address, timeout=60) as client:
            traced = client.submit("q3", engine="seed", trace=True)
        assert traced.trace is not None
        clone = RunResult.from_dict(traced.to_dict())
        assert clone.trace == traced.trace
        # And untraced records simply omit the key.
        untraced_dict = RunResult.from_dict(
            {**traced.to_dict()}
        ).to_dict()
        untraced_dict.pop("trace")
        assert "trace" not in RunResult.from_dict(untraced_dict).to_dict()


# ----------------------------------------------------------------------
# Metrics pipeline: histograms, slow queries, text exposition
# ----------------------------------------------------------------------
class TestMetricsPipeline:
    @pytest.fixture(scope="class")
    def server(self, graph):
        with QueryServer(
            graph, RunConfig(machines=3), threads=2, cache=True
        ) as server:
            yield server

    def test_histograms_report_percentiles_after_a_burst(self, server):
        with connect(server.address, timeout=60) as client:
            for name in ("q1", "q2", "q1", "q2", "q1"):
                client.submit(name, engine="rads")
            metrics = client.metrics()
        latency = metrics["histograms"]["latency"]
        assert latency["count"] >= 5
        assert latency["max"] > 0.0
        assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        queue_wait = metrics["histograms"]["queue_wait"]
        assert queue_wait["count"] >= 1
        cache_lookup = metrics["histograms"]["cache_lookup"]
        assert cache_lookup["count"] >= 1
        slow = metrics["slow_queries"]
        assert slow and slow[0]["duration"] >= slow[-1]["duration"]
        assert {"pattern", "engine", "duration"} <= set(slow[0])

    def test_text_exposition_over_the_wire(self, server):
        with connect(server.address, timeout=60) as client:
            client.submit("q1", engine="rads")
            text = client.metrics(format="text")
        assert isinstance(text, str)
        lines = text.splitlines()
        assert any(
            line.startswith("repro_histograms_latency_seconds_bucket")
            for line in lines
        )
        assert any(
            line.startswith("repro_histograms_latency_seconds_count")
            for line in lines
        )
        # Every sample line carries the family prefix.
        assert all(
            line.startswith(("repro_", "#")) for line in lines if line
        )

    def test_invalid_format_names_the_field(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            protocol.read_message(stream)  # hello
            protocol.write_message(
                stream, {"op": "metrics", "id": 1, "format": "xml"}
            )
            response = protocol.read_message(stream)
            assert response["ok"] is False
            assert "'format'" in response["error"]

    def test_invalid_trace_flag_names_the_field(self, server):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            protocol.read_message(stream)  # hello
            protocol.write_message(
                stream,
                {"op": "submit", "id": 1, "query": "q1", "trace": "yes"},
            )
            response = protocol.read_message(stream)
            assert response["ok"] is False
            assert "'trace'" in response["error"]


# ----------------------------------------------------------------------
# Request log: wall-clock ts (satellite)
# ----------------------------------------------------------------------
class TestRequestLogTimestamps:
    def test_log_records_carry_ts_and_replay(self, graph, tmp_path):
        log_path = tmp_path / "requests.jsonl"
        with QueryServer(
            graph, RunConfig(machines=3), threads=1,
            log_path=str(log_path),
        ) as server:
            with connect(server.address, timeout=60) as client:
                before = time.time()
                result = client.submit("q1", engine="rads")
                after = time.time()
        records = read_records_jsonl(log_path)
        assert records
        replayed = records[-1]
        assert isinstance(replayed, RunResult)
        assert replayed.embedding_count == result.embedding_count

        # The raw line carries the wall-clock stamp the replay ignores.
        raw = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert all("ts" in entry for entry in raw)
        assert before <= raw[-1]["ts"] <= after

    def test_reader_accepts_logs_without_ts(self, tmp_path):
        """Pre-PR-9 logs (no ``ts``) replay unchanged."""
        legacy = tmp_path / "legacy.jsonl"
        result = RunResult(
            engine="rads", pattern_name="q1", embedding_count=7,
            makespan=1.0, total_comm_bytes=0, peak_memory=0,
            per_machine_time=[1.0],
        )
        append_record_jsonl(result.to_dict(), legacy)
        stamped = dict(result.to_dict())
        stamped["ts"] = 1700000000.0
        append_record_jsonl(stamped, legacy)
        old, new = read_records_jsonl(legacy)
        assert isinstance(old, RunResult) and isinstance(new, RunResult)
        assert old.embedding_count == new.embedding_count == 7
