"""Tests for the command-line interface."""

import pytest

from repro.cli import load_graph, main, save_graph
from repro.graph import erdos_renyi


@pytest.fixture()
def graph_file(tmp_path):
    graph = erdos_renyi(60, 0.12, seed=17)
    path = tmp_path / "g.npz"
    save_graph(graph, str(path))
    return str(path), graph


class TestIO:
    @pytest.mark.parametrize("ext", ["npz", "edges", "adj"])
    def test_roundtrip_each_format(self, tmp_path, ext):
        graph = erdos_renyi(40, 0.15, seed=18)
        path = str(tmp_path / f"g.{ext}")
        save_graph(graph, path)
        assert load_graph(path) == graph

    def test_unknown_format(self, tmp_path):
        with pytest.raises(SystemExit):
            load_graph(str(tmp_path / "g.xyz"))


class TestCommands:
    def test_generate(self, tmp_path, capsys):
        out = str(tmp_path / "road.npz")
        assert main([
            "generate", "--dataset", "roadnet", "--scale", "0.1",
            "--out", out,
        ]) == 0
        assert "roadnet" in capsys.readouterr().out
        assert load_graph(out).num_vertices > 0

    def test_enumerate(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "q2",
            "--engine", "RADS", "--machines", "3", "--show", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "RADS" in out and "emb=" in out

    def test_enumerate_all_engines_agree(self, graph_file, capsys):
        path, _ = graph_file
        counts = set()
        for engine in ("RADS", "PSgL", "Single"):
            main([
                "enumerate", "--graph", path, "--query", "triangle",
                "--engine", engine, "--machines", "2",
            ])
            out = capsys.readouterr().out
            counts.add(out.split("emb=")[1].split()[0])
        assert len(counts) == 1

    def test_memory_mb_zero_means_unlimited(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "q2",
            "--engine", "rads", "--machines", "3", "--memory-mb", "0",
        ]) == 0
        assert "emb=" in capsys.readouterr().out

    def test_bad_config_is_clean_error(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit) as excinfo:
            main([
                "enumerate", "--graph", path, "--query", "q2",
                "--engine", "rads", "--machines", "0",
            ])
        assert "machines" in str(excinfo.value)

    def test_enumerate_oom_exit_code(self, tmp_path, capsys):
        dense = erdos_renyi(120, 0.25, seed=19)
        path = str(tmp_path / "dense.npz")
        save_graph(dense, path)
        code = main([
            "enumerate", "--graph", path, "--query", "q5",
            "--engine", "TwinTwig", "--machines", "3", "--memory-mb", "1",
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_bad_query(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main(["enumerate", "--graph", path, "--query", "nope"])

    def test_bad_engine(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main([
                "enumerate", "--graph", path, "--query", "q1",
                "--engine", "nope",
            ])

    def test_plan(self, capsys):
        assert main(["plan", "--query", "q5"]) == 0
        out = capsys.readouterr().out
        assert "matching order" in out
        assert "round 0" in out

    def test_plan_with_graph(self, graph_file, capsys):
        path, _ = graph_file
        assert main(["plan", "--query", "q4", "--graph", path]) == 0
        assert "expansion" in capsys.readouterr().out

    def test_profile(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["profile", "--graph", path]) == 0
        out = capsys.readouterr().out
        assert f"vertices: {graph.num_vertices}" in out
        assert "triangles:" in out

    def test_enumerate_extension_engines(self, graph_file, capsys):
        path, _ = graph_file
        counts = set()
        for engine in ("Multiway", "Replication", "BigJoin", "Single"):
            assert main([
                "enumerate", "--graph", path, "--query", "q2",
                "--engine", engine, "--machines", "3",
            ]) == 0
            out = capsys.readouterr().out
            counts.add(out.split("emb=")[1].split()[0])
        assert len(counts) == 1

    def test_enumerate_with_straggler(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "q2",
            "--engine", "RADS", "--machines", "3", "--straggler", "4",
        ]) == 0
        assert "emb=" in capsys.readouterr().out

    def test_labeled_command(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "labeled", "--graph", path, "--query", "triangle",
            "--query-labels", "0,1,2", "--num-labels", "3",
            "--show", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "labeled embeddings" in out

    def test_labeled_rejects_bad_label_count(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main([
                "labeled", "--graph", path, "--query", "triangle",
                "--query-labels", "0,1",
            ])

    def test_labeled_rejects_out_of_range_labels(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main([
                "labeled", "--graph", path, "--query", "triangle",
                "--query-labels", "0,1,9", "--num-labels", "3",
            ])

    def test_labeled_rejects_garbage_labels(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main([
                "labeled", "--graph", path, "--query", "triangle",
                "--query-labels", "a,b,c",
            ])


class TestRegistryResolution:
    """Engine/query lookups go through the repro.api registry."""

    def test_engine_name_case_insensitive(self, graph_file, capsys):
        path, _ = graph_file
        for spelling in ("rads", "RADS", "Rads"):
            assert main([
                "enumerate", "--graph", path, "--query", "q2",
                "--engine", spelling, "--machines", "3",
            ]) == 0
            assert "RADS" in capsys.readouterr().out

    def test_engine_alias(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "q2",
            "--engine", "oracle", "--machines", "2",
        ]) == 0
        assert "Single" in capsys.readouterr().out

    def test_query_name_case_insensitive(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "Q2",
            "--engine", "rads", "--machines", "3",
        ]) == 0
        assert "emb=" in capsys.readouterr().out
        assert main(["plan", "--query", "Q5"]) == 0
        assert "matching order" in capsys.readouterr().out

    def test_bad_engine_lists_canonical_names_and_aliases(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit) as excinfo:
            main([
                "enumerate", "--graph", path, "--query", "q1",
                "--engine", "nope",
            ])
        message = str(excinfo.value)
        assert "TwinTwig" in message
        assert "aliases: tt" in message
        assert "Single" in message

    def test_bad_query_lists_names(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit) as excinfo:
            main(["enumerate", "--graph", path, "--query", "nope"])
        message = str(excinfo.value)
        assert "q4" in message and "triangle" in message


class TestJsonOutput:
    def test_json_record(self, graph_file, capsys):
        import json

        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "q2",
            "--engine", "rads", "--machines", "3", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "RADS"
        assert payload["failed"] is False
        assert payload["embedding_count"] > 0
        assert payload["embeddings"] is None
        assert payload["config"]["machines"] == 3
        assert payload["counters"]

    def test_json_with_show_includes_embeddings(self, graph_file, capsys):
        import json

        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "triangle",
            "--engine", "single", "--machines", "2",
            "--show", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["embeddings"]) == 2
        # The embedded config must describe how the run really executed.
        assert payload["config"]["collect"] is True

    def test_json_failed_run(self, tmp_path, capsys):
        import json

        from repro.graph import erdos_renyi as er

        dense = er(120, 0.25, seed=19)
        path = str(tmp_path / "dense.npz")
        save_graph(dense, path)
        assert main([
            "enumerate", "--graph", path, "--query", "q5",
            "--engine", "TwinTwig", "--machines", "3",
            "--memory-mb", "1", "--json",
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is True
        assert payload["failure"]
        assert payload["counters"], "OOM runs keep per-machine counters"


class TestExplainCommand:
    def test_explain_plain(self, capsys):
        assert main(["explain", "--query", "q4"]) == 0
        out = capsys.readouterr().out
        for fragment in ("house via RADS", "round 0", "matching order:",
                         "symmetry breaking:", "runner-up"):
            assert fragment in out

    def test_explain_json(self, capsys):
        import json

        assert main(["explain", "--query", "q4", "--engine", "crystal",
                     "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["engine"] == "Crystal"
        assert record["pattern_name"] == "house"
        assert record["rounds"] and record["matching_order"]
        assert record["symmetry_conditions"] == [[1, 2]]
        assert "core" in record["extras"]

    def test_explain_with_graph_estimates(self, graph_file, capsys):
        path, _ = graph_file
        assert main(["explain", "--query", "q4", "--graph", path]) == 0
        assert "expansion" in capsys.readouterr().out

    def test_explain_dsl_query(self, capsys):
        assert main(["explain", "--query", "a-b, b-c, c-a"]) == 0
        assert "triangle" in capsys.readouterr().out

    def test_explain_bad_query_and_engine(self):
        with pytest.raises(SystemExit, match="did you mean"):
            main(["explain", "--query", "q44"])
        with pytest.raises(SystemExit, match="did you mean"):
            main(["explain", "--query", "q4", "--engine", "radss"])

    def test_enumerate_accepts_dsl(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "a-b-c-a",
            "--engine", "single", "--machines", "2",
        ]) == 0
        assert "triangle" in capsys.readouterr().out

    def test_labeled_accepts_dsl_labels(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "labeled", "--graph", path,
            "--query", "a:0-b:1, b-c:0, c-a", "--num-labels", "3",
        ]) == 0
        assert "labels [0, 1, 0]" in capsys.readouterr().out

    def test_labeled_rejects_double_label_source(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit, match="already carries labels"):
            main([
                "labeled", "--graph", path, "--query", "a:0-b:1",
                "--query-labels", "0,1",
            ])

    def test_labeled_requires_some_labels(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit, match="query-labels is required"):
            main(["labeled", "--graph", path, "--query", "q2"])

    def test_uppercase_graph_suffix(self, tmp_path, capsys):
        out = str(tmp_path / "ROAD.NPZ")
        assert main([
            "generate", "--dataset", "roadnet", "--scale", "0.05",
            "--out", out,
        ]) == 0
        assert main([
            "enumerate", "--graph", out, "--query", "q2",
            "--engine", "rads", "--machines", "2",
        ]) == 0
        assert "RADS" in capsys.readouterr().out

    def test_enumerate_labeled_query_is_clean_error(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit, match="LabeledGraph"):
            main([
                "enumerate", "--graph", path,
                "--query", "a:0-b:1, b-c:0, c-a", "--engine", "single",
            ])
