"""Tests for the command-line interface."""

import pytest

from repro.cli import load_graph, main, save_graph
from repro.graph import erdos_renyi


@pytest.fixture()
def graph_file(tmp_path):
    graph = erdos_renyi(60, 0.12, seed=17)
    path = tmp_path / "g.npz"
    save_graph(graph, str(path))
    return str(path), graph


class TestIO:
    @pytest.mark.parametrize("ext", ["npz", "edges", "adj"])
    def test_roundtrip_each_format(self, tmp_path, ext):
        graph = erdos_renyi(40, 0.15, seed=18)
        path = str(tmp_path / f"g.{ext}")
        save_graph(graph, path)
        assert load_graph(path) == graph

    def test_unknown_format(self, tmp_path):
        with pytest.raises(SystemExit):
            load_graph(str(tmp_path / "g.xyz"))


class TestCommands:
    def test_generate(self, tmp_path, capsys):
        out = str(tmp_path / "road.npz")
        assert main([
            "generate", "--dataset", "roadnet", "--scale", "0.1",
            "--out", out,
        ]) == 0
        assert "roadnet" in capsys.readouterr().out
        assert load_graph(out).num_vertices > 0

    def test_enumerate(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "q2",
            "--engine", "RADS", "--machines", "3", "--show", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "RADS" in out and "emb=" in out

    def test_enumerate_all_engines_agree(self, graph_file, capsys):
        path, _ = graph_file
        counts = set()
        for engine in ("RADS", "PSgL", "Single"):
            main([
                "enumerate", "--graph", path, "--query", "triangle",
                "--engine", engine, "--machines", "2",
            ])
            out = capsys.readouterr().out
            counts.add(out.split("emb=")[1].split()[0])
        assert len(counts) == 1

    def test_enumerate_oom_exit_code(self, tmp_path, capsys):
        dense = erdos_renyi(120, 0.25, seed=19)
        path = str(tmp_path / "dense.npz")
        save_graph(dense, path)
        code = main([
            "enumerate", "--graph", path, "--query", "q5",
            "--engine", "TwinTwig", "--machines", "3", "--memory-mb", "1",
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_bad_query(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main(["enumerate", "--graph", path, "--query", "nope"])

    def test_bad_engine(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main([
                "enumerate", "--graph", path, "--query", "q1",
                "--engine", "nope",
            ])

    def test_plan(self, capsys):
        assert main(["plan", "--query", "q5"]) == 0
        out = capsys.readouterr().out
        assert "matching order" in out
        assert "round 0" in out

    def test_plan_with_graph(self, graph_file, capsys):
        path, _ = graph_file
        assert main(["plan", "--query", "q4", "--graph", path]) == 0
        assert "expansion" in capsys.readouterr().out

    def test_profile(self, graph_file, capsys):
        path, graph = graph_file
        assert main(["profile", "--graph", path]) == 0
        out = capsys.readouterr().out
        assert f"vertices: {graph.num_vertices}" in out
        assert "triangles:" in out

    def test_enumerate_extension_engines(self, graph_file, capsys):
        path, _ = graph_file
        counts = set()
        for engine in ("Multiway", "Replication", "BigJoin", "Single"):
            assert main([
                "enumerate", "--graph", path, "--query", "q2",
                "--engine", engine, "--machines", "3",
            ]) == 0
            out = capsys.readouterr().out
            counts.add(out.split("emb=")[1].split()[0])
        assert len(counts) == 1

    def test_enumerate_with_straggler(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "enumerate", "--graph", path, "--query", "q2",
            "--engine", "RADS", "--machines", "3", "--straggler", "4",
        ]) == 0
        assert "emb=" in capsys.readouterr().out

    def test_labeled_command(self, graph_file, capsys):
        path, _ = graph_file
        assert main([
            "labeled", "--graph", path, "--query", "triangle",
            "--query-labels", "0,1,2", "--num-labels", "3",
            "--show", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "labeled embeddings" in out

    def test_labeled_rejects_bad_label_count(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main([
                "labeled", "--graph", path, "--query", "triangle",
                "--query-labels", "0,1",
            ])

    def test_labeled_rejects_out_of_range_labels(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main([
                "labeled", "--graph", path, "--query", "triangle",
                "--query-labels", "0,1,9", "--num-labels", "3",
            ])

    def test_labeled_rejects_garbage_labels(self, graph_file):
        path, _ = graph_file
        with pytest.raises(SystemExit):
            main([
                "labeled", "--graph", path, "--query", "triangle",
                "--query-labels", "a,b,c",
            ])
