"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.harness import GridResult
from repro.bench.plotting import comparison_chart, grouped_bar_chart
from repro.engines.base import RunResult


def make_result(engine, query, makespan, failed=False):
    return RunResult(
        engine=engine, pattern_name=query, embedding_count=10,
        makespan=makespan, total_comm_bytes=1000, peak_memory=100,
        per_machine_time=[makespan], failed=failed,
    )


@pytest.fixture()
def grid():
    g = GridResult("demo", 4)
    for q, (fast, slow) in {"q1": (0.1, 1.0), "q2": (0.2, 4.0)}.items():
        g.results[("RADS", q)] = make_result("RADS", q, fast)
        g.results[("SEED", q)] = make_result("SEED", q, slow)
    g.results[("SEED", "q2")] = make_result("SEED", "q2", 0, failed=True)
    return g


class TestGroupedBarChart:
    def test_renders_all_groups(self, grid):
        chart = grouped_bar_chart(grid)
        assert "q1:" in chart and "q2:" in chart
        assert "legend:" in chart

    def test_oom_bar(self, grid):
        assert "(OOM)" in grouped_bar_chart(grid)

    def test_bar_lengths_ordered(self, grid):
        chart = grouped_bar_chart(grid)
        q1_block = chart.split("q1:")[1].split("q2:")[0]
        lines = {
            line.split("|")[0].strip(): line.split("|")[1]
            for line in q1_block.splitlines()
            if "|" in line
        }
        # SEED's q1 bar (1.0s) must be longer than RADS's (0.1s).
        rads_bar = lines["RADS"].count("#")
        seed_bar = lines["SEED"].count("*")
        assert seed_bar > rads_bar > 0

    def test_log_scale(self, grid):
        chart = grouped_bar_chart(grid, log=True)
        assert "log scale" in chart

    def test_custom_metric(self, grid):
        chart = grouped_bar_chart(
            grid, metric=lambda r: r.total_comm_bytes, title="comm"
        )
        assert "comm" in chart


class TestComparisonChart:
    def test_renders(self):
        chart = comparison_chart(
            ["5", "10", "15"],
            {"RADS": [1.0, 1.5, 1.8], "Crystal": [1.0, 2.0, 2.8]},
            title="scalability",
        )
        assert "scalability" in chart
        assert chart.count("RADS") == 3

    def test_zero_values(self):
        chart = comparison_chart(["a"], {"X": [0.0]}, title="t")
        assert "X" in chart
