"""Unit tests for the Graph core (CSR storage, builder, IO)."""

import pytest

from repro.graph import Graph, GraphBuilder, load_adjacency_text, save_adjacency_text


class TestGraphConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_vertices == 4
        assert g.num_edges == 3

    def test_neighbors_sorted(self):
        g = Graph.from_edges(5, [(2, 0), (2, 4), (2, 1), (2, 3)])
        assert list(g.neighbors(2)) == [0, 1, 3, 4]

    def test_duplicate_edges_collapsed(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 2)])

    def test_empty_graph(self):
        g = Graph.from_edges(3, [])
        assert g.num_vertices == 3
        assert g.num_edges == 0
        assert len(g.neighbors(0)) == 0

    def test_from_adjacency(self):
        g = Graph.from_adjacency([[1, 2], [0], [0]])
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_symmetry(self):
        g = Graph.from_edges(4, [(0, 3), (1, 2)])
        for u, v in [(0, 3), (3, 0), (1, 2), (2, 1)]:
            assert g.has_edge(u, v)
        assert not g.has_edge(0, 1)


class TestGraphAccessors:
    def test_degree(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert list(g.degrees()) == [3, 1, 1, 1]

    def test_edges_iterated_once(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        g = Graph.from_edges(3, edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_average_degree(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g.average_degree() == 2.0

    def test_storage_bytes_positive(self):
        g = Graph.from_edges(4, [(0, 1)])
        assert g.storage_bytes() > 0

    def test_equality_and_hash(self):
        a = Graph.from_edges(3, [(0, 1), (1, 2)])
        b = Graph.from_edges(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)


class TestSubgraph:
    def test_induced_subgraph(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        sub, remap = g.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # (0,1), (1,2) survive; (4,0) does not
        assert remap[0] == 0 and remap[2] == 2

    def test_subgraph_relabels_densely(self):
        g = Graph.from_edges(6, [(2, 5), (5, 4)])
        sub, remap = g.subgraph([2, 4, 5])
        assert set(remap.values()) == {0, 1, 2}
        assert sub.has_edge(remap[2], remap[5])


class TestGraphBuilder:
    def test_incremental(self):
        b = GraphBuilder()
        assert b.add_edge(0, 5)
        assert not b.add_edge(5, 0)  # duplicate
        assert b.num_vertices == 6
        g = b.build()
        assert g.num_edges == 1

    def test_add_vertex(self):
        b = GraphBuilder(2)
        vid = b.add_vertex()
        assert vid == 2
        assert b.build().num_vertices == 3

    def test_self_loop_rejected(self):
        b = GraphBuilder()
        with pytest.raises(ValueError):
            b.add_edge(1, 1)

    def test_has_edge(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        assert b.has_edge(1, 0)
        assert not b.has_edge(0, 2)


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (3, 4), (0, 4)])
        path = tmp_path / "g.adj"
        nbytes = save_adjacency_text(g, path)
        assert nbytes > 0
        g2 = load_adjacency_text(path)
        assert g == g2

    def test_isolated_vertices_preserved(self, tmp_path):
        g = Graph.from_edges(4, [(0, 1)])
        path = tmp_path / "g.adj"
        save_adjacency_text(g, path)
        g2 = load_adjacency_text(path)
        assert g2.num_vertices == 4
        assert g2.num_edges == 1


class TestExtendedIO:
    def test_edge_list_roundtrip(self, tmp_path):
        from repro.graph.io import load_edge_list, save_edge_list

        g = Graph.from_edges(6, [(0, 1), (2, 5), (3, 4)])
        path = tmp_path / "g.edges"
        save_edge_list(g, path)
        assert load_edge_list(path) == g

    def test_edge_list_header_preserves_isolated(self, tmp_path):
        from repro.graph.io import load_edge_list, save_edge_list

        g = Graph.from_edges(10, [(0, 1)])
        path = tmp_path / "g.edges"
        save_edge_list(g, path)
        assert load_edge_list(path).num_vertices == 10

    def test_edge_list_skips_comments_and_self_loops(self, tmp_path):
        from repro.graph.io import load_edge_list

        path = tmp_path / "g.edges"
        path.write_text("# a comment\n0 1\n1 1\n2 0\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_binary_roundtrip(self, tmp_path):
        from repro.graph.io import load_binary, save_binary

        g = Graph.from_edges(8, [(0, 1), (1, 2), (6, 7)])
        path = tmp_path / "g.npz"
        nbytes = save_binary(g, path)
        assert nbytes > 0
        assert load_binary(path) == g
