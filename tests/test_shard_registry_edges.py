"""ShardRegistry edge cases: rejoin, staleness resurrection, bad input.

Satellite coverage for the elastic-roster membership book
(:mod:`repro.distributed.registry`): the withdraw-then-reannounce cycle a
politely drained worker goes through when it is brought back on the same
address, a stale entry resurrecting between two coordinator batches, and
the server-side validation of garbage ``announce`` addresses (the error
must name the field so operators can fix the right flag).
"""

from __future__ import annotations

import socket

import pytest

from repro.api import RunConfig
from repro.distributed import ShardRegistry
from repro.graph import erdos_renyi
from repro.service import QueryServer, protocol


@pytest.fixture()
def clock():
    """A hand-cranked monotonic clock (list cell so tests can advance it)."""

    class Clock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    return Clock()


# ----------------------------------------------------------------------
# Withdraw then re-announce on the same address
# ----------------------------------------------------------------------
class TestWithdrawThenReannounce:
    def test_reannounce_same_address_is_a_fresh_entry(self, clock):
        registry = ShardRegistry(clock=clock)
        registry.announce("127.0.0.1:9001", graphs=["f1"], workers=4)
        registry.announce("127.0.0.1:9001")
        assert registry.announces("127.0.0.1:9001") == 2
        v_before = registry.version()

        assert registry.withdraw("127.0.0.1:9001") is True
        assert registry.version() == v_before + 1
        assert registry.addresses() == []
        # The book forgot the worker entirely: no ghost announce count.
        assert registry.announces("127.0.0.1:9001") == 0

        # The same address comes back (a replacement process, or the
        # same one restarted): membership edit, counters start over.
        v_back = registry.announce("127.0.0.1:9001", graphs=["f2"])
        assert v_back == v_before + 2
        assert registry.addresses() == ["127.0.0.1:9001"]
        assert registry.announces("127.0.0.1:9001") == 1
        [entry] = registry.snapshot()
        assert entry["graphs"] == ["f2"]
        assert entry["stale"] is False

    def test_withdraw_unknown_address_is_not_an_edit(self):
        registry = ShardRegistry()
        v = registry.version()
        assert registry.withdraw("127.0.0.1:9009") is False
        assert registry.version() == v

    def test_address_spellings_hit_one_entry(self, clock):
        registry = ShardRegistry(clock=clock)
        v1 = registry.announce(("127.0.0.1", 9001))
        # Tuple, string and canonical spellings are the same worker.
        assert registry.announce("127.0.0.1:9001") == v1
        assert registry.announces("127.0.0.1:9001") == 2
        assert registry.withdraw(("127.0.0.1", 9001)) is True
        assert registry.addresses() == []


# ----------------------------------------------------------------------
# Stale entry resurrecting mid-batch
# ----------------------------------------------------------------------
class TestStaleResurrection:
    def test_stale_entry_resurrects_without_a_membership_edit(self, clock):
        registry = ShardRegistry(stale_after=45.0, clock=clock)
        registry.announce("127.0.0.1:9001")
        assert registry.addresses() == ["127.0.0.1:9001"]
        version = registry.version()

        # Silence past the horizon: the worker stops being offered to
        # coordinators but stays visible (flagged) for operators.
        clock.now = 45.0
        assert registry.addresses() == []
        assert len(registry) == 0
        [entry] = registry.snapshot()
        assert entry["stale"] is True
        # Staleness is a view-time judgement, not an edit: pollers that
        # gate reconciliation on version() must not see a change...
        assert registry.version() == version

        # ...which is exactly why the rejoin signal is the announce
        # *count*: when the silent worker speaks again mid-batch, the
        # count advances even though the membership version does not.
        clock.now = 46.0
        assert registry.announce("127.0.0.1:9001") == version
        assert registry.addresses() == ["127.0.0.1:9001"]
        assert registry.announces("127.0.0.1:9001") == 2
        [entry] = registry.snapshot()
        assert entry["stale"] is False
        assert entry["age_seconds"] == 0.0

    def test_resurrected_entry_keeps_its_first_seen_history(self, clock):
        registry = ShardRegistry(stale_after=10.0, clock=clock)
        registry.announce("127.0.0.1:9001")
        clock.now = 30.0
        registry.announce("127.0.0.1:9001")
        # Not withdrawn in between: one continuous entry, two announces.
        assert registry.announces("127.0.0.1:9001") == 2

    def test_stale_after_none_never_expires(self, clock):
        registry = ShardRegistry(stale_after=None, clock=clock)
        registry.announce("127.0.0.1:9001")
        clock.now = 1e9
        assert registry.addresses() == ["127.0.0.1:9001"]

    def test_stale_after_must_be_positive(self):
        with pytest.raises(ValueError, match="stale_after"):
            ShardRegistry(stale_after=0.0)


# ----------------------------------------------------------------------
# snapshot() health fields under an injectable clock
# ----------------------------------------------------------------------
class TestSnapshotHealthFields:
    def test_age_tracks_the_injected_clock_and_rounds(self, clock):
        registry = ShardRegistry(stale_after=45.0, clock=clock)
        clock.now = 1.0
        registry.announce("127.0.0.1:9001")
        clock.now = 13.3456
        [entry] = registry.snapshot()
        # Heartbeat age is now - last_seen, rounded to milliseconds.
        assert entry["age_seconds"] == 12.346
        assert entry["stale"] is False

    def test_reannounce_resets_age_to_zero(self, clock):
        registry = ShardRegistry(stale_after=45.0, clock=clock)
        registry.announce("127.0.0.1:9001")
        clock.now = 40.0
        registry.announce("127.0.0.1:9001")
        [entry] = registry.snapshot()
        assert entry["age_seconds"] == 0.0
        # The refresh pushed the stale horizon out past the old one.
        clock.now = 84.9
        [entry] = registry.snapshot()
        assert entry["stale"] is False
        assert entry["age_seconds"] == 44.9

    def test_stale_flag_flips_exactly_at_the_horizon(self, clock):
        registry = ShardRegistry(stale_after=45.0, clock=clock)
        registry.announce("127.0.0.1:9001")
        clock.now = 44.999
        [entry] = registry.snapshot()
        assert entry["stale"] is False
        clock.now = 45.0  # >= stale_after: silence long enough
        [entry] = registry.snapshot()
        assert entry["stale"] is True
        # The flagged entry stays visible for operators with its age.
        assert entry["age_seconds"] == 45.0

    def test_entries_age_independently(self, clock):
        registry = ShardRegistry(stale_after=45.0, clock=clock)
        registry.announce("127.0.0.1:9001")
        clock.now = 50.0
        registry.announce("127.0.0.1:9002")
        clock.now = 60.0
        by_address = {
            entry["address"]: entry for entry in registry.snapshot()
        }
        assert by_address["127.0.0.1:9001"]["age_seconds"] == 60.0
        assert by_address["127.0.0.1:9001"]["stale"] is True
        assert by_address["127.0.0.1:9002"]["age_seconds"] == 10.0
        assert by_address["127.0.0.1:9002"]["stale"] is False

    def test_no_horizon_means_never_stale_but_age_still_reported(
        self, clock
    ):
        registry = ShardRegistry(stale_after=None, clock=clock)
        registry.announce("127.0.0.1:9001")
        clock.now = 1e6
        [entry] = registry.snapshot()
        assert entry["stale"] is False
        assert entry["age_seconds"] == 1e6

    def test_clock_regression_clamps_age_at_zero(self, clock):
        # A snapshot racing an announce on another thread can read the
        # clock "before" the entry's refresh; the view must clamp, not
        # report a negative heartbeat age.
        registry = ShardRegistry(stale_after=45.0, clock=clock)
        clock.now = 10.0
        registry.announce("127.0.0.1:9001")
        clock.now = 9.5
        [entry] = registry.snapshot()
        assert entry["age_seconds"] == 0.0
        assert entry["stale"] is False


# ----------------------------------------------------------------------
# Garbage announce addresses through the server op
# ----------------------------------------------------------------------
class TestAnnounceValidation:
    @pytest.fixture()
    def server(self):
        graph = erdos_renyi(40, 0.1, seed=3)
        with QueryServer(graph, RunConfig(machines=2), threads=1) as server:
            yield server

    @pytest.mark.parametrize(
        "address",
        [
            "127.0.0.1:not-a-port",
            "127.0.0.1:",
            "host:12x",
            None,
            42,
            "",
        ],
    )
    def test_garbage_port_error_names_the_address_field(
        self, server, address
    ):
        with socket.create_connection(server.address, timeout=10) as sock:
            stream = sock.makefile("rwb")
            protocol.read_message(stream)  # hello
            protocol.write_message(
                stream, {"op": "announce", "id": 1, "address": address}
            )
            response = protocol.read_message(stream)
            assert response["ok"] is False
            assert "'address'" in response["error"]
            # The connection survives a rejected announce.
            protocol.write_message(stream, {"op": "ping", "id": 2})
            assert protocol.read_message(stream)["kind"] == "pong"
        # Nothing garbage landed in the book.
        assert len(server.shard_registry) == 0

    def test_registry_itself_rejects_unparseable_addresses(self):
        registry = ShardRegistry()
        with pytest.raises(ValueError, match="address"):
            registry.announce("no-port-here:xx")
        with pytest.raises(ValueError, match="address"):
            registry.withdraw("no-port-here:xx")
