"""Unit tests for the Crystal baseline (core choice, clique index)."""

import pytest

from repro.cluster import Cluster
from repro.engines import SingleMachineEngine
from repro.engines.crystal import (
    CliqueIndex,
    CrystalEngine,
    choose_core,
    minimum_vertex_covers,
)
from repro.graph import community_graph, erdos_renyi
from repro.query.patterns import PAPER_QUERIES, CLIQUE_QUERIES


class TestVertexCovers:
    def test_square_covers(self):
        covers = minimum_vertex_covers(PAPER_QUERIES["q1"], 2)
        assert sorted(map(sorted, covers)) == [[0, 2], [1, 3]]

    def test_triangle_needs_two(self):
        from repro.query.patterns import triangle

        assert not minimum_vertex_covers(triangle(), 1)
        assert len(minimum_vertex_covers(triangle(), 2)) == 3


class TestChooseCore:
    def test_buds_are_independent_set(self):
        for name, pattern in {**PAPER_QUERIES, **CLIQUE_QUERIES}.items():
            core, buds = choose_core(pattern)
            for i, a in enumerate(buds):
                for b in buds[i + 1:]:
                    assert not pattern.has_edge(a, b), name

    def test_core_is_cover(self):
        for pattern in PAPER_QUERIES.values():
            core, _ = choose_core(pattern)
            for a, b in pattern.edges():
                assert a in core or b in core

    def test_clique_attachment_preferred_on_tailed_triangle(self):
        # q2 = triangle + tail: the chosen decomposition should give the
        # bud-on-a-triangle-edge shape Crystal exploits.
        core, buds = choose_core(PAPER_QUERIES["q2"])
        pattern = PAPER_QUERIES["q2"]
        clique_buds = [
            u for u in buds
            if len(pattern.adj(u) & core) >= 2
        ]
        assert clique_buds  # at least one bud rides the clique index


class TestCliqueIndex:
    @pytest.fixture(scope="class")
    def graph(self):
        return community_graph(8, 8, intra_prob=0.6, seed=5)

    def test_size2_is_edges(self, graph):
        index = CliqueIndex(graph, max_size=2)
        assert index.count(2) == graph.num_edges

    def test_counts_match_enumeration(self, graph):
        from repro.graph import enumerate_cliques

        index = CliqueIndex(graph, max_size=4)
        by_size = {3: 0, 4: 0}
        for c in enumerate_cliques(graph, 3, 4):
            by_size[len(c)] += 1
        assert index.count(3) == by_size[3]
        assert index.count(4) == by_size[4]

    def test_size_bytes_grows_with_max_size(self, graph):
        small = CliqueIndex(graph, max_size=2).size_bytes()
        large = CliqueIndex(graph, max_size=4).size_bytes()
        assert large > small

    def test_entry_cap(self, graph):
        index = CliqueIndex(graph, max_size=4, max_entries=10)
        assert index.count(3) + index.count(4) <= 12


class TestCrystalEngine:
    def test_prebuilt_index_reused(self):
        graph = erdos_renyi(60, 0.15, seed=6)
        index = CliqueIndex(graph, max_size=3)
        engine = CrystalEngine(index=index)
        cluster = Cluster.create(graph, 3)
        pattern = PAPER_QUERIES["q2"]
        expected = SingleMachineEngine().run(
            cluster.fresh_copy(), pattern
        ).embeddings
        result = engine.run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == set(expected)

    def test_disk_time_charged_for_index(self):
        graph = community_graph(6, 8, intra_prob=0.6, seed=7)
        cluster = Cluster.create(graph, 2)
        result = CrystalEngine().run(cluster, CLIQUE_QUERIES["cq1"])
        assert result.makespan > 0

    def test_single_vertex_core(self):
        # A star query has a single-vertex cover.
        from repro.query.patterns import star

        graph = erdos_renyi(50, 0.1, seed=8)
        cluster = Cluster.create(graph, 2)
        pattern = star(3)
        expected = SingleMachineEngine().run(
            cluster.fresh_copy(), pattern
        ).embeddings
        result = CrystalEngine().run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == set(expected)
