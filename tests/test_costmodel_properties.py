"""Property tests for the cost model and network accounting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import CostModel, Machine, Network


class TestCostModelProperties:
    @settings(max_examples=50, deadline=None)
    @given(nbytes=st.floats(0, 1e9))
    def test_message_time_monotone(self, nbytes):
        model = CostModel()
        assert model.message_time(nbytes) <= model.message_time(nbytes + 1)

    @settings(max_examples=50, deadline=None)
    @given(ops=st.floats(0, 1e12))
    def test_compute_time_linear(self, ops):
        model = CostModel()
        assert model.compute_time(2 * ops) == pytest.approx(
            2 * model.compute_time(ops)
        )

    @settings(max_examples=20, deadline=None)
    @given(k=st.integers(0, 64))
    def test_embedding_bytes_proportional(self, k):
        model = CostModel()
        assert model.embedding_bytes(k) == k * model.bytes_per_vertex_id


class TestNetworkInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        transfers=st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 3), st.integers(1, 10**6)
            ),
            max_size=30,
        )
    )
    def test_total_equals_sum_of_records(self, transfers):
        model = CostModel()
        net = Network(4, model)
        expected = 0
        for src, dst, nbytes in transfers:
            net.record(src, dst, nbytes)
            expected += nbytes
        assert net.total_bytes == expected
        assert net.messages == len(transfers)

    @settings(max_examples=25, deadline=None)
    @given(
        payload=st.lists(
            st.lists(st.integers(0, 10**5), min_size=3, max_size=3),
            min_size=3, max_size=3,
        )
    )
    def test_shuffle_barrier_equalises_clocks(self, payload):
        model = CostModel()
        net = Network(3, model)
        machines = [Machine(i, model) for i in range(3)]
        machines[1].advance(0.5)
        net.shuffle(machines, np.asarray(payload, dtype=np.int64))
        clocks = {round(m.clock, 15) for m in machines}
        assert len(clocks) == 1
        assert machines[0].clock >= 0.5

    @settings(max_examples=25, deadline=None)
    @given(
        request=st.integers(0, 10**6),
        response=st.integers(0, 10**6),
        service=st.floats(0, 10**6),
    )
    def test_rpc_conservation(self, request, response, service):
        """Requester waits at least the two message times; responder's
        main clock never moves; all bytes are accounted."""
        model = CostModel()
        net = Network(2, model)
        a, b = Machine(0, model), Machine(1, model)
        net.rpc(a, b, request, response, service)
        assert a.clock >= model.message_time(request)
        assert b.clock == 0.0
        assert net.total_bytes == request + response


class TestMachineInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(st.booleans(), st.integers(1, 10**6)), max_size=40
        )
    )
    def test_peak_is_running_max(self, steps):
        machine = Machine(0, CostModel())
        used = 0
        peak = 0
        for is_alloc, nbytes in steps:
            if is_alloc:
                machine.allocate(nbytes)
                used += nbytes
            else:
                machine.free(min(nbytes, used))
                used -= min(nbytes, used)
            peak = max(peak, used)
        assert machine.memory_used == used
        assert machine.peak_memory == peak
