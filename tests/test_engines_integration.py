"""Cross-engine integration tests: all five approaches must agree with the
single-machine oracle on every query and graph family."""

import pytest

from repro.cluster import Cluster
from repro.engines import (
    CrystalEngine,
    PSgLEngine,
    SEEDEngine,
    SingleMachineEngine,
    TwinTwigEngine,
    all_engines,
)
from repro.core.rads import RADSEngine
from repro.engines import MultiwayJoinEngine, ReplicationEngine
from repro.query import named_patterns

ENGINES = [
    RADSEngine(),
    PSgLEngine(),
    TwinTwigEngine(),
    SEEDEngine(),
    CrystalEngine(),
    MultiwayJoinEngine(),
    ReplicationEngine(),
]
QUERIES = ["q1", "q2", "q3", "q4", "q6", "q7", "q8", "cq1", "cq2", "cq3", "cq4"]


@pytest.fixture(scope="module")
def oracle_cache():
    return {}


def expected_for(cluster, pattern, cache):
    key = (id(cluster.partition), pattern.name)
    if key not in cache:
        cache[key] = set(
            SingleMachineEngine().run(cluster.fresh_copy(), pattern).embeddings
        )
    return cache[key]


@pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.name)
@pytest.mark.parametrize("qname", QUERIES)
class TestAllEnginesAgree:
    def test_er(self, er_cluster, engine, qname, oracle_cache):
        pattern = named_patterns()[qname]
        expected = expected_for(er_cluster, pattern, oracle_cache)
        result = engine.run(er_cluster.fresh_copy(), pattern)
        assert not result.failed
        assert set(result.embeddings) == expected
        assert len(result.embeddings) == len(expected)


@pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.name)
class TestCommunityGraph:
    def test_q5(self, engine, community_graph_small, oracle_cache):
        cluster = Cluster.create(community_graph_small, 3)
        pattern = named_patterns()["q5"]
        expected = expected_for(cluster, pattern, oracle_cache)
        result = engine.run(cluster.fresh_copy(), pattern)
        assert set(result.embeddings) == expected


class TestEngineRegistry:
    def test_all_engines_listed(self):
        reg = all_engines()
        assert sorted(reg) == ["Crystal", "PSgL", "RADS", "SEED", "TwinTwig"]

    def test_names_match(self):
        for name, cls in all_engines().items():
            assert cls.name == name


class TestRunResult:
    def test_summary_format(self, er_cluster):
        result = RADSEngine().run(er_cluster.fresh_copy(), named_patterns()["q2"])
        text = result.summary()
        assert "RADS" in text and "time=" in text

    def test_comm_mb(self, er_cluster):
        result = PSgLEngine().run(er_cluster.fresh_copy(), named_patterns()["q1"])
        assert result.comm_mb == result.total_comm_bytes / 1e6

    def test_failed_summary(self):
        from repro.engines.base import RunResult

        r = RunResult(
            engine="X", pattern_name="q1", embedding_count=0, makespan=0,
            total_comm_bytes=0, peak_memory=0, per_machine_time=[],
            failed=True, failure="OOM",
        )
        assert "OOM" in r.summary()


class TestOOMBehaviour:
    """Join engines crash under tight memory; RADS survives (paper Sec. 7)."""

    @pytest.mark.parametrize(
        "engine_cls", [TwinTwigEngine, SEEDEngine, PSgLEngine]
    )
    def test_baselines_oom_under_cap(self, powerlaw_graph, engine_cls):
        cluster = Cluster.create(
            powerlaw_graph, 4, memory_capacity=1024 * 1024
        )
        result = engine_cls().run(cluster, named_patterns()["q5"])
        assert result.failed
        assert "OOM" in (result.failure or "")

    def test_rads_survives_same_cap(self, powerlaw_graph):
        cluster = Cluster.create(
            powerlaw_graph, 4, memory_capacity=1024 * 1024
        )
        loose = Cluster.create(powerlaw_graph, 4)
        expected = set(
            SingleMachineEngine().run(loose, named_patterns()["q5"]).embeddings
        )
        result = RADSEngine().run(cluster, named_patterns()["q5"])
        assert not result.failed
        assert set(result.embeddings) == expected
