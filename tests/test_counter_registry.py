"""Every emitted counter name is pinned to the one registry.

:mod:`repro.obs.counters` spells each namespaced counter literally (it
must stay importable without cycles), so these tests do the cross-check
the module itself cannot: each owning module's source-of-truth constant
must appear in :data:`KNOWN_COUNTERS` verbatim, and real workloads
through the service tier and the socket backend must emit only
registered names.  A typo'd counter key fails here instead of silently
forking a new time series.
"""

from __future__ import annotations

import pytest

from repro.api import RunConfig, Session
from repro.distributed import coordinator
from repro.obs.counters import (
    DISTRIBUTED_COUNTERS,
    ENGINE_COUNTER_PATTERN,
    KNOWN_COUNTERS,
    SERVICE_COUNTERS,
    WATCH_COUNTERS,
    unknown_counters,
)
from repro.service import cache as service_cache
from repro.service import scheduler as service_scheduler
from repro.service.scheduler import QueryScheduler
from repro.store import STORE_HIT_COUNTER


class TestRegistryPinsSourceConstants:
    """The literal spellings cannot drift from their owning modules."""

    def test_cache_constants_are_registered(self):
        assert service_cache.HIT_COUNTER in SERVICE_COUNTERS
        assert service_cache.DEDUP_COUNTER in SERVICE_COUNTERS

    def test_store_hit_spelling_is_shared_and_registered(self):
        # scheduler mirrors the store's constant; all three must agree.
        assert STORE_HIT_COUNTER == service_scheduler.STORE_HIT_COUNTER
        assert STORE_HIT_COUNTER in SERVICE_COUNTERS

    def test_distributed_fault_counters_are_registered(self):
        assert coordinator.RESUBMITS in DISTRIBUTED_COUNTERS
        assert coordinator.LOST_WORKERS in DISTRIBUTED_COUNTERS

    def test_watch_dropped_reservation(self):
        assert "watch.dropped" in WATCH_COUNTERS

    def test_union_covers_every_namespace(self):
        assert KNOWN_COUNTERS == (
            SERVICE_COUNTERS | DISTRIBUTED_COUNTERS | WATCH_COUNTERS
        )
        # Namespaced names are dotted; the engine shape check is for
        # the dotless layer only.
        assert all("." in name for name in KNOWN_COUNTERS)


class TestEventMirrorParity:
    """Event kinds that mirror counters stay pinned to both registries.

    PR 10's journal records the *same* transitions some counters count;
    :data:`repro.obs.events.MIRRORED_COUNTERS` spells the pairing.  Each
    side must match its source of truth, so an event can never claim to
    mirror a counter that drifted or was never registered.
    """

    def test_mirrored_pairs_pin_the_coordinator_constants(self):
        from repro.obs import events

        assert (
            events.MIRRORED_COUNTERS[events.WORKER_LOST]
            == coordinator.LOST_WORKERS
        )
        assert (
            events.MIRRORED_COUNTERS[events.BATCH_RESUBMIT]
            == coordinator.RESUBMITS
        )

    def test_mirrored_names_exist_in_both_registries(self):
        from repro.obs import events

        assert set(events.MIRRORED_COUNTERS) <= events.KNOWN_KINDS
        assert set(events.MIRRORED_COUNTERS.values()) <= KNOWN_COUNTERS


class TestUnknownCounters:
    def test_registered_and_engine_names_pass(self):
        assert unknown_counters([]) == []
        assert unknown_counters(
            ["service.cache_hit", "join_ops", "sme_embeddings", "alloc_bytes"]
        ) == []

    def test_typod_namespace_is_flagged(self):
        assert unknown_counters(["service.cache_hitt"]) == [
            "service.cache_hitt"
        ]

    def test_bad_engine_shape_is_flagged(self):
        assert unknown_counters(["JoinOps", "2fast", "has space"]) == [
            "2fast",
            "JoinOps",
            "has space",
        ]
        assert ENGINE_COUNTER_PATTERN.match("join_ops")
        assert not ENGINE_COUNTER_PATTERN.match("Join_ops")


class TestRealWorkloadsEmitOnlyRegisteredNames:
    @pytest.mark.parametrize("engine", ["rads", "seed"])
    def test_session_run_counters_are_accounted_for(
        self, er_graph, engine
    ):
        session = Session(er_graph, RunConfig(machines=3))
        result = session.query("a-b, b-c, c-a").engine(engine).run()
        assert result.counters  # non-trivial workload
        assert unknown_counters(result.counters) == []

    def test_scheduler_served_counters_are_accounted_for(self, er_graph):
        with QueryScheduler(
            er_graph, RunConfig(machines=3), threads=2
        ) as scheduler:
            # Twice: the repeat comes back via cache/dedup annotations,
            # exercising the service.* namespace end to end.
            for _ in range(2):
                ticket = scheduler.submit("a-b, b-c, c-a", engine="rads")
                result = ticket.result(timeout=60)
                assert unknown_counters(result.counters) == []
            assert any(
                name in SERVICE_COUNTERS for name in result.counters
            )
