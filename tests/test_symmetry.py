"""Tests for automorphisms and symmetry-breaking constraints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.query import Pattern, automorphisms, orbits, symmetry_breaking_constraints
from repro.query.patterns import (
    clique,
    domino,
    k33,
    path,
    square,
    star,
    triangle,
)
from repro.query.symmetry import satisfies_constraints


class TestAutomorphisms:
    @pytest.mark.parametrize("pattern,count", [
        (triangle(), 6),
        (square(), 8),
        (path(3), 2),
        (path(4), 2),
        (star(3), 6),
        (clique(4), 24),
        (clique(5), 120),
        (k33(), 72),
        (domino(), 4),
    ])
    def test_group_order(self, pattern, count):
        assert len(automorphisms(pattern)) == count

    def test_identity_always_present(self):
        for p in (triangle(), square(), domino()):
            assert tuple(range(p.num_vertices)) in automorphisms(p)

    def test_automorphisms_preserve_edges(self):
        p = domino()
        for sigma in automorphisms(p):
            for u, v in p.edges():
                assert p.has_edge(sigma[u], sigma[v])

    def test_orbits_partition_vertices(self):
        p = k33()
        obs = orbits(p)
        all_vertices = sorted(v for orbit in obs for v in orbit)
        assert all_vertices == list(p.vertices())


class TestConstraints:
    def test_triangle_total_order(self):
        cons = symmetry_breaking_constraints(triangle())
        # K3's constraints must totally order all three vertices.
        assert len(cons) == 3

    def test_asymmetric_pattern_no_constraints(self):
        # A pattern with trivial automorphism group needs no constraints:
        # a triangle with tails of lengths 2, 1 and 0 on its corners.
        p = Pattern(
            6, [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (1, 5)],
            name="asymmetric",
        )
        assert len(automorphisms(p)) == 1
        assert symmetry_breaking_constraints(p) == []

    def test_satisfies(self):
        cons = [(0, 1), (1, 2)]
        assert satisfies_constraints((1, 5, 9), cons)
        assert not satisfies_constraints((5, 1, 9), cons)


def _small_connected_patterns():
    """Hypothesis strategy for small connected patterns."""
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=6))
        # Random spanning tree guarantees connectivity.
        edges = set()
        for v in range(1, n):
            parent = draw(st.integers(min_value=0, max_value=v - 1))
            edges.add((parent, v))
        extra = draw(
            st.sets(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ).filter(lambda e: e[0] < e[1]),
                max_size=6,
            )
        )
        edges |= extra
        return Pattern(n, sorted(edges))
    return build()


class TestSymmetryFactorProperty:
    """The defining property: constraints keep exactly one embedding per
    automorphism orbit, so count_constrained * |Aut| == count_unconstrained."""

    @settings(max_examples=40, deadline=None)
    @given(pattern=_small_connected_patterns(), seed=st.integers(0, 10))
    def test_factor(self, pattern, seed):
        from repro.enumeration import enumerate_embeddings
        from repro.graph import erdos_renyi

        graph = erdos_renyi(25, 0.25, seed=seed)
        cons = symmetry_breaking_constraints(pattern)
        free = enumerate_embeddings(
            graph.neighbors, graph.vertices(), pattern, []
        )
        constrained = enumerate_embeddings(
            graph.neighbors, graph.vertices(), pattern, cons
        )
        assert len(free) == len(constrained) * len(automorphisms(pattern))
