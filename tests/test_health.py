"""The SLO health engine: declarative rules, transitions, the wire op.

Unit level: every built-in rule fires on a synthetic metrics snapshot
crossing its threshold and stays quiet below it; rule transitions emit
``health.rule_fired`` / ``health.rule_cleared`` into the journal.  End
to end: killing an announced worker mid-run produces a ``worker.lost``
event carrying the active trace id and flips ``health`` to ``degraded``
until a replacement worker announces — the PR's acceptance scenario.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.api import RunConfig
from repro.distributed import ShardRegistry, ShardWorker
from repro.graph import erdos_renyi
from repro.obs import events
from repro.obs.events import EventJournal
from repro.obs.health import STATUSES, HealthEngine
from repro.service import QueryServer, connect


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, seed=17)


def _addr(worker: ShardWorker) -> str:
    host, port = worker.address
    return f"{host}:{port}"


def _poll(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def _rule(verdict: dict, name: str) -> dict:
    return next(r for r in verdict["rules"] if r["name"] == name)


# ----------------------------------------------------------------------
# Rule unit behavior (synthetic snapshots, private journal)
# ----------------------------------------------------------------------
class TestHealthRules:
    def engine(self, **kwargs) -> HealthEngine:
        return HealthEngine(journal=EventJournal(), **kwargs)

    def test_empty_metrics_is_ok(self):
        verdict = self.engine().evaluate({})
        assert verdict["status"] == "ok"
        assert verdict["firing"] == []
        assert {r["name"] for r in verdict["rules"]} == {
            "latency_p95", "error_rate", "queue_depth",
            "stale_shards", "disk_errors", "worker_loss",
        }

    def test_latency_rule_is_gated_on_min_samples(self):
        engine = self.engine(p95_latency_seconds=1.0, min_samples=4)
        slow = {"histograms": {"latency": {"count": 3, "p95": 50.0}}}
        assert engine.evaluate(slow)["status"] == "ok"  # too few samples
        slow["histograms"]["latency"]["count"] = 4
        verdict = engine.evaluate(slow)
        assert verdict["status"] == "degraded"
        assert verdict["firing"] == ["latency_p95"]
        evidence = _rule(verdict, "latency_p95")["evidence"]
        assert evidence["p95_seconds"] == 50.0
        assert evidence["ceiling_seconds"] == 1.0

    def test_error_rate_rule_is_critical(self):
        engine = self.engine(error_rate=0.25, min_samples=4)
        metrics = {"scheduler": {"completed": 2, "failed": 2}}
        verdict = engine.evaluate(metrics)
        assert verdict["status"] == "critical"
        assert "error_rate" in verdict["firing"]
        assert _rule(verdict, "error_rate")["evidence"]["rate"] == 0.5

    def test_queue_depth_rule(self):
        engine = self.engine(queue_depth=8)
        assert engine.evaluate(
            {"scheduler": {"queued": 8}}
        )["status"] == "ok"
        verdict = engine.evaluate({"scheduler": {"queued": 9}})
        assert verdict["status"] == "degraded"
        assert verdict["firing"] == ["queue_depth"]

    def test_stale_shards_rule(self):
        engine = self.engine(stale_shards=2)
        registry = [
            {"address": "a:1", "stale": True},
            {"address": "b:2", "stale": False},
        ]
        assert engine.evaluate(
            {"shards": {"registry": registry}}
        )["status"] == "ok"
        registry[1]["stale"] = True
        verdict = engine.evaluate({"shards": {"registry": registry}})
        assert verdict["firing"] == ["stale_shards"]
        assert _rule(verdict, "stale_shards")["evidence"]["stale"] == [
            "a:1", "b:2",
        ]

    def test_disk_errors_rule(self):
        engine = self.engine(disk_error_budget=2)
        assert engine.evaluate(
            {"cache": {"disk": {"errors": 2}}}
        )["status"] == "ok"
        verdict = engine.evaluate({"cache": {"disk": {"errors": 3}}})
        assert verdict["firing"] == ["disk_errors"]
        # A memory-only cache reports disk: null — never a crash.
        assert engine.evaluate(
            {"cache": {"disk": None}}
        )["status"] == "ok"

    def test_worker_loss_rule_is_event_sourced(self):
        journal = EventJournal()
        engine = HealthEngine(journal=journal)
        assert engine.evaluate({})["status"] == "ok"
        journal.emit("error", "coordinator", events.WORKER_LOST,
                     trace_id="tid-7", address="127.0.0.1:9001")
        verdict = engine.evaluate({})
        assert verdict["status"] == "degraded"
        assert verdict["firing"] == ["worker_loss"]
        evidence = _rule(verdict, "worker_loss")["evidence"]
        assert evidence["address"] == "127.0.0.1:9001"
        assert evidence["trace_id"] == "tid-7"
        # A later join clears it; a still-later loss re-fires it.
        journal.emit("info", "registry", events.WORKER_JOINED,
                     address="127.0.0.1:9002")
        assert engine.evaluate({})["status"] == "ok"
        journal.emit("error", "coordinator", events.WORKER_LOST,
                     address="127.0.0.1:9002")
        assert engine.evaluate({})["firing"] == ["worker_loss"]

    def test_transitions_are_journaled(self):
        journal = EventJournal()
        engine = HealthEngine(queue_depth=1, journal=journal)
        engine.evaluate({"scheduler": {"queued": 0}})
        assert journal.last(events.HEALTH_RULE_FIRED) is None
        engine.evaluate({"scheduler": {"queued": 5}})
        fired = journal.last(events.HEALTH_RULE_FIRED)
        assert fired["rule"] == "queue_depth"
        assert fired["severity"] == "degraded"
        # Steady firing state: no duplicate transition event.
        engine.evaluate({"scheduler": {"queued": 5}})
        assert journal.last(events.HEALTH_RULE_FIRED)["seq"] == fired["seq"]
        engine.evaluate({"scheduler": {"queued": 0}})
        cleared = journal.last(events.HEALTH_RULE_CLEARED)
        assert cleared["rule"] == "queue_depth"

    def test_critical_outranks_degraded(self):
        engine = self.engine(
            queue_depth=1, error_rate=0.1, min_samples=2
        )
        verdict = engine.evaluate({
            "scheduler": {"queued": 5, "completed": 0, "failed": 2},
        })
        assert verdict["status"] == "critical"
        assert set(verdict["firing"]) == {"queue_depth", "error_rate"}

    def test_statuses_ladder(self):
        assert STATUSES == ("ok", "degraded", "critical")


# ----------------------------------------------------------------------
# Acceptance: announced worker killed mid-run -> degraded -> replaced
# ----------------------------------------------------------------------
class TestWorkerLossEndToEnd:
    def test_killed_worker_flips_health_until_replacement_announces(
        self, graph
    ):
        serial = (
            repro.open(graph).with_cluster(machines=3)
            .engine("rads").query("q1").run()
        )
        registry = ShardRegistry()
        config = RunConfig(machines=3, backend="socket")
        w2 = None
        with QueryServer(
            graph, config, threads=1, shard_registry=registry
        ) as server:
            w1 = ShardWorker(
                announce=server.address, announce_interval=60.0
            ).start()
            try:
                _poll(lambda: len(registry) == 1,
                      message="worker announced")
                with connect(server.address, timeout=60) as client:
                    cursor = client.events()["last_seq"]
                    # The announce path journaled the join; with the
                    # roster whole, worker_loss must not fire even if
                    # earlier tests in this process lost workers.
                    healthy = client.health()
                    assert not _rule(healthy, "worker_loss")["firing"]
                    assert healthy["status"] == "ok"

                    client.submit("q2", engine="rads")  # roster warm
                    w1.crash()
                    served: list = []

                    def resubmit():
                        with connect(server.address, timeout=60) as c2:
                            served.append(
                                c2.submit("q1", engine="rads", trace=True)
                            )

                    thread = threading.Thread(target=resubmit)
                    thread.start()

                    def lost_events():
                        return [
                            r for r in client.events(
                                since=cursor
                            )["events"]
                            if r["kind"] == events.WORKER_LOST
                        ]

                    _poll(lambda: lost_events(),
                          message="worker.lost event")
                    lost = lost_events()[0]
                    assert lost["address"] == _addr(w1)
                    assert lost["level"] == "error"
                    assert lost["trace_id"]  # the active traced request

                    degraded = client.health()
                    assert degraded["status"] == "degraded"
                    assert "worker_loss" in degraded["firing"]
                    evidence = _rule(degraded, "worker_loss")["evidence"]
                    assert evidence["address"] == _addr(w1)
                    assert evidence["trace_id"] == lost["trace_id"]

                    # The replacement's announce both unblocks the
                    # waiting query and clears the rule.
                    w2 = ShardWorker(
                        announce=server.address, announce_interval=60.0
                    ).start()
                    thread.join(timeout=60)
                    assert not thread.is_alive()
                    assert served, "replacement worker never served"
                    result = served[0]
                    assert result.embedding_count == serial.embedding_count
                    assert result.makespan == serial.makespan
                    # The event's trace id is the blocked request's.
                    assert result.trace["trace_id"] == lost["trace_id"]

                    recovered = client.health()
                    assert not _rule(recovered, "worker_loss")["firing"]
                    assert recovered["status"] == "ok"
                    kinds = [
                        r["kind"]
                        for r in client.events(since=cursor)["events"]
                        if r["kind"].startswith(("worker.", "health."))
                    ]
                    assert "worker.lost" in kinds
                    assert "worker.joined" in kinds
                    assert "health.rule_fired" in kinds
                    assert "health.rule_cleared" in kinds
            finally:
                w1.close()
                if w2 is not None:
                    w2.close()
