"""First-class explain(): QueryExplanation content and serialization."""

import json

import pytest

import repro
from repro.api import default_registry
from repro.enumeration.labeled import LabeledPattern
from repro.graph import erdos_renyi
from repro.graph.labeled import label_randomly
from repro.query.explain import QueryExplanation, explain_query
from repro.query.patterns import house, named_patterns, triangle
from repro.query.plan import best_execution_plan, random_star_plan, score_plan
from repro.query.symmetry import symmetry_breaking_constraints

PAPER_ENGINES = [spec.name for spec in default_registry().specs(paper=True)]


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.12, seed=17)


class TestExplainQuery:
    def test_matches_best_plan(self):
        pattern = house()
        plan = best_execution_plan(pattern)
        ex = explain_query(pattern)
        assert [r.pivot for r in ex.rounds] == [u.pivot for u in plan.units]
        assert ex.matching_order == plan.matching_order()
        assert ex.score == pytest.approx(score_plan(plan))
        assert ex.symmetry_conditions == symmetry_breaking_constraints(
            pattern
        )
        assert ex.automorphism_count == 2
        assert ex.start_vertex == plan.start_vertex

    def test_units_cover_all_edges_once(self):
        ex = explain_query(named_patterns()["q6"])
        seen = set()
        for unit in ex.rounds:
            for e in (*unit.star_edges, *unit.sibling_edges,
                      *unit.cross_edges):
                key = (min(e), max(e))
                assert key not in seen
                seen.add(key)
        assert seen == set(named_patterns()["q6"].edges())

    def test_estimates_only_with_graph(self, graph):
        bare = explain_query(house())
        assert all(r.estimated_results is None for r in bare.rounds)
        assert bare.graph_summary is None
        rich = explain_query(house(), graph=graph)
        assert all(r.estimated_results is not None for r in rich.rounds)
        assert rich.graph_summary["num_vertices"] == graph.num_vertices

    def test_alternatives_ranked_and_exclude_chosen(self):
        ex = explain_query(house())
        scores = [alt.score for alt in ex.alternatives]
        assert scores == sorted(scores, reverse=True)
        assert all(score <= ex.score for score in scores)
        assert ex.plan_space["num_plans"] >= len(ex.alternatives) + 1

    def test_custom_plan_reported(self):
        pattern = house()
        plan = random_star_plan(pattern, seed=3)
        ex = explain_query(pattern, plan=plan)
        assert [r.pivot for r in ex.rounds] == [u.pivot for u in plan.units]

    def test_labeled_query_carries_labels(self):
        lp = LabeledPattern(triangle(), (0, 1, 0))
        ex = explain_query(lp)
        assert ex.labels == (0, 1, 0)
        assert "labels: [0, 1, 0]" in str(ex)

    def test_str_is_readable(self, graph):
        text = str(explain_query(house(), engine="RADS", graph=graph))
        for fragment in ("plan:", "round 0", "matching order:",
                         "symmetry breaking:", "runner-up", "~"):
            assert fragment in text


class TestSerialization:
    @pytest.mark.parametrize("with_graph", [False, True])
    def test_json_round_trip(self, graph, with_graph):
        ex = explain_query(
            house(), engine="RADS", graph=graph if with_graph else None
        )
        payload = json.dumps(ex.to_dict(), sort_keys=True)
        rebuilt = QueryExplanation.from_dict(json.loads(payload))
        assert rebuilt.to_dict() == ex.to_dict()
        assert rebuilt.matching_order == ex.matching_order
        assert rebuilt.rounds == ex.rounds

    def test_dict_is_json_safe(self):
        lp = LabeledPattern(triangle(), (1, 2, 1))
        payload = explain_query(lp, engine="Single").to_dict()
        json.dumps(payload)  # must not raise
        assert payload["labels"] == [1, 2, 1]
        assert payload["symmetry_conditions"] == [
            list(c) for c in symmetry_breaking_constraints(triangle())
        ]


class TestEngineExplain:
    """Acceptance: a serializable plan for all five engines on q4."""

    @pytest.mark.parametrize("name", PAPER_ENGINES)
    def test_all_paper_engines_explain_q4(self, graph, name):
        session = repro.open(graph).with_cluster(machines=3)
        ex = session.engine(name).query("q4").explain()
        data = ex.to_dict()
        json.dumps(data)
        assert ex.engine == name
        assert ex.pattern_name == "house"
        assert data["rounds"] and data["matching_order"]
        assert data["symmetry_conditions"] == [[1, 2]]
        assert all(
            r["estimated_results"] is not None for r in data["rounds"]
        )
        assert QueryExplanation.from_dict(data).to_dict() == data

    def test_session_explain_without_estimates(self, graph):
        ex = (
            repro.open(graph).engine("rads").query("q4")
            .explain(with_estimates=False)
        )
        assert all(r.estimated_results is None for r in ex.rounds)

    def test_session_explain_requires_selection(self, graph):
        session = repro.open(graph).engine("rads")
        with pytest.raises(RuntimeError, match="no query selected"):
            session.explain()
        with pytest.raises(RuntimeError, match="no engine selected"):
            repro.open(graph).query("q4").explain()

    def test_rads_explain_follows_plan_provider(self, graph):
        plan = random_star_plan(house(), seed=5)
        session = repro.open(graph).engine(
            "rads", plan_provider=lambda pattern: plan
        ).query("q4")
        ex = session.explain()
        assert [r.pivot for r in ex.rounds] == [u.pivot for u in plan.units]
        assert ex.extras["grouping"] == "proximity"

    def test_engine_specific_extras(self, graph):
        session = repro.open(graph).query("q4")
        assert "join_units" in session.engine("twintwig").explain().extras
        twigs = session.engine("tt").explain().extras["join_units"]
        assert all(len(u["vertices"]) <= 3 for u in twigs)
        assert "core" in session.engine("crystal").explain().extras
        assert "expansion_order" in session.engine("psgl").explain().extras
        assert "extension_order" in session.engine("wcoj").explain().extras
        notes = session.engine("oracle").explain().notes
        assert "oracle" in notes

    def test_labeled_explain_through_session(self, graph):
        data = label_randomly(graph, 3, seed=0)
        ex = (
            repro.open(data).engine("single").query("a:0-b:1, b-c:0, c-a")
            .explain()
        )
        assert ex.labels == (0, 1, 0)
        assert ex.pattern_name == "triangle"

    def test_direct_engine_explain_without_graph(self):
        from repro.engines.single import SingleMachineEngine

        ex = SingleMachineEngine().explain(triangle())
        assert ex.engine == "Single" and ex.num_rounds >= 1
