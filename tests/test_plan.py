"""Tests for execution plans (paper Sec. 3.2 Defs. 6-7, Sec. 4, Def. 10)."""

import pytest

from repro.query import (
    best_execution_plan,
    enumerate_execution_plans,
    plan_from_pivots,
    random_minimum_round_plan,
    random_star_plan,
    score_plan,
)
from repro.query.patterns import PAPER_QUERIES, CLIQUE_QUERIES, running_example, triangle
from repro.query.spanning import connected_domination_number


ALL_QUERIES = {**PAPER_QUERIES, **CLIQUE_QUERIES}


class TestPlanValidity:
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_best_plan_valid(self, name):
        plan = best_execution_plan(ALL_QUERIES[name])
        plan.validate()  # raises on violation

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_minimum_rounds_theorem1(self, name):
        """Theorem 1: min #units == connected domination number c_P."""
        pattern = ALL_QUERIES[name]
        plan = best_execution_plan(pattern)
        assert plan.num_rounds == connected_domination_number(pattern)

    def test_all_enumerated_plans_valid(self):
        for plan in enumerate_execution_plans(PAPER_QUERIES["q4"]):
            plan.validate()

    def test_units_cover_all_edges_exactly_once(self):
        plan = best_execution_plan(PAPER_QUERIES["q5"])
        seen = []
        for unit in plan.units:
            for e in (*unit.star_edges, *unit.sibling_edges, *unit.cross_edges):
                seen.append((min(e), max(e)))
        assert sorted(seen) == sorted(PAPER_QUERIES["q5"].edges())

    def test_expansion_edges_form_spanning_tree(self):
        """Sec. 3.2: star edges of all units form a spanning tree of P."""
        pattern = PAPER_QUERIES["q7"]
        plan = best_execution_plan(pattern)
        star_edges = [e for u in plan.units for e in u.star_edges]
        assert len(star_edges) == pattern.num_vertices - 1

    def test_plan_from_pivots(self):
        plan = plan_from_pivots(PAPER_QUERIES["q1"], [0, 1])
        plan.validate()
        assert plan.units[0].pivot == 0

    def test_plan_from_bad_pivots_raises(self):
        with pytest.raises(ValueError):
            # 0 and 2 are opposite corners of the square: 2 not adjacent to
            # 0, so it cannot be in P_0.
            plan_from_pivots(PAPER_QUERIES["q1"], [0, 2])


class TestHeuristics:
    def test_second_heuristic_minimises_start_span(self):
        for name, pattern in ALL_QUERIES.items():
            plan = best_execution_plan(pattern)
            spans = [
                pattern.span(p.start_vertex)
                for p in enumerate_execution_plans(pattern)
            ]
            assert pattern.span(plan.start_vertex) == min(spans), name

    def test_score_prefers_early_verification(self):
        """Paper Example 5: more verification edges earlier => higher score."""
        pattern = running_example()
        plans = enumerate_execution_plans(pattern)
        best = best_execution_plan(pattern)
        assert score_plan(best) == max(
            score_plan(p) for p in plans
            if pattern.span(p.start_vertex) == pattern.span(best.start_vertex)
        )

    def test_single_unit_for_stars_and_cliques(self):
        assert best_execution_plan(triangle()).num_rounds == 1
        assert best_execution_plan(CLIQUE_QUERIES["cq1"]).num_rounds == 1


class TestMatchingOrder:
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_total_order(self, name):
        plan = best_execution_plan(ALL_QUERIES[name])
        order = plan.matching_order()
        assert sorted(order) == list(ALL_QUERIES[name].vertices())

    def test_def10_pivot_before_leaves(self):
        plan = best_execution_plan(PAPER_QUERIES["q5"])
        order = plan.matching_order()
        pos = {u: i for i, u in enumerate(order)}
        for unit in plan.units:
            for leaf in unit.leaves:
                assert pos[unit.pivot] < pos[leaf]

    def test_def10_unit_blocks_in_sequence(self):
        plan = best_execution_plan(PAPER_QUERIES["q8"])
        order = plan.matching_order()
        pos = {u: i for i, u in enumerate(order)}
        for i in range(len(plan.units) - 1):
            for a in plan.units[i].leaves:
                for b in plan.units[i + 1].leaves:
                    assert pos[a] < pos[b]

    def test_subpattern_vertices_prefix(self):
        plan = best_execution_plan(PAPER_QUERIES["q5"])
        for i in range(plan.num_rounds):
            prefix = plan.subpattern_vertices(i)
            assert prefix == plan.matching_order()[: len(prefix)]


class TestRandomPlans:
    def test_rans_valid(self):
        for seed in range(5):
            plan = random_star_plan(PAPER_QUERIES["q6"], seed=seed)
            plan.validate()

    def test_ranm_valid_and_minimum(self):
        pattern = PAPER_QUERIES["q7"]
        for seed in range(5):
            plan = random_minimum_round_plan(pattern, seed=seed)
            plan.validate()
            assert plan.num_rounds == connected_domination_number(pattern)

    def test_rans_can_exceed_minimum_rounds(self):
        pattern = running_example()
        rounds = {
            random_star_plan(pattern, seed=s).num_rounds for s in range(20)
        }
        assert max(rounds) >= connected_domination_number(pattern)
