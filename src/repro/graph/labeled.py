"""Vertex-labeled graph view (TurboIso substrate feature).

The paper assumes unlabeled graphs, but its single-machine algorithm,
TurboIso, is a *labeled* matcher; this module supplies the labeled layer
so the SM-E substrate is usable the way its original authors intended.
A :class:`LabeledGraph` wraps an immutable :class:`repro.graph.Graph`
with an integer label per vertex and precomputes the inverted index and
neighbourhood label frequencies (NLF) that labeled matching filters on.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

import numpy as np

from repro.graph.graph import Graph


class LabeledGraph:
    """A data graph whose vertices carry integer labels."""

    def __init__(self, graph: Graph, labels: Iterable[int]):
        label_array = np.asarray(list(labels), dtype=np.int64)
        if len(label_array) != graph.num_vertices:
            raise ValueError(
                f"expected {graph.num_vertices} labels, "
                f"got {len(label_array)}"
            )
        if len(label_array) and label_array.min() < 0:
            raise ValueError("labels must be non-negative integers")
        self._graph = graph
        self._labels = label_array
        self._by_label: dict[int, np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying unlabeled graph."""
        return self._graph

    @property
    def labels(self) -> np.ndarray:
        """Label array indexed by vertex id (read-only view)."""
        return self._labels

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._graph.num_edges

    def label(self, v: int) -> int:
        """Label of vertex ``v``."""
        return int(self._labels[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour array of ``v``."""
        return self._graph.neighbors(v)

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return self._graph.degree(v)

    # ------------------------------------------------------------------
    def vertices_with_label(self, label: int) -> np.ndarray:
        """Sorted array of vertices carrying ``label`` (inverted index)."""
        if self._by_label is None:
            order = np.argsort(self._labels, kind="stable")
            boundaries = np.searchsorted(
                self._labels[order], np.arange(self._labels.max() + 2)
            ) if len(self._labels) else np.zeros(1, dtype=np.int64)
            self._by_label = {}
            for lbl in np.unique(self._labels):
                lbl = int(lbl)
                lo, hi = boundaries[lbl], boundaries[lbl + 1]
                self._by_label[lbl] = np.sort(order[lo:hi]).astype(np.int64)
        return self._by_label.get(
            int(label), np.empty(0, dtype=np.int64)
        )

    def label_frequencies(self) -> Counter[int]:
        """Histogram of labels over all vertices."""
        return Counter(int(x) for x in self._labels)

    def neighborhood_label_frequency(self, v: int) -> Counter[int]:
        """NLF of ``v``: how many neighbours carry each label."""
        return Counter(int(self._labels[w]) for w in self.neighbors(v))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        distinct = len(np.unique(self._labels)) if len(self._labels) else 0
        return (
            f"LabeledGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"labels={distinct})"
        )


def label_by_degree_buckets(graph: Graph, num_labels: int) -> LabeledGraph:
    """Synthetic labeling: bucket vertices into labels by degree rank.

    Deterministic helper for tests and examples: high-degree vertices get
    high labels, splitting the graph into ``num_labels`` roughly equal
    buckets.
    """
    if num_labels < 1:
        raise ValueError("need at least one label")
    degrees = graph.degrees()
    ranks = np.argsort(np.argsort(degrees, kind="stable"), kind="stable")
    labels = (ranks * num_labels) // max(1, graph.num_vertices)
    return LabeledGraph(graph, np.minimum(labels, num_labels - 1))


def label_randomly(
    graph: Graph,
    num_labels: int,
    seed: int = 0,
    weights: Mapping[int, float] | None = None,
) -> LabeledGraph:
    """Synthetic labeling: i.i.d. labels, optionally weighted."""
    if num_labels < 1:
        raise ValueError("need at least one label")
    rng = np.random.default_rng(seed)
    if weights is None:
        labels = rng.integers(0, num_labels, size=graph.num_vertices)
    else:
        choices = np.arange(num_labels)
        probs = np.asarray(
            [weights.get(int(c), 0.0) for c in choices], dtype=float
        )
        if probs.sum() <= 0:
            raise ValueError("weights must sum to a positive value")
        probs = probs / probs.sum()
        labels = rng.choice(choices, size=graph.num_vertices, p=probs)
    return LabeledGraph(graph, labels)
