"""NetworkX interoperability.

Downstream users usually have graphs in `networkx` form; these helpers
convert both ways without copying more than the edge list.  NetworkX is a
soft dependency of this module only — the rest of the package never
imports it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.graph import Graph
from repro.query.pattern import Pattern

if TYPE_CHECKING:  # pragma: no cover
    import networkx


def graph_to_networkx(graph: Graph) -> "networkx.Graph":
    """Convert a :class:`repro.graph.Graph` to an undirected nx.Graph."""
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(range(graph.num_vertices))
    out.add_edges_from(graph.edges())
    return out


def graph_from_networkx(nx_graph: "networkx.Graph") -> tuple[Graph, dict]:
    """Convert an undirected nx.Graph to a :class:`Graph`.

    Node identifiers may be arbitrary hashables; they are densified to
    ``0..n-1``.  Returns the graph and the original-node -> vertex-id map.
    Self loops are dropped (the Graph type rejects them); directed graphs
    are rejected.
    """
    if nx_graph.is_directed():
        raise ValueError("expected an undirected networkx graph")
    nodes = _sorted_nodes(nx_graph)
    remap = {node: i for i, node in enumerate(nodes)}
    edges = [
        (remap[u], remap[v])
        for u, v in nx_graph.edges()
        if u != v
    ]
    return Graph.from_edges(len(nodes), edges), remap


def _sorted_nodes(nx_graph: "networkx.Graph") -> list:
    """Deterministic node order: natural sort, repr-sort as fallback
    (mixed-type node sets are not mutually comparable)."""
    nodes = list(nx_graph.nodes())
    try:
        return sorted(nodes)
    except TypeError:
        return sorted(nodes, key=repr)


def pattern_to_networkx(pattern: Pattern) -> "networkx.Graph":
    """Convert a query pattern to an nx.Graph (for drawing, inspection)."""
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(pattern.vertices())
    out.add_edges_from(pattern.edges())
    return out


def pattern_from_networkx(
    nx_graph: "networkx.Graph", name: str | None = None
) -> tuple[Pattern, dict]:
    """Convert an nx.Graph to a connected query :class:`Pattern`."""
    if nx_graph.is_directed():
        raise ValueError("expected an undirected networkx graph")
    nodes = _sorted_nodes(nx_graph)
    remap = {node: i for i, node in enumerate(nodes)}
    edges = [
        (remap[u], remap[v]) for u, v in nx_graph.edges() if u != v
    ]
    pattern = Pattern(len(nodes), edges, name=name)
    if not pattern.is_connected():
        raise ValueError("query patterns must be connected")
    return pattern, remap
