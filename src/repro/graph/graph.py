"""Immutable undirected graph stored in CSR (compressed sparse row) form.

Vertex ids are dense integers ``0..n-1``.  Neighbour lists are sorted
``numpy.int64`` arrays, which makes neighbourhood intersection (the hot
operation of every subgraph-enumeration engine in this repository) a sorted
merge instead of a hash probe.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np


def _frozen(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array`` (zero-copy).

    The CSR arrays back cached state all over the repository — the
    :meth:`Graph.fingerprint` digest, result-cache keys, shared-memory
    segments attached by worker processes.  Freezing a *view* (not a
    copy) keeps those zero-copy paths intact while making accidental
    in-place mutation raise instead of silently serving a stale digest.
    """
    if array.flags.writeable:
        array = array.view()
        array.flags.writeable = False
    return array


def canonical_edge_array(
    edges: Iterable[tuple[int, int]], num_vertices: int, *, field: str = "edges"
) -> np.ndarray:
    """Normalise an edge iterable to a ``(k, 2)`` int64 array, ``u < v``.

    Shared by :meth:`Graph.apply_batch` and the streaming delta matcher
    so both agree on the canonical orientation and deduplication of a
    batch.  ``field`` names the offending argument in error messages.
    """
    edge_list = list(edges)
    if not edge_list:
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(edge_list, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"{field} must be (u, v) pairs")
    if (arr[:, 0] == arr[:, 1]).any():
        raise ValueError(f"{field}: self loops are not allowed")
    if arr.min() < 0 or arr.max() >= num_vertices:
        raise ValueError(f"{field}: edge endpoint out of range")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    keys = np.unique(lo * np.int64(num_vertices) + hi)
    return np.column_stack([keys // num_vertices, keys % num_vertices])


def _merge_adjacency_chunk(task: tuple) -> np.ndarray:
    """Merge one vertex-range chunk of a delta CSR build.

    Module-level (not a closure) so parallel executors can pickle it.
    ``task`` carries the chunk's surviving old entries and its new
    directed additions; the result is the chunk's neighbour segment
    sorted by ``(src, dst)``, ready to concatenate with its siblings.
    """
    old_src, old_dst, add_src, add_dst = task
    src = np.concatenate([old_src, add_src])
    dst = np.concatenate([old_dst, add_dst])
    order = np.lexsort((dst, src))
    return dst[order]


class Graph:
    """An immutable, unlabeled, undirected graph.

    Parameters
    ----------
    indptr:
        CSR row-pointer array of length ``n + 1``.
    indices:
        CSR column-index array; ``indices[indptr[v]:indptr[v+1]]`` is the
        sorted neighbour list of ``v``.

    Use :meth:`from_edges` or :class:`repro.graph.builder.GraphBuilder`
    instead of calling the constructor directly.
    """

    __slots__ = ("_indptr", "_indices", "_num_edges", "_fingerprint")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self._indptr = _frozen(np.asarray(indptr, dtype=np.int64))
        self._indices = _frozen(np.asarray(indices, dtype=np.int64))
        self._num_edges = int(len(self._indices) // 2)
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[tuple[int, int]]
    ) -> "Graph":
        """Build a graph from an iterable of undirected edges.

        Self loops are rejected; duplicate edges are collapsed.
        """
        edge_list = list(edges)
        if not edge_list:
            return cls(np.zeros(num_vertices + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64))
        arr = np.asarray(edge_list, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")
        if (arr[:, 0] == arr[:, 1]).any():
            raise ValueError("self loops are not allowed")
        if arr.min() < 0 or arr.max() >= num_vertices:
            raise ValueError("edge endpoint out of range")
        # Symmetrise, deduplicate.
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        keys = lo * num_vertices + hi
        _, unique_idx = np.unique(keys, return_index=True)
        lo, hi = lo[unique_idx], hi[unique_idx]
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst)

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Iterable[int]]) -> "Graph":
        """Build from a sequence of per-vertex neighbour iterables."""
        edges = [
            (u, v)
            for u, neighbours in enumerate(adjacency)
            for v in neighbours
            if u < v
        ]
        # Edges listed only once above would drop (u, v) with u > v that
        # lack the mirror entry, so collect both directions explicitly.
        extra = [
            (v, u)
            for u, neighbours in enumerate(adjacency)
            for v in neighbours
            if u > v
        ]
        return cls.from_edges(len(adjacency), edges + extra)

    def apply_batch(
        self,
        additions: Iterable[tuple[int, int]] = (),
        deletions: Iterable[tuple[int, int]] = (),
        *,
        executor=None,
    ) -> "Graph":
        """A new snapshot with ``additions`` inserted and ``deletions`` removed.

        This is the streaming mutation primitive: ``self`` is untouched
        (in-flight queries keep reading their snapshot) and the result is
        a fresh CSR built by *delta merge* — unaffected neighbour lists
        are copied in bulk and only the touched vertices pay a sort —
        rather than a full :meth:`from_edges` rebuild.  The merge is
        chunked over vertex ranges; pass an active
        :class:`repro.runtime.executor.Executor` to fan the chunks out
        through its :meth:`~repro.runtime.executor.Executor.map`.

        Batches are validated strictly so delta semantics stay exact:
        adding an edge that already exists, deleting one that does not,
        or listing the same edge in both sets raises ``ValueError``
        naming the offending argument.
        """
        n = self.num_vertices
        add = canonical_edge_array(additions, n, field="additions")
        delete = canonical_edge_array(deletions, n, field="deletions")
        if len(add) == 0 and len(delete) == 0:
            return Graph(self._indptr, self._indices)
        if len(add) and len(delete):
            add_keys = add[:, 0] * np.int64(n) + add[:, 1]
            del_keys = delete[:, 0] * np.int64(n) + delete[:, 1]
            overlap = np.intersect1d(add_keys, del_keys)
            if len(overlap):
                u, v = int(overlap[0]) // n, int(overlap[0]) % n
                raise ValueError(
                    f"additions and deletions overlap on edge ({u}, {v})"
                )
        for u, v in add:
            if self.has_edge(int(u), int(v)):
                raise ValueError(
                    f"additions: edge ({int(u)}, {int(v)}) already present"
                )
        for u, v in delete:
            if not self.has_edge(int(u), int(v)):
                raise ValueError(
                    f"deletions: edge ({int(u)}, {int(v)}) not present"
                )

        # Directed views of the batch, sorted by (src, dst).
        add_src = np.concatenate([add[:, 0], add[:, 1]])
        add_dst = np.concatenate([add[:, 1], add[:, 0]])
        order = np.lexsort((add_dst, add_src))
        add_src, add_dst = add_src[order], add_dst[order]
        del_src = np.concatenate([delete[:, 0], delete[:, 1]])
        del_dst = np.concatenate([delete[:, 1], delete[:, 0]])

        # Mark deleted slots in the old indices array.
        keep = np.ones(len(self._indices), dtype=bool)
        for u, v in zip(del_src, del_dst):
            base = int(self._indptr[u])
            offset = int(np.searchsorted(self.neighbors(int(u)), v))
            keep[base + offset] = False

        degrees = self.degrees()
        add_counts = np.bincount(add_src, minlength=n)
        del_counts = np.bincount(del_src, minlength=n)
        new_degrees = degrees + add_counts - del_counts
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(new_degrees, out=indptr[1:])

        # Old entries' source ids, needed to keep chunk merges sorted.
        old_src_all = np.repeat(np.arange(n, dtype=np.int64), degrees)

        parallel = executor is not None and getattr(executor, "parallel", False)
        workers = getattr(executor, "workers", 1) if parallel else 1
        num_chunks = min(n, max(1, workers * 4)) if parallel else 1
        bounds = np.linspace(0, n, num_chunks + 1).astype(np.int64)
        tasks = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if lo == hi:
                continue
            s, e = int(self._indptr[lo]), int(self._indptr[hi])
            chunk_keep = keep[s:e]
            a_lo = int(np.searchsorted(add_src, lo, side="left"))
            a_hi = int(np.searchsorted(add_src, hi, side="left"))
            tasks.append((
                old_src_all[s:e][chunk_keep],
                self._indices[s:e][chunk_keep],
                add_src[a_lo:a_hi],
                add_dst[a_lo:a_hi],
            ))
        if parallel and len(tasks) > 1:
            segments = executor.map(_merge_adjacency_chunk, tasks)
        else:
            segments = [_merge_adjacency_chunk(task) for task in tasks]
        indices = (
            np.concatenate(segments) if segments else np.empty(0, dtype=np.int64)
        )
        return Graph(indptr, indices)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (read-only view)."""
        return self._indices

    def vertices(self) -> range:
        """Iterate vertex ids ``0..n-1``."""
        return range(self.num_vertices)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour array of ``v`` (zero-copy view)."""
        return self._indices[self._indptr[v]:self._indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree array for all vertices."""
        return np.diff(self._indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge ``(u, v)`` exists."""
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < len(nbrs) and int(nbrs[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in self.vertices():
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the adjacency structure (hex SHA-256).

        Equal iff the CSR arrays are equal, i.e. iff the graphs compare
        ``==``.  Computed once and cached; the CSR arrays are frozen
        read-only at construction, so the cached digest cannot go stale —
        derived snapshots (:meth:`apply_batch`) are new ``Graph`` objects
        with their own cache.  Used by :mod:`repro.service` as the graph
        component of result-cache keys.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(b"csr-graph-v1")
            digest.update(np.ascontiguousarray(self._indptr).tobytes())
            digest.update(np.ascontiguousarray(self._indices).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def average_degree(self) -> float:
        """Mean vertex degree."""
        if self.num_vertices == 0:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    def storage_bytes(self) -> int:
        """Bytes needed to store the adjacency structure (CSR arrays)."""
        return int(self._indptr.nbytes + self._indices.nbytes)

    def subgraph(self, vertex_set: Iterable[int]) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph on ``vertex_set``.

        Returns the subgraph (with vertices relabelled ``0..k-1``) and the
        old-id -> new-id mapping.
        """
        verts = sorted(set(int(v) for v in vertex_set))
        remap = {v: i for i, v in enumerate(verts)}
        member = np.zeros(self.num_vertices, dtype=bool)
        member[verts] = True
        edges = []
        for v in verts:
            for w in self.neighbors(v):
                w = int(w)
                if v < w and member[w]:
                    edges.append((remap[v], remap[w]))
        return Graph.from_edges(len(verts), edges), remap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges))
