"""Immutable undirected graph stored in CSR (compressed sparse row) form.

Vertex ids are dense integers ``0..n-1``.  Neighbour lists are sorted
``numpy.int64`` arrays, which makes neighbourhood intersection (the hot
operation of every subgraph-enumeration engine in this repository) a sorted
merge instead of a hash probe.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np


class Graph:
    """An immutable, unlabeled, undirected graph.

    Parameters
    ----------
    indptr:
        CSR row-pointer array of length ``n + 1``.
    indices:
        CSR column-index array; ``indices[indptr[v]:indptr[v+1]]`` is the
        sorted neighbour list of ``v``.

    Use :meth:`from_edges` or :class:`repro.graph.builder.GraphBuilder`
    instead of calling the constructor directly.
    """

    __slots__ = ("_indptr", "_indices", "_num_edges", "_fingerprint")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._indices = np.asarray(indices, dtype=np.int64)
        self._num_edges = int(len(self._indices) // 2)
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[tuple[int, int]]
    ) -> "Graph":
        """Build a graph from an iterable of undirected edges.

        Self loops are rejected; duplicate edges are collapsed.
        """
        edge_list = list(edges)
        if not edge_list:
            return cls(np.zeros(num_vertices + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64))
        arr = np.asarray(edge_list, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be (u, v) pairs")
        if (arr[:, 0] == arr[:, 1]).any():
            raise ValueError("self loops are not allowed")
        if arr.min() < 0 or arr.max() >= num_vertices:
            raise ValueError("edge endpoint out of range")
        # Symmetrise, deduplicate.
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        keys = lo * num_vertices + hi
        _, unique_idx = np.unique(keys, return_index=True)
        lo, hi = lo[unique_idx], hi[unique_idx]
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst)

    @classmethod
    def from_adjacency(cls, adjacency: Sequence[Iterable[int]]) -> "Graph":
        """Build from a sequence of per-vertex neighbour iterables."""
        edges = [
            (u, v)
            for u, neighbours in enumerate(adjacency)
            for v in neighbours
            if u < v
        ]
        # Edges listed only once above would drop (u, v) with u > v that
        # lack the mirror entry, so collect both directions explicitly.
        extra = [
            (v, u)
            for u, neighbours in enumerate(adjacency)
            for v in neighbours
            if u > v
        ]
        return cls.from_edges(len(adjacency), edges + extra)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (read-only view)."""
        return self._indices

    def vertices(self) -> range:
        """Iterate vertex ids ``0..n-1``."""
        return range(self.num_vertices)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour array of ``v`` (zero-copy view)."""
        return self._indices[self._indptr[v]:self._indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree array for all vertices."""
        return np.diff(self._indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge ``(u, v)`` exists."""
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < len(nbrs) and int(nbrs[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in self.vertices():
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the adjacency structure (hex SHA-256).

        Equal iff the CSR arrays are equal, i.e. iff the graphs compare
        ``==``.  Computed once and cached (the graph is immutable); used by
        :mod:`repro.service` as the graph component of result-cache keys.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(b"csr-graph-v1")
            digest.update(np.ascontiguousarray(self._indptr).tobytes())
            digest.update(np.ascontiguousarray(self._indices).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def average_degree(self) -> float:
        """Mean vertex degree."""
        if self.num_vertices == 0:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    def storage_bytes(self) -> int:
        """Bytes needed to store the adjacency structure (CSR arrays)."""
        return int(self._indptr.nbytes + self._indices.nbytes)

    def subgraph(self, vertex_set: Iterable[int]) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph on ``vertex_set``.

        Returns the subgraph (with vertices relabelled ``0..k-1``) and the
        old-id -> new-id mapping.
        """
        verts = sorted(set(int(v) for v in vertex_set))
        remap = {v: i for i, v in enumerate(verts)}
        member = np.zeros(self.num_vertices, dtype=bool)
        member[verts] = True
        edges = []
        for v in verts:
            for w in self.neighbors(v):
                w = int(w)
                if v < w and member[w]:
                    edges.append((remap[v], remap[w]))
        return Graph.from_edges(len(verts), edges), remap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_edges))
