"""Graph persistence.

Three interchangeable formats:

- *adjacency text* — the paper's on-disk layout: one line per vertex, the
  first token is the vertex id, the rest its neighbours;
- *edge-list text* — the format most public graph datasets (SNAP, LAW)
  ship in: one ``u v`` pair per line, ``#`` comments allowed;
- *binary (npz)* — the CSR arrays verbatim; loads orders of magnitude
  faster and is what the benchmark harness caches.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.graph import Graph


def save_adjacency_text(graph: Graph, path: str | os.PathLike) -> int:
    """Write ``graph`` as plain-text adjacency lists; returns bytes written."""
    with open(path, "w", encoding="ascii") as fh:
        for v in graph.vertices():
            nbrs = " ".join(str(int(w)) for w in graph.neighbors(v))
            fh.write(f"{v} {nbrs}\n" if nbrs else f"{v}\n")
    return os.path.getsize(path)


def load_adjacency_text(path: str | os.PathLike) -> Graph:
    """Load a graph written by :func:`save_adjacency_text`."""
    edges: list[tuple[int, int]] = []
    max_vertex = -1
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            tokens = line.split()
            if not tokens:
                continue
            v = int(tokens[0])
            max_vertex = max(max_vertex, v)
            for tok in tokens[1:]:
                w = int(tok)
                max_vertex = max(max_vertex, w)
                if v < w:
                    edges.append((v, w))
    return Graph.from_edges(max_vertex + 1, edges)


def save_edge_list(graph: Graph, path: str | os.PathLike) -> int:
    """Write ``graph`` as a SNAP-style edge list; returns bytes written."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"# vertices {graph.num_vertices} edges {graph.num_edges}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")
    return os.path.getsize(path)


def load_edge_list(
    path: str | os.PathLike, num_vertices: int | None = None
) -> Graph:
    """Load a SNAP-style edge list (``#`` lines are comments).

    Vertex count is taken from the header comment when present, from
    ``num_vertices`` when given, else inferred as ``max id + 1``.
    """
    edges: list[tuple[int, int]] = []
    max_vertex = -1
    header_vertices: int | None = None
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("#"):
                tokens = line.split()
                if "vertices" in tokens:
                    header_vertices = int(tokens[tokens.index("vertices") + 1])
                continue
            tokens = line.split()
            if len(tokens) < 2:
                continue
            u, v = int(tokens[0]), int(tokens[1])
            if u == v:
                continue
            max_vertex = max(max_vertex, u, v)
            edges.append((u, v))
    n = num_vertices or header_vertices or (max_vertex + 1)
    return Graph.from_edges(n, edges)


def save_binary(graph: Graph, path: str | os.PathLike) -> int:
    """Persist the CSR arrays as a compressed ``.npz``; returns file size."""
    # A file handle stops np.savez appending ".npz" when the caller's
    # suffix differs in case (saving "ROAD.NPZ" must not create
    # "ROAD.NPZ.npz" — loaders dispatch case-insensitively).
    with open(path, "wb") as fh:
        np.savez_compressed(fh, indptr=graph.indptr, indices=graph.indices)
    return os.path.getsize(path)


def load_binary(path: str | os.PathLike) -> Graph:
    """Load a graph written by :func:`save_binary`."""
    with np.load(path) as data:
        return Graph(data["indptr"], data["indices"])
