"""Clique enumeration (Bron-Kerbosch with pivoting).

The Crystal baseline (Qiao et al., reimplemented in
:mod:`repro.engines.crystal`) pre-builds an index of all cliques of the data
graph; SEED uses local clique listing for its clique decomposition units.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.algorithms import degeneracy_order


def maximal_cliques(graph: Graph, max_count: int | None = None) -> list[tuple[int, ...]]:
    """All maximal cliques via Bron-Kerbosch with degeneracy ordering.

    Parameters
    ----------
    max_count:
        Optional safety cap; enumeration stops once reached.
    """
    adjacency = [set(int(w) for w in graph.neighbors(v)) for v in graph.vertices()]
    result: list[tuple[int, ...]] = []

    def expand(r: list[int], p: set[int], x: set[int]) -> bool:
        if max_count is not None and len(result) >= max_count:
            return False
        if not p and not x:
            result.append(tuple(sorted(r)))
            return True
        pivot = max(p | x, key=lambda v: len(adjacency[v] & p))
        for v in sorted(p - adjacency[pivot]):
            if not expand(r + [v], p & adjacency[v], x & adjacency[v]):
                return False
            p = p - {v}
            x = x | {v}
        return True

    order = degeneracy_order(graph)
    position = {v: i for i, v in enumerate(order)}
    for v in order:
        later = {w for w in adjacency[v] if position[w] > position[v]}
        earlier = {w for w in adjacency[v] if position[w] < position[v]}
        if not expand([v], later, earlier):
            break
    return result


def enumerate_cliques(
    graph: Graph, min_size: int = 3, max_size: int = 5,
    max_count: int | None = None,
) -> list[tuple[int, ...]]:
    """All cliques (not only maximal) with ``min_size <= size <= max_size``.

    Derived from the maximal cliques by sub-selection, with global
    deduplication.  This is exactly what the Crystal index stores.
    """
    seen: set[tuple[int, ...]] = set()
    for clique in maximal_cliques(graph):
        k = len(clique)
        for size in range(min_size, min(max_size, k) + 1):
            for sub in combinations(clique, size):
                seen.add(sub)
                if max_count is not None and len(seen) >= max_count:
                    return sorted(seen)
    return sorted(seen)


def local_triangles(graph: Graph, v: int) -> list[tuple[int, int]]:
    """Pairs ``(a, b)`` with ``a < b`` forming a triangle with ``v``."""
    nbrs = graph.neighbors(v)
    result: list[tuple[int, int]] = []
    for i, a in enumerate(nbrs):
        a = int(a)
        nbrs_a = graph.neighbors(a)
        common = np.intersect1d(nbrs[i + 1:], nbrs_a, assume_unique=True)
        result.extend((a, int(b)) for b in common)
    return result
