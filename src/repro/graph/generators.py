"""Seeded synthetic graph generators.

These stand in for the paper's real datasets (DBLP, RoadNet, LiveJournal,
UK2002), which are not available offline.  Each generator reproduces the
structural property the paper leans on:

- :func:`grid_road_network` — near-planar, tiny average degree, enormous
  diameter (RoadNet): most vertices end up far from partition borders, so
  RADS' SM-E phase dominates.
- :func:`community_graph` — overlapping small communities (DBLP): moderate
  density, many small cliques.
- :func:`preferential_attachment` / :func:`powerlaw_cluster` — heavy-tailed
  degree distributions (LiveJournal / UK2002): join-based engines blow up on
  star intermediate results.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph


def erdos_renyi(num_vertices: int, edge_prob: float, seed: int = 0) -> Graph:
    """G(n, p) random graph (used mostly by tests)."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(num_vertices)
    # Vectorised upper-triangle sampling keeps test graphs cheap.
    for u in range(num_vertices - 1):
        hits = np.where(rng.random(num_vertices - u - 1) < edge_prob)[0]
        for offset in hits:
            builder.add_edge(u, u + 1 + int(offset))
    return builder.build()


def grid_road_network(
    width: int, height: int, extra_edge_prob: float = 0.05, seed: int = 0
) -> Graph:
    """Road-network analogue: a W x H grid with sparse diagonal shortcuts.

    Average degree is slightly above 2 (paper's RoadNet: 1.05 per direction);
    the diameter grows with ``width + height``.
    """
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(width * height)

    def vid(x: int, y: int) -> int:
        return y * width + x

    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                builder.add_edge(vid(x, y), vid(x + 1, y))
            if y + 1 < height:
                builder.add_edge(vid(x, y), vid(x, y + 1))
            if (
                x + 1 < width
                and y + 1 < height
                and rng.random() < extra_edge_prob
            ):
                builder.add_edge(vid(x, y), vid(x + 1, y + 1))
    return builder.build()


def preferential_attachment(
    num_vertices: int, edges_per_vertex: int, seed: int = 0
) -> Graph:
    """Barabasi-Albert preferential attachment (heavy-tailed degrees)."""
    if num_vertices <= edges_per_vertex:
        raise ValueError("need num_vertices > edges_per_vertex")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(num_vertices)
    # Seed clique keeps early attachment well-defined.
    targets = list(range(edges_per_vertex + 1))
    for u in targets:
        for v in targets:
            if u < v:
                builder.add_edge(u, v)
    repeated: list[int] = []
    for v in targets:
        repeated.extend([v] * edges_per_vertex)
    for v in range(edges_per_vertex + 1, num_vertices):
        chosen: set[int] = set()
        while len(chosen) < edges_per_vertex:
            chosen.add(repeated[int(rng.integers(len(repeated)))])
        for w in chosen:
            builder.add_edge(v, w)
            repeated.append(w)
        repeated.extend([v] * edges_per_vertex)
    return builder.build()


def powerlaw_cluster(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_prob: float = 0.5,
    seed: int = 0,
) -> Graph:
    """Holme-Kim power-law graph with tunable clustering.

    Like preferential attachment, but each new edge is followed with
    probability ``triangle_prob`` by a triangle-closing edge.  Produces the
    triangle-rich heavy-tailed structure of social/web graphs.
    """
    if num_vertices <= edges_per_vertex:
        raise ValueError("need num_vertices > edges_per_vertex")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(num_vertices)
    targets = list(range(edges_per_vertex + 1))
    for u in targets:
        for v in targets:
            if u < v:
                builder.add_edge(u, v)
    repeated: list[int] = []
    for v in targets:
        repeated.extend([v] * edges_per_vertex)
    adjacency: list[list[int]] = [list() for _ in range(num_vertices)]
    for u in targets:
        adjacency[u] = [v for v in targets if v != u]
    for v in range(edges_per_vertex + 1, num_vertices):
        added = 0
        while added < edges_per_vertex:
            w = repeated[int(rng.integers(len(repeated)))]
            if w == v or not builder.add_edge(v, w):
                continue
            adjacency[v].append(w)
            adjacency[w].append(v)
            repeated.append(w)
            added += 1
            # Triangle-closing step.
            if (
                added < edges_per_vertex
                and adjacency[w]
                and rng.random() < triangle_prob
            ):
                t = adjacency[w][int(rng.integers(len(adjacency[w])))]
                if t != v and builder.add_edge(v, t):
                    adjacency[v].append(t)
                    adjacency[t].append(v)
                    repeated.append(t)
                    added += 1
        repeated.extend([v] * edges_per_vertex)
    return builder.build()


def community_graph(
    num_communities: int,
    community_size: int,
    intra_prob: float = 0.6,
    inter_edges: int = 2,
    seed: int = 0,
) -> Graph:
    """Co-authorship analogue: dense communities plus sparse bridges (DBLP)."""
    rng = np.random.default_rng(seed)
    num_vertices = num_communities * community_size
    builder = GraphBuilder(num_vertices)
    for c in range(num_communities):
        base = c * community_size
        for i in range(community_size):
            for j in range(i + 1, community_size):
                if rng.random() < intra_prob:
                    builder.add_edge(base + i, base + j)
    for c in range(num_communities):
        for _ in range(inter_edges):
            other = int(rng.integers(num_communities))
            if other == c:
                continue
            u = c * community_size + int(rng.integers(community_size))
            v = other * community_size + int(rng.integers(community_size))
            builder.add_edge(u, v)
    return builder.build()
