"""Graph substrate: CSR-backed undirected graphs, builders, IO, algorithms."""

from repro.graph.graph import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.io import load_adjacency_text, save_adjacency_text
from repro.graph.algorithms import (
    bfs_distances,
    connected_components,
    degeneracy_order,
    diameter_lower_bound,
    k_core,
    multi_source_bfs,
    triangle_count,
    triangles,
)
from repro.graph.cliques import enumerate_cliques, maximal_cliques
from repro.graph.labeled import (
    LabeledGraph,
    label_by_degree_buckets,
    label_randomly,
)
from repro.graph.interop import (
    graph_from_networkx,
    graph_to_networkx,
    pattern_from_networkx,
    pattern_to_networkx,
)
from repro.graph.generators import (
    community_graph,
    erdos_renyi,
    grid_road_network,
    powerlaw_cluster,
    preferential_attachment,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    "load_adjacency_text",
    "save_adjacency_text",
    "bfs_distances",
    "multi_source_bfs",
    "connected_components",
    "diameter_lower_bound",
    "degeneracy_order",
    "k_core",
    "triangles",
    "triangle_count",
    "enumerate_cliques",
    "maximal_cliques",
    "LabeledGraph",
    "label_by_degree_buckets",
    "label_randomly",
    "graph_from_networkx",
    "graph_to_networkx",
    "pattern_from_networkx",
    "pattern_to_networkx",
    "grid_road_network",
    "erdos_renyi",
    "preferential_attachment",
    "powerlaw_cluster",
    "community_graph",
]
