"""Classic graph algorithms used across the reproduction.

Everything here operates on :class:`repro.graph.Graph` and is implemented
from scratch (no networkx) because these algorithms are substrates the paper
depends on: BFS distances feed border-distance computation (Sec. 3.1),
triangle/clique listing feeds SEED decomposition units and the Crystal index,
and diameter estimation feeds the dataset-profile table (Table 1).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.graph.graph import Graph

UNREACHED = -1


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Unweighted shortest-path distances from ``source``.

    Unreached vertices get :data:`UNREACHED`.
    """
    return multi_source_bfs(graph, [source])


def multi_source_bfs(graph: Graph, sources: Iterable[int]) -> np.ndarray:
    """Distances to the nearest vertex of ``sources`` (-1 if unreachable)."""
    dist = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
    queue: deque[int] = deque()
    for s in sources:
        if dist[s] == UNREACHED:
            dist[s] = 0
            queue.append(int(s))
    while queue:
        v = queue.popleft()
        dv = dist[v] + 1
        for w in graph.neighbors(v):
            if dist[w] == UNREACHED:
                dist[w] = dv
                queue.append(int(w))
    return dist


def connected_components(graph: Graph) -> np.ndarray:
    """Component label per vertex (labels are 0-based, in discovery order)."""
    label = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
    current = 0
    for root in graph.vertices():
        if label[root] != UNREACHED:
            continue
        label[root] = current
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if label[w] == UNREACHED:
                    label[w] = current
                    queue.append(int(w))
        current += 1
    return label


def eccentricity(graph: Graph, v: int) -> int:
    """Largest finite BFS distance from ``v``."""
    dist = bfs_distances(graph, v)
    reached = dist[dist != UNREACHED]
    return int(reached.max()) if len(reached) else 0


def diameter_lower_bound(graph: Graph, sweeps: int = 4, seed: int = 0) -> int:
    """Double-sweep lower bound on the diameter.

    Exact diameters of the synthetic datasets are too expensive; the paper's
    Table 1 only needs the order of magnitude.  Repeated double sweeps from
    the farthest vertex found so far give a tight lower bound in practice.
    """
    if graph.num_vertices == 0:
        return 0
    rng = np.random.default_rng(seed)
    start = int(rng.integers(graph.num_vertices))
    best = 0
    for _ in range(max(1, sweeps)):
        dist = bfs_distances(graph, start)
        reached = np.where(dist != UNREACHED)[0]
        if len(reached) == 0:
            break
        far = int(reached[np.argmax(dist[reached])])
        best = max(best, int(dist[far]))
        if far == start:
            break
        start = far
    return best


def triangles(graph: Graph) -> list[tuple[int, int, int]]:
    """All triangles, each reported once as an ordered tuple ``a < b < c``."""
    result: list[tuple[int, int, int]] = []
    for a in graph.vertices():
        nbrs_a = graph.neighbors(a)
        higher = nbrs_a[nbrs_a > a]
        for b in higher:
            b = int(b)
            nbrs_b = graph.neighbors(b)
            common = np.intersect1d(
                higher[higher > b], nbrs_b[nbrs_b > b], assume_unique=True
            )
            result.extend((a, b, int(c)) for c in common)
    return result


def triangle_count(graph: Graph) -> int:
    """Number of triangles (degeneracy-ordered merge counting)."""
    count = 0
    for a in graph.vertices():
        nbrs_a = graph.neighbors(a)
        higher = nbrs_a[nbrs_a > a]
        for b in higher:
            b = int(b)
            nbrs_b = graph.neighbors(b)
            count += len(
                np.intersect1d(
                    higher[higher > b], nbrs_b[nbrs_b > b], assume_unique=True
                )
            )
    return count


def k_core(graph: Graph, k: int) -> np.ndarray:
    """Boolean mask of vertices in the ``k``-core."""
    degree = graph.degrees().copy()
    alive = np.ones(graph.num_vertices, dtype=bool)
    queue = deque(int(v) for v in graph.vertices() if degree[v] < k)
    while queue:
        v = queue.popleft()
        if not alive[v]:
            continue
        alive[v] = False
        for w in graph.neighbors(v):
            w = int(w)
            if alive[w]:
                degree[w] -= 1
                if degree[w] < k:
                    queue.append(w)
    return alive


def degeneracy_order(graph: Graph) -> list[int]:
    """Vertices in degeneracy (smallest-last) order.

    Used by clique enumeration; runs in O(V + E) with bucket queues.
    """
    n = graph.num_vertices
    degree = graph.degrees().copy()
    max_degree = int(degree.max()) if n else 0
    buckets: list[set[int]] = [set() for _ in range(max_degree + 1)]
    for v in graph.vertices():
        buckets[int(degree[v])].add(v)
    removed = np.zeros(n, dtype=bool)
    order: list[int] = []
    pointer = 0
    for _ in range(n):
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        if pointer > max_degree:
            break
        v = buckets[pointer].pop()
        removed[v] = True
        order.append(v)
        for w in graph.neighbors(v):
            w = int(w)
            if not removed[w]:
                buckets[int(degree[w])].discard(w)
                degree[w] -= 1
                buckets[int(degree[w])].add(w)
                pointer = min(pointer, int(degree[w]))
    return order
