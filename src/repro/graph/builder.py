"""Incremental construction of :class:`repro.graph.Graph`."""

from __future__ import annotations

from repro.graph.graph import Graph


class GraphBuilder:
    """Mutable edge accumulator that finalises into an immutable Graph.

    Example
    -------
    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1)
    >>> b.add_edge(1, 2)
    >>> g = b.build()
    >>> g.num_edges
    2
    """

    def __init__(self, num_vertices: int = 0):
        self._num_vertices = num_vertices
        self._edges: list[tuple[int, int]] = []
        self._edge_set: set[tuple[int, int]] = set()

    @property
    def num_vertices(self) -> int:
        """Current number of vertices (grows with :meth:`add_vertex`/edges)."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of distinct edges added so far."""
        return len(self._edges)

    def add_vertex(self) -> int:
        """Add an isolated vertex; returns its id."""
        vid = self._num_vertices
        self._num_vertices += 1
        return vid

    def ensure_vertex(self, v: int) -> None:
        """Grow the vertex range so that ``v`` is a valid id."""
        if v >= self._num_vertices:
            self._num_vertices = v + 1

    def add_edge(self, u: int, v: int) -> bool:
        """Add an undirected edge; returns False if it already existed."""
        if u == v:
            raise ValueError("self loops are not allowed")
        key = (u, v) if u < v else (v, u)
        if key in self._edge_set:
            return False
        self._edge_set.add(key)
        self._edges.append(key)
        self.ensure_vertex(max(u, v))
        return True

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge was already added."""
        key = (u, v) if u < v else (v, u)
        return key in self._edge_set

    def build(self) -> Graph:
        """Finalise into an immutable :class:`Graph`."""
        return Graph.from_edges(self._num_vertices, self._edges)
