"""Foreign-vertex adjacency cache (paper Sec. 3.2 / Appendix B).

Fetched adjacency lists are cached so each foreign vertex is fetched at most
once while memory lasts; under pressure the oldest entries are evicted
(the paper: "when more data vertices need to be fetched, we may release
some previously cached data vertices").
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np


class ForeignVertexCache:
    """Byte-budgeted adjacency cache with FIFO or LRU eviction.

    The paper only says stale entries "may" be released; FIFO (the
    default) matches its fetch-once-per-round access pattern, while LRU is
    offered for workloads that revisit hot foreign hubs across rounds.
    """

    def __init__(self, budget_bytes: int | None = None, policy: str = "fifo"):
        if policy not in ("fifo", "lru"):
            raise ValueError(f"unknown eviction policy: {policy!r}")
        self._entries: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._budget = budget_bytes
        self._policy = policy
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, v: int) -> bool:
        return v in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def entry_bytes(adjacency: np.ndarray) -> int:
        """Simulated footprint of one cached adjacency list."""
        return (len(adjacency) + 1) * 8

    def get(self, v: int) -> np.ndarray | None:
        """Cached adjacency of ``v`` or None."""
        entry = self._entries.get(v)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        if self._policy == "lru":
            self._entries.move_to_end(v)
        return entry

    def peek(self, v: int) -> np.ndarray | None:
        """Like :meth:`get` without touching hit/miss statistics."""
        return self._entries.get(v)

    def put(self, v: int, adjacency: np.ndarray) -> int:
        """Insert an adjacency list; returns bytes evicted to make room."""
        if v in self._entries:
            return 0
        cost = self.entry_bytes(adjacency)
        evicted = 0
        if self._budget is not None:
            while self._entries and self.bytes_used + cost > self._budget:
                _, old = self._entries.popitem(last=False)
                released = self.entry_bytes(old)
                self.bytes_used -= released
                evicted += released
                self.evictions += 1
        self._entries[v] = adjacency
        self.bytes_used += cost
        return evicted

    def clear(self) -> int:
        """Drop everything; returns bytes released."""
        released = self.bytes_used
        self._entries.clear()
        self.bytes_used = 0
        return released
