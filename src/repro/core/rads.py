"""RADS engine: SM-E split + asynchronous R-Meef with region-group
work stealing (paper Sec. 3, 6 and the checkR/shareR protocol).

Machines run independently on their own virtual clocks — there are no
barriers anywhere.  The scheduler always advances the machine with the
smallest clock, which is exactly how an asynchronous cluster interleaves;
an idle machine broadcasts `checkR` and steals a region group (`shareR`)
from the most loaded peer.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.cluster.cluster import Cluster
from repro.cluster.machine import SimulatedMemoryError
from repro.core.cache import ForeignVertexCache
from repro.core.region import MemoryEstimator, RegionGrouper
from repro.core.rmeef import RMeefWorker
from repro.core.sme import SingleMachineSplit
from repro.engines.base import EnumerationEngine
from repro.query.pattern import Pattern
from repro.query.plan import ExecutionPlan, best_execution_plan

#: Default simulated memory budget when the cluster has no explicit cap.
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024


class RADSEngine(EnumerationEngine):
    """Robust Asynchronous Distributed Subgraph enumeration."""

    name = "RADS"

    def __init__(
        self,
        plan_provider: Callable[[Pattern], ExecutionPlan] | None = None,
        enable_sme: bool = True,
        enable_work_stealing: bool = True,
        results_budget_fraction: float = 0.45,
        cache_budget_fraction: float = 0.35,
        min_groups_per_machine: int = 4,
        grouping: str = "proximity",
        seed: int = 0,
    ):
        self._plan_provider = plan_provider or best_execution_plan
        self._enable_sme = enable_sme
        self._enable_work_stealing = enable_work_stealing
        self._results_fraction = results_budget_fraction
        self._cache_fraction = cache_budget_fraction
        #: Region-group construction strategy ("proximity" per Algorithm 3,
        #: or "random" — the naive grouping of Sec. 6 — for ablations).
        self._grouping = grouping
        # Even when memory is plentiful, keep a few groups per machine so
        # checkR/shareR has units of work to rebalance (a machine's whole
        # workload in one group cannot be shared).
        self._min_groups = max(1, min_groups_per_machine)
        self._seed = seed
        self.last_plan: ExecutionPlan | None = None

    # ------------------------------------------------------------------
    def _budgets(self, cluster: Cluster) -> tuple[float, float]:
        capacity = cluster.memory_capacity
        if capacity is None:
            capacity = DEFAULT_BUDGET_BYTES
        return (
            capacity * self._results_fraction,
            capacity * self._cache_fraction,
        )

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
    ) -> list[tuple[int, ...]]:
        plan = self._plan_provider(pattern)
        self.last_plan = plan
        split = SingleMachineSplit(pattern, plan, constraints)
        results_budget, cache_budget = self._budgets(cluster)
        results: list[tuple[int, ...]] = []
        self._count = 0
        queues: dict[int, deque[list[int]]] = {}

        # Phase 1 (per machine, independent): SM-E and region grouping.
        for t in range(cluster.num_machines):
            local = cluster.partition.machine(t)
            machine = cluster.machine(t)
            estimator = MemoryEstimator(len(plan.units[0].leaves))
            if self._enable_sme:
                sme = split.run(local, machine, estimator)
                if collect:
                    results.extend(sme.embeddings)
                self._count += len(sme.embeddings)
                distributed = sme.distributed_candidates
            else:
                distributed = split.candidates(local)
            machine.charge_ops(len(distributed), "grouping_ops")
            total_estimate = sum(
                estimator.estimate_bytes(local.degree(v)) for v in distributed
            )
            budget = min(
                results_budget,
                max(1.0, total_estimate / self._min_groups),
            )
            grouper = RegionGrouper(
                adjacency=local.graph.neighbors,
                estimator=estimator,
                budget_bytes=budget,
                seed=self._seed + t,
                strategy=self._grouping,
            )
            queues[t] = deque(grouper.groups(distributed))

        # Phase 2 (asynchronous): process region groups, stealing when idle.
        workers = {
            t: RMeefWorker(
                cluster, pattern, plan, constraints, t,
                ForeignVertexCache(int(cache_budget)),
                flush_threshold=results_budget / 2,
            )
            for t in range(cluster.num_machines)
        }
        done: set[int] = set()
        model = cluster.cost_model
        while len(done) < cluster.num_machines:
            executor = min(
                (t for t in range(cluster.num_machines) if t not in done),
                key=lambda t: cluster.machine(t).clock,
            )
            if queues[executor]:
                group = queues[executor].popleft()
            elif self._enable_work_stealing:
                # Stealing a group means fetching all its candidates'
                # adjacency remotely, so it only pays off against a real
                # backlog: steal from machines with at least two pending
                # groups (the checkR counts tell us).
                victims = [
                    t for t in range(cluster.num_machines)
                    if t != executor and len(queues[t]) >= 2
                ]
                if not victims:
                    done.add(executor)
                    continue
                # checkR: broadcast probe for unprocessed group counts.
                cluster.network.broadcast(
                    cluster.machine(executor),
                    cluster.machines,
                    nbytes=8,
                )
                victim = max(victims, key=lambda t: len(queues[t]))
                group = queues[victim].popleft()
                # shareR: the stolen group's candidate ids cross the wire.
                cluster.network.rpc(
                    requester=cluster.machine(executor),
                    responder=cluster.machine(victim),
                    request_bytes=8,
                    response_bytes=len(group) * model.bytes_per_vertex_id,
                    service_ops=float(len(group)),
                )
            else:
                done.add(executor)
                continue
            self._run_group(workers[executor], group, collect, results)
        return results

    def _run_group(
        self,
        worker: RMeefWorker,
        group: list[int],
        collect: bool,
        results: list[tuple[int, ...]],
    ) -> None:
        """Process a region group, splitting and retrying on simulated OOM.

        The memory estimate behind region grouping is only an estimate
        (Sec. 6); when a group's actual trie outgrows the capacity, halving
        it restores the invariant the estimate was meant to uphold.  A
        single-candidate group that still does not fit is a genuine OOM.
        """
        try:
            found = worker.process_group(group, collect)
        except SimulatedMemoryError:
            if len(group) <= 1:
                raise
            mid = len(group) // 2
            self._run_group(worker, group[:mid], collect, results)
            self._run_group(worker, group[mid:], collect, results)
            return
        if collect:
            results.extend(found)
        self._count += worker.last_group_count
