"""RADS engine: SM-E split + asynchronous R-Meef with region-group
work stealing (paper Sec. 3, 6 and the checkR/shareR protocol).

Machines run independently on their own virtual clocks — there are no
barriers anywhere.  Under the default serial backend the scheduler always
advances the machine with the smallest clock, which is exactly how an
asynchronous cluster interleaves; an idle machine broadcasts `checkR` and
steals a region group (`shareR`) from the most loaded peer.

Under a parallel backend (:class:`repro.runtime.ProcessExecutor`) both
phases are decomposed into independent per-machine tasks: phase 1 (SM-E +
region grouping) is embarrassingly parallel, and phase 2 replaces the
clock-driven steal schedule with a deterministic pre-balancing pass that
charges the same `checkR`/`shareR` network costs up front, so reported
stats are identical for every worker count.  Embedding counts are
identical across *all* backends.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.cluster.cluster import Cluster
from repro.cluster.machine import SimulatedMemoryError
from repro.core.cache import ForeignVertexCache
from repro.core.region import MemoryEstimator, RegionGrouper
from repro.core.rmeef import RMeefWorker
from repro.core.sme import SingleMachineSplit
from repro.engines.base import EnumerationEngine
from repro.query.pattern import Pattern
from repro.query.plan import ExecutionPlan, best_execution_plan
from repro.runtime.executor import Executor

#: Default simulated memory budget when the cluster has no explicit cap.
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024


def _process_group_splitting(
    worker: RMeefWorker,
    group: list[int],
    collect: bool,
    results: list[tuple[int, ...]],
) -> int:
    """Process one region group, splitting and retrying on simulated OOM.

    The memory estimate behind region grouping is only an estimate
    (Sec. 6); when a group's actual trie outgrows the capacity, halving
    it restores the invariant the estimate was meant to uphold.  A
    single-candidate group that still does not fit is a genuine OOM.
    Returns the number of embeddings the group produced.
    """
    try:
        found = worker.process_group(group, collect)
    except SimulatedMemoryError:
        if len(group) <= 1:
            raise
        mid = len(group) // 2
        count = _process_group_splitting(worker, group[:mid], collect, results)
        count += _process_group_splitting(worker, group[mid:], collect, results)
        return count
    if collect:
        results.extend(found)
    return worker.last_group_count


def _phase1_task(cluster: Cluster, args: tuple) -> tuple:
    """SM-E split + region grouping for one machine (independent unit)."""
    (
        t, pattern, plan, constraints, enable_sme, collect,
        results_budget, min_groups, grouping, seed,
    ) = args
    local = cluster.partition.machine(t)
    machine = cluster.machine(t)
    split = SingleMachineSplit(pattern, plan, constraints)
    estimator = MemoryEstimator(len(plan.units[0].leaves))
    embeddings: list[tuple[int, ...]] = []
    sme_count = 0
    if enable_sme:
        sme = split.run(local, machine, estimator)
        sme_count = len(sme.embeddings)
        if collect:
            embeddings = sme.embeddings
        distributed = sme.distributed_candidates
    else:
        distributed = split.candidates(local)
    machine.charge_ops(len(distributed), "grouping_ops")
    total_estimate = sum(
        estimator.estimate_bytes(local.degree(v)) for v in distributed
    )
    budget = min(results_budget, max(1.0, total_estimate / min_groups))
    grouper = RegionGrouper(
        adjacency=local.graph.neighbors,
        estimator=estimator,
        budget_bytes=budget,
        seed=seed + t,
        strategy=grouping,
    )
    return t, sme_count, embeddings, list(grouper.groups(distributed))


def _phase2_task(cluster: Cluster, args: tuple) -> tuple:
    """R-Meef over one machine's (pre-balanced) region groups."""
    (
        t, pattern, plan, constraints, collect,
        cache_budget, flush_threshold, groups,
    ) = args
    worker = RMeefWorker(
        cluster, pattern, plan, constraints, t,
        ForeignVertexCache(cache_budget),
        flush_threshold=flush_threshold,
    )
    results: list[tuple[int, ...]] = []
    count = 0
    for group in groups:
        count += _process_group_splitting(worker, group, collect, results)
    return t, count, results


class RADSEngine(EnumerationEngine):
    """Robust Asynchronous Distributed Subgraph enumeration."""

    name = "RADS"
    explain_note = (
        "round 0 splits off single-machine embeddings (SM-E), then one "
        "asynchronous R-Meef round per unit expands the pivot's leaves "
        "and checks the verification edges; idle machines steal region "
        "groups (checkR/shareR)"
    )

    def __init__(
        self,
        plan_provider: Callable[[Pattern], ExecutionPlan] | None = None,
        enable_sme: bool = True,
        enable_work_stealing: bool = True,
        results_budget_fraction: float = 0.45,
        cache_budget_fraction: float = 0.35,
        min_groups_per_machine: int = 4,
        grouping: str = "proximity",
        seed: int = 0,
    ):
        self._plan_provider = plan_provider or best_execution_plan
        self._enable_sme = enable_sme
        self._enable_work_stealing = enable_work_stealing
        self._results_fraction = results_budget_fraction
        self._cache_fraction = cache_budget_fraction
        #: Region-group construction strategy ("proximity" per Algorithm 3,
        #: or "random" — the naive grouping of Sec. 6 — for ablations).
        self._grouping = grouping
        # Even when memory is plentiful, keep a few groups per machine so
        # checkR/shareR has units of work to rebalance (a machine's whole
        # workload in one group cannot be shared).
        self._min_groups = max(1, min_groups_per_machine)
        self._seed = seed
        self.last_plan: ExecutionPlan | None = None

    # ------------------------------------------------------------------
    def execution_plan(self, pattern: Pattern) -> ExecutionPlan:
        """The plan the configured ``plan_provider`` would execute."""
        return self._plan_provider(pattern)

    def _explain_extras(self, pattern: Pattern) -> dict:
        return {
            "grouping": self._grouping,
            "sme_enabled": self._enable_sme,
            "work_stealing": self._enable_work_stealing,
        }

    def _budgets(self, cluster: Cluster) -> tuple[float, float]:
        capacity = cluster.memory_capacity
        if capacity is None:
            capacity = DEFAULT_BUDGET_BYTES
        return (
            capacity * self._results_fraction,
            capacity * self._cache_fraction,
        )

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        plan = self._plan_provider(pattern)
        self.last_plan = plan
        results_budget, cache_budget = self._budgets(cluster)
        results: list[tuple[int, ...]] = []
        self._count = 0
        queues: dict[int, deque[list[int]]] = {}

        # Phase 1 (per machine, independent): SM-E and region grouping.
        with self.round_span("sm-e", machines=cluster.num_machines):
            phase1 = executor.run_tasks(
                cluster,
                _phase1_task,
                [
                    (
                        t, pattern, plan, constraints, self._enable_sme,
                        collect, results_budget, self._min_groups,
                        self._grouping, self._seed,
                    )
                    for t in range(cluster.num_machines)
                ],
            )
            for t, sme_count, embeddings, groups in phase1:
                self._count += sme_count
                if collect:
                    results.extend(embeddings)
                queues[t] = deque(groups)

        # Phase 2: process region groups.  A parallel backend trades the
        # clock-driven steal schedule for an up-front deterministic
        # rebalance, making every machine's queue an independent task.
        if executor.parallel:
            with self.round_span(
                "r-meef",
                groups=sum(len(q) for q in queues.values()),
                schedule="prebalanced",
            ):
                self._prebalance(cluster, queues)
                for t, count, found in executor.run_tasks(
                    cluster,
                    _phase2_task,
                    [
                        (
                            t, pattern, plan, constraints, collect,
                            int(cache_budget), results_budget / 2,
                            list(queues[t]),
                        )
                        for t in range(cluster.num_machines)
                        if queues[t]
                    ],
                ):
                    self._count += count
                    if collect:
                        results.extend(found)
            return results

        # Serial backend (asynchronous simulation): always advance the
        # machine with the smallest clock, stealing when idle.
        with self.round_span(
            "r-meef",
            groups=sum(len(q) for q in queues.values()),
            schedule="steal",
        ):
            self._run_steal_loop(
                cluster, pattern, plan, constraints, collect,
                cache_budget, results_budget, queues, results,
            )
        return results

    def _run_steal_loop(
        self,
        cluster: Cluster,
        pattern: Pattern,
        plan: ExecutionPlan,
        constraints: list[tuple[int, int]],
        collect: bool,
        cache_budget: float,
        results_budget: float,
        queues: "dict[int, deque[list[int]]]",
        results: list[tuple[int, ...]],
    ) -> None:
        """Clock-driven serial R-Meef round with reactive work stealing."""
        workers = {
            t: RMeefWorker(
                cluster, pattern, plan, constraints, t,
                ForeignVertexCache(int(cache_budget)),
                flush_threshold=results_budget / 2,
            )
            for t in range(cluster.num_machines)
        }
        done: set[int] = set()
        model = cluster.cost_model
        while len(done) < cluster.num_machines:
            # The paper's "executor machine": the one whose clock is
            # furthest behind (careful: distinct from the `executor`
            # backend parameter, which the serial path no longer needs).
            active = min(
                (t for t in range(cluster.num_machines) if t not in done),
                key=lambda t: cluster.machine(t).clock,
            )
            if queues[active]:
                group = queues[active].popleft()
            elif self._enable_work_stealing:
                # Stealing a group means fetching all its candidates'
                # adjacency remotely, so it only pays off against a real
                # backlog: steal from machines with at least two pending
                # groups (the checkR counts tell us).
                victims = [
                    t for t in range(cluster.num_machines)
                    if t != active and len(queues[t]) >= 2
                ]
                if not victims:
                    done.add(active)
                    continue
                # checkR: broadcast probe for unprocessed group counts.
                cluster.network.broadcast(
                    cluster.machine(active),
                    cluster.machines,
                    nbytes=8,
                )
                victim = max(victims, key=lambda t: len(queues[t]))
                group = queues[victim].popleft()
                # shareR: the stolen group's candidate ids cross the wire.
                cluster.network.rpc(
                    requester=cluster.machine(active),
                    responder=cluster.machine(victim),
                    request_bytes=8,
                    response_bytes=len(group) * model.bytes_per_vertex_id,
                    service_ops=float(len(group)),
                )
            else:
                done.add(active)
                continue
            self._run_group(workers[active], group, collect, results)

    def _run_group(
        self,
        worker: RMeefWorker,
        group: list[int],
        collect: bool,
        results: list[tuple[int, ...]],
    ) -> None:
        """Process one region group with OOM split-and-retry (serial path)."""
        self._count += _process_group_splitting(worker, group, collect, results)

    def _prebalance(
        self, cluster: Cluster, queues: dict[int, deque[list[int]]]
    ) -> None:
        """Deterministic checkR/shareR for the parallel backend.

        The serial scheduler steals reactively, driven by the clock
        interleaving; a parallel run has no such global schedule, so load
        balancing is decided before the queues fan out: each idle machine
        probes (`checkR` broadcast) and takes one group (`shareR` RPC) from
        the most backlogged peer until no peer has a shareable backlog.
        The same network costs as a reactive steal are charged, and the
        outcome depends only on the queues, never on worker count.
        """
        if not self._enable_work_stealing:
            return
        model = cluster.cost_model
        while True:
            idle = [t for t in sorted(queues) if not queues[t]]
            victims = [t for t in sorted(queues) if len(queues[t]) >= 2]
            if not idle or not victims:
                return
            thief = idle[0]
            victim = max(victims, key=lambda t: len(queues[t]))
            cluster.network.broadcast(
                cluster.machine(thief), cluster.machines, nbytes=8
            )
            group = queues[victim].popleft()
            cluster.network.rpc(
                requester=cluster.machine(thief),
                responder=cluster.machine(victim),
                request_bytes=8,
                response_bytes=len(group) * model.bytes_per_vertex_id,
                service_ops=float(len(group)),
            )
            queues[thief].append(group)
