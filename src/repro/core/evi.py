"""Edge verification index (paper Def. 5).

Maps each *undetermined* data edge — an edge whose two endpoints both lack
locally-known adjacency — to the embedding candidates (trie leaves) whose
validity depends on it.  One `verifyE` round trip per remote machine then
settles every EC sharing that edge (Prop. 2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable

from repro.core.embedding_trie import TrieNode


class EdgeVerificationIndex:
    """Key: undetermined edge ``(min, max)``; value: dependent trie leaves."""

    def __init__(self) -> None:
        self._index: dict[tuple[int, int], list[TrieNode]] = defaultdict(list)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, edge: tuple[int, int]) -> bool:
        return self._normalise(edge) in self._index

    @staticmethod
    def _normalise(edge: tuple[int, int]) -> tuple[int, int]:
        a, b = edge
        return (a, b) if a <= b else (b, a)

    def add(self, edge: tuple[int, int], leaf: TrieNode) -> None:
        """Register that ``leaf``'s EC requires ``edge`` to exist."""
        self._index[self._normalise(edge)].append(leaf)

    def edges(self) -> list[tuple[int, int]]:
        """All undetermined edges (the verifyE request payload)."""
        return list(self._index.keys())

    def leaves_for(self, edge: tuple[int, int]) -> list[TrieNode]:
        """ECs depending on ``edge``."""
        return self._index.get(self._normalise(edge), [])

    def group_by_machine(
        self, owner_of: Callable[[int], int]
    ) -> dict[int, list[tuple[int, int]]]:
        """Partition keys by a machine able to verify them.

        Either endpoint's owner can verify the edge; we use the owner of the
        smaller endpoint, which keeps batches deterministic.
        """
        groups: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for a, b in self._index:
            groups[owner_of(a)].append((a, b))
        return dict(groups)

    def failed_leaves(
        self, failed_edges: Iterable[tuple[int, int]]
    ) -> list[TrieNode]:
        """All ECs invalidated by the non-existent edges (dedup by identity)."""
        seen: set[int] = set()
        result: list[TrieNode] = []
        for edge in failed_edges:
            for leaf in self._index.get(self._normalise(edge), []):
                if id(leaf) not in seen:
                    seen.add(id(leaf))
                    result.append(leaf)
        return result

    def clear(self) -> None:
        """Reset for the next round."""
        self._index.clear()
