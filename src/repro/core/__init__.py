"""RADS: the paper's primary contribution.

Submodules map one-to-one onto the paper's sections:

- :mod:`repro.core.sme` — single-machine enumeration split (Sec. 3.1).
- :mod:`repro.core.embedding_trie` — compact intermediate results (Sec. 5).
- :mod:`repro.core.evi` — edge verification index (Def. 5).
- :mod:`repro.core.cache` — foreign-vertex cache.
- :mod:`repro.core.region` — region groups and memory estimation (Sec. 6).
- :mod:`repro.core.rmeef` — the R-Meef expand / verify & filter rounds
  (Sec. 3.2, Appendix B).
- :mod:`repro.core.rads` — engine orchestration, asynchrony and
  checkR/shareR work stealing.
"""

from repro.core.embedding_trie import EmbeddingTrie, TrieNode
from repro.core.evi import EdgeVerificationIndex
from repro.core.cache import ForeignVertexCache
from repro.core.region import RegionGrouper
from repro.core.sme import SingleMachineSplit
from repro.core.rads import RADSEngine

__all__ = [
    "EmbeddingTrie",
    "TrieNode",
    "EdgeVerificationIndex",
    "ForeignVertexCache",
    "RegionGrouper",
    "SingleMachineSplit",
    "RADSEngine",
]
