"""R-Meef: region-grouped multi-round expand, verify & filter
(paper Sec. 3.2, Algorithms 1-2, Appendix B).

One :class:`RMeefWorker` runs on one *executor* machine.  It processes a
region group of start candidates through ``|PL|`` rounds; in round ``i`` the
embeddings of ``P_{i-1}`` (stored in the embedding trie) are expanded through
decomposition unit ``dp_i``:

- the adjacency lists of foreign pivots are batch-fetched (`fetchV`) and
  cached;
- candidates for each leaf come from intersecting the locally-known
  adjacency of already-matched neighbours;
- verification edges whose endpoints both lack local adjacency become
  *undetermined* and are registered in the edge-verification index;
- one `verifyE` batch per remote machine then filters failed embedding
  candidates out of the trie (cascade removal).

No intermediate results ever leave the executor machine.

Region groups are independent units of work: under the serial backend the
RADS scheduler interleaves workers by virtual clock, while under the
process backend (:mod:`repro.runtime`) each worker is constructed inside
an OS worker process against a shared-memory replica of the cluster and
drains one machine's whole queue; either way the per-group computation —
and therefore the embedding count — is identical.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine, SimulatedMemoryError
from repro.core.cache import ForeignVertexCache
from repro.core.embedding_trie import NODE_BYTES, EmbeddingTrie, TrieNode
from repro.core.evi import EdgeVerificationIndex
from repro.query.pattern import Pattern
from repro.query.plan import ExecutionPlan
from repro.query.symmetry import constraint_map


@dataclass
class _PositionInfo:
    """Static per-matching-order-position expansion metadata."""

    vertex: int
    unit_index: int
    pivot_position: int
    # Earlier positions adjacent in the pattern (excluding the pivot).
    refine_positions: list[int]
    # Symmetry breaking: f(here) must be greater than these positions' images.
    lower_positions: list[int]
    # ... and smaller than these.
    upper_positions: list[int]
    min_degree: int


class RMeefWorker:
    """Executes region groups of query ``pattern`` on machine ``executor``."""

    def __init__(
        self,
        cluster: Cluster,
        pattern: Pattern,
        plan: ExecutionPlan,
        constraints: list[tuple[int, int]],
        executor_id: int,
        cache: ForeignVertexCache,
        flush_threshold: float = 4 * 1024 * 1024,
    ):
        self._flush_threshold = flush_threshold
        self._cluster = cluster
        self._pattern = pattern
        self._plan = plan
        self._executor_id = executor_id
        self._machine: Machine = cluster.machine(executor_id)
        self._local = cluster.partition.machine(executor_id)
        self._cache = cache
        self._order = plan.matching_order()
        self._position = {u: q for q, u in enumerate(self._order)}
        self._prefix_len = [
            len(plan.subpattern_vertices(i)) for i in range(plan.num_rounds)
        ]
        self._info = self._build_position_info(constraints)
        # Mutable per-round state.
        self._ops = 0
        self._trie_bytes_outstanding = 0
        self._trie_delta = 0
        self.embeddings_found = 0
        self.last_group_count = 0

    # ------------------------------------------------------------------
    # Static plan analysis
    # ------------------------------------------------------------------
    def _build_position_info(
        self, constraints: list[tuple[int, int]]
    ) -> list[_PositionInfo]:
        pattern, plan = self._pattern, self._plan
        smaller, greater = constraint_map(constraints, pattern.num_vertices)
        unit_of: dict[int, int] = {}
        for i, unit in enumerate(plan.units):
            for leaf in unit.leaves:
                unit_of[leaf] = i
        infos: list[_PositionInfo] = []
        for q, u in enumerate(self._order):
            if q == 0:
                infos.append(
                    _PositionInfo(u, 0, -1, [], [], [], pattern.degree(u))
                )
                continue
            unit_index = unit_of[u]
            pivot = plan.units[unit_index].pivot
            pivot_position = self._position[pivot]
            refine = [
                self._position[w]
                for w in pattern.adj(u)
                if self._position[w] < q and w != pivot
            ]
            lower = [
                self._position[w] for w in greater[u] if self._position[w] < q
            ]
            upper = [
                self._position[w] for w in smaller[u] if self._position[w] < q
            ]
            # Constraints whose partner comes later are handled at the
            # partner's position.
            infos.append(
                _PositionInfo(
                    u, unit_index, pivot_position, sorted(refine),
                    lower, upper, pattern.degree(u),
                )
            )
        return infos

    # ------------------------------------------------------------------
    # Adjacency access (owned / cached / fetch)
    # ------------------------------------------------------------------
    def _known_adjacency(self, v: int) -> np.ndarray | None:
        """Adjacency if locally decidable (owned or cached), else None."""
        if self._local.is_owned(v):
            return self._local.graph.neighbors(v)
        return self._cache.peek(v)

    def _fetch_vertices(self, vertices: list[int]) -> None:
        """Batched `fetchV`: one request per remote owner machine."""
        need = [
            v for v in vertices
            if not self._local.is_owned(v) and v not in self._cache
        ]
        if not need:
            return
        by_owner: dict[int, list[int]] = defaultdict(list)
        for v in need:
            by_owner[self._cluster.partition.owner_of(v)].append(v)
        graph = self._cluster.graph
        model = self._cluster.cost_model
        for owner, verts in sorted(by_owner.items()):
            response_bytes = sum(
                model.adjacency_bytes(graph.degree(v)) for v in verts
            )
            self._cluster.network.rpc(
                requester=self._machine,
                responder=self._cluster.machine(owner),
                request_bytes=len(verts) * model.bytes_per_vertex_id,
                response_bytes=response_bytes,
                service_ops=float(len(verts)),
            )
            for v in verts:
                adjacency = graph.neighbors(v)
                evicted = self._cache.put(v, adjacency)
                if evicted:
                    self._machine.free(evicted)
                self._machine.allocate(
                    ForeignVertexCache.entry_bytes(adjacency), "cache_bytes"
                )

    #: Allocation buffering granularity: per-node accounting calls would
    #: dominate the Python hot loop, so deltas are flushed to the simulated
    #: machine in 16 KiB steps (OOM detection is delayed by at most that).
    _FLUSH_BYTES = 16384

    def _alloc_trie(self, nbytes: int) -> None:
        # Trie maintenance is real work the SM-E path does not pay:
        # one op per node created or released.
        self._ops += nbytes // NODE_BYTES
        self._trie_bytes_outstanding += nbytes
        self._trie_delta += nbytes
        if self._trie_delta >= self._FLUSH_BYTES:
            self._flush_trie_delta()

    def _free_trie(self, nbytes: int) -> None:
        self._ops += nbytes // NODE_BYTES
        self._trie_bytes_outstanding -= nbytes
        self._trie_delta -= nbytes
        if self._trie_delta <= -self._FLUSH_BYTES:
            self._flush_trie_delta()

    def _flush_trie_delta(self) -> None:
        if self._trie_delta > 0:
            self._machine.allocate(self._trie_delta, "trie_bytes")
        elif self._trie_delta < 0:
            self._machine.free(-self._trie_delta)
        self._trie_delta = 0

    # ------------------------------------------------------------------
    # Group processing
    # ------------------------------------------------------------------
    def process_group(
        self, group: list[int], collect: bool = True
    ) -> list[tuple[int, ...]]:
        """Run all rounds for one region group; returns final embeddings.

        On simulated OOM the group's trie memory is rolled back before the
        exception propagates, so the engine can split the group and retry
        (``self.last_group_count`` reports the embeddings of the last
        *successful* group, for count-only runs).
        """
        try:
            return self._process_group(group, collect)
        except SimulatedMemoryError:
            # Only `outstanding - delta` has actually been charged to the
            # machine (the rest sits in the unflushed buffer).
            self._machine.free(
                self._trie_bytes_outstanding - self._trie_delta
            )
            self._trie_bytes_outstanding = 0
            self._trie_delta = 0
            self._machine.charge_ops(self._ops, "rmeef_ops")
            self._ops = 0
            raise

    def _process_group(
        self, group: list[int], collect: bool
    ) -> list[tuple[int, ...]]:
        trie = EmbeddingTrie()
        self._trie_bytes_outstanding = 0
        results: list[tuple[int, ...]] = []
        emitted = 0

        def emit(leaves: list[TrieNode]) -> None:
            """Stream verified final-round results out of the trie.

            Final embeddings are *output*, not intermediate state, so they
            are converted and their trie nodes freed immediately — this is
            what keeps the per-group peak within the region-group budget.
            """
            nonlocal emitted
            n = self._pattern.num_vertices
            for leaf in leaves:
                if collect:
                    emb = [0] * n
                    for q, v in enumerate(leaf.path()):
                        emb[self._order[q]] = v
                    results.append(tuple(emb))
                emitted += 1
                self._free_trie(trie.remove_leaf(leaf) * NODE_BYTES)

        num_rounds = self._plan.num_rounds
        mapping: list[int] = [-1] * self._pattern.num_vertices
        # Round 0: start candidates (foreign when the group was stolen).
        self._fetch_vertices(list(group))
        final = num_rounds == 1
        frontier: list[TrieNode] = []
        evi = EdgeVerificationIndex()
        for v in sorted(group):
            adjacency = self._known_adjacency(v)
            if adjacency is None:
                # The batch fetch above may have been evicted already on a
                # memory-starved cache (or the group was stolen): re-fetch
                # rather than silently dropping the candidate.
                self._fetch_vertices([v])
                adjacency = self._known_adjacency(v)
            self._ops += 1
            if adjacency is None or len(adjacency) < self._info[0].min_degree:
                continue
            root = trie.add_root(v)
            self._alloc_trie(NODE_BYTES)
            mapping[0] = v
            used = {v}
            self._expand_unit(
                trie, evi, 0, root, 1, mapping, used, frontier
            )
            if root.child_count == 0:
                self._free_trie(trie.remove_leaf(root) * NODE_BYTES)
            if final and self._trie_bytes_outstanding > self._flush_threshold:
                emit(self._verify_and_filter(trie, evi, frontier))
                frontier = []
                evi = EdgeVerificationIndex()
        frontier = self._verify_and_filter(trie, evi, frontier)
        if final:
            emit(frontier)
        # Rounds 1..l.
        for i in range(1, num_rounds):
            final = i == num_rounds - 1
            evi = EdgeVerificationIndex()
            pivot_position = self._position[self._plan.units[i].pivot]
            self._fetch_vertices(
                sorted({leaf.path()[pivot_position] for leaf in frontier})
            )
            next_frontier: list[TrieNode] = []
            for leaf in frontier:
                path = leaf.path()
                for q, v in enumerate(path):
                    mapping[q] = v
                used = set(path)
                start = self._prefix_len[i - 1]
                self._expand_unit(
                    trie, evi, i, leaf, start, mapping, used, next_frontier
                )
                if leaf.child_count == 0:
                    self._free_trie(trie.remove_leaf(leaf) * NODE_BYTES)
                if (
                    final
                    and self._trie_bytes_outstanding > self._flush_threshold
                ):
                    emit(self._verify_and_filter(trie, evi, next_frontier))
                    next_frontier = []
                    evi = EdgeVerificationIndex()
            frontier = self._verify_and_filter(trie, evi, next_frontier)
            if final:
                emit(frontier)
        self._machine.charge_ops(self._ops, "rmeef_ops")
        self._ops = 0
        self.embeddings_found += emitted
        self.last_group_count = emitted
        self._free_trie(trie.memory_bytes())
        self._flush_trie_delta()
        return results

    # ------------------------------------------------------------------
    def _expand_unit(
        self,
        trie: EmbeddingTrie,
        evi: EdgeVerificationIndex,
        unit_index: int,
        node: TrieNode,
        position: int,
        mapping: list[int],
        used: set[int],
        out: list[TrieNode],
        pending: tuple = (),
    ) -> None:
        """Recursive leaf matching for unit ``unit_index`` (Algorithm 2).

        ``pending`` carries the undetermined edges accumulated along the
        current partial path; they are registered against the completed EC's
        leaf node.
        """
        info = self._info[position]
        end = self._prefix_len[unit_index]
        pivot_value = mapping[info.pivot_position]
        pivot_adj = self._known_adjacency(pivot_value)
        if pivot_adj is None:
            # Batched at round start, but a tiny cache may have evicted the
            # entry before use — re-fetch on demand (extra RPC, as a real
            # cache-starved machine would pay).
            self._fetch_vertices([pivot_value])
            pivot_adj = self._known_adjacency(pivot_value)
        if pivot_adj is None:  # pragma: no cover - fetch always caches one
            raise AssertionError("pivot adjacency must be known")
        candidates = pivot_adj
        deferred: list[int] = []
        for p in info.refine_positions:
            other_adj = self._known_adjacency(mapping[p])
            if other_adj is None:
                deferred.append(p)
            else:
                self._ops += min(len(candidates), len(other_adj))
                candidates = np.intersect1d(
                    candidates, other_adj, assume_unique=True
                )
                if len(candidates) == 0:
                    return
        lo = -1
        hi: int | None = None
        for p in info.lower_positions:
            lo = max(lo, mapping[p])
        for p in info.upper_positions:
            hi = mapping[p] if hi is None else min(hi, mapping[p])
        if lo >= 0:
            candidates = candidates[np.searchsorted(candidates, lo + 1):]
        if hi is not None:
            candidates = candidates[: np.searchsorted(candidates, hi)]
        self._ops += len(candidates)
        for v in candidates:
            v = int(v)
            if v in used:
                continue
            v_adj = self._known_adjacency(v)
            if v_adj is not None and len(v_adj) < info.min_degree:
                continue
            new_pending = pending
            ok = True
            for p in deferred:
                w = mapping[p]
                if v_adj is not None:
                    idx = int(np.searchsorted(v_adj, w))
                    self._ops += 1
                    if idx >= len(v_adj) or int(v_adj[idx]) != w:
                        ok = False
                        break
                else:
                    new_pending = new_pending + ((v, w),)
            if not ok:
                continue
            child = trie.add_child(node, v)
            self._alloc_trie(NODE_BYTES)
            mapping[position] = v
            used.add(v)
            if position + 1 == end:
                for edge in new_pending:
                    evi.add(edge, child)
                out.append(child)
            else:
                self._expand_unit(
                    trie, evi, unit_index, child, position + 1,
                    mapping, used, out, new_pending,
                )
                if child.child_count == 0:
                    # Non-cascading: `node` is still being extended.
                    self._free_trie(
                        trie.detach_childless(child) * NODE_BYTES
                    )
            used.discard(v)
            mapping[position] = -1

    # ------------------------------------------------------------------
    def _verify_and_filter(
        self,
        trie: EmbeddingTrie,
        evi: EdgeVerificationIndex,
        frontier: list[TrieNode],
    ) -> list[TrieNode]:
        """Batch `verifyE` per remote machine; drop failed ECs (Prop. 2)."""
        if len(evi) == 0:
            return frontier
        failed: list[tuple[int, int]] = []
        model = self._cluster.cost_model
        groups = evi.group_by_machine(self._cluster.partition.owner_of)
        for owner, edges in sorted(groups.items()):
            self._cluster.network.rpc(
                requester=self._machine,
                responder=self._cluster.machine(owner),
                request_bytes=len(edges) * 2 * model.bytes_per_vertex_id,
                response_bytes=len(edges),
                service_ops=2.0 * len(edges),
            )
            graph = self._cluster.graph
            failed.extend(
                edge for edge in edges if not graph.has_edge(*edge)
            )
        dead = evi.failed_leaves(failed)
        dead_ids = {id(n) for n in dead}
        for leaf in dead:
            self._free_trie(trie.remove_leaf(leaf) * NODE_BYTES)
        if not dead_ids:
            return frontier
        return [n for n in frontier if id(n) not in dead_ids]
