"""Single-machine enumeration split (paper Sec. 3.1, Prop. 1).

For the starting query vertex ``u_start = dp0.piv``, any candidate vertex
whose border distance is at least ``Span(u_start)`` can only appear in
embeddings fully contained in the local partition, so those candidates are
handled by an ordinary single-machine algorithm over the local subgraph —
no communication, no distributed bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import Machine
from repro.core.embedding_trie import trie_nodes_for_results
from repro.core.region import MemoryEstimator
from repro.enumeration.backtracking import (
    BacktrackingEnumerator,
    EnumerationStats,
)
from repro.partition.partition import MachinePartition
from repro.query.pattern import Pattern
from repro.query.plan import ExecutionPlan


@dataclass
class SMEResult:
    """Output of the SM-E phase on one machine."""

    embeddings: list[tuple[int, ...]]
    local_candidates: list[int]
    distributed_candidates: list[int]
    stats: EnumerationStats


class SingleMachineSplit:
    """Computes C(u_start), the C1 split and runs SM-E over C1."""

    def __init__(self, pattern: Pattern, plan: ExecutionPlan,
                 constraints: list[tuple[int, int]]):
        self._pattern = pattern
        self._plan = plan
        self._constraints = constraints
        self._span = pattern.span(plan.start_vertex)

    def candidates(self, local: MachinePartition) -> list[int]:
        """C(u_start): owned vertices passing the degree filter."""
        min_degree = self._pattern.degree(self._plan.start_vertex)
        return [
            int(v)
            for v in local.owned_vertices
            if local.degree(int(v)) >= min_degree
        ]

    def split(
        self, local: MachinePartition
    ) -> tuple[list[int], list[int]]:
        """(C1, C - C1): SM-E candidates vs distributed candidates."""
        sme: list[int] = []
        distributed: list[int] = []
        for v in self.candidates(local):
            if local.border_distance(v) >= self._span:
                sme.append(v)
            else:
                distributed.append(v)
        return sme, distributed

    def run(
        self,
        local: MachinePartition,
        machine: Machine,
        estimator: MemoryEstimator | None = None,
    ) -> SMEResult:
        """Enumerate all embeddings rooted at C1 locally; charge the clock.

        Prop. 1 guarantees these embeddings involve only owned vertices, so
        the enumerator is restricted to the owned subgraph.  When an
        ``estimator`` is supplied it is calibrated with the average trie
        cost per start vertex (Sec. 6).
        """
        sme_candidates, distributed = self.split(local)
        stats = EnumerationStats()
        enumerator = BacktrackingEnumerator(
            pattern=self._pattern,
            adjacency=local.graph.neighbors,
            constraints=self._constraints,
            order=self._plan.matching_order(),
            allowed=local.is_owned,
            stats=stats,
        )
        embeddings = list(enumerator.run(sme_candidates))
        machine.charge_ops(stats.total_ops, "sme_ops")
        # Benchmarks read this to report the SM-E share of the result set.
        machine.counters["sme_embeddings"] += len(embeddings)
        if estimator is not None and sme_candidates:
            order = self._plan.matching_order()
            ordered = [
                tuple(emb[u] for u in order) for emb in embeddings
            ]
            estimator.calibrate(
                trie_nodes_for_results(ordered), len(sme_candidates)
            )
        return SMEResult(
            embeddings=embeddings,
            local_candidates=sme_candidates,
            distributed_candidates=distributed,
            stats=stats,
        )
