"""The embedding trie (paper Sec. 5, Def. 11).

Intermediate results (embeddings and embedding candidates) are stored as a
collection of trees whose level-``j`` nodes hold the data vertex matched to
the ``j``-th query vertex of the matching order.  Nodes keep only a data
vertex, a parent pointer and a child count — exactly the fields of Def. 11 —
so removal is a cascade up the parent chain and each leaf is a unique
result ID.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: Simulated per-node footprint: 8 B vertex + 8 B parent pointer + 4 B child
#: count, padded.  Used for the compression tables (Tables 3-4) and for
#: memory accounting.
NODE_BYTES = 24

#: Per-result container overhead of the naive embedding-list representation
#: (a variable-length row needs a header/pointer block; e.g. a C++
#: ``std::vector`` costs three pointers on 64-bit).
LIST_ENTRY_OVERHEAD = 24


class TrieNode:
    """One embedding-trie node."""

    __slots__ = ("v", "parent", "child_count")

    def __init__(self, v: int, parent: "TrieNode | None"):
        self.v = v
        self.parent = parent
        self.child_count = 0

    def path(self) -> list[int]:
        """Data vertices from the root down to (and including) this node."""
        values: list[int] = []
        node: TrieNode | None = self
        while node is not None:
            values.append(node.v)
            node = node.parent
        values.reverse()
        return values

    def depth(self) -> int:
        """Level of the node (root = 0)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth


class EmbeddingTrie:
    """A forest of :class:`TrieNode` trees with memory accounting hooks."""

    def __init__(self) -> None:
        self._roots: dict[int, TrieNode] = {}
        self.num_nodes = 0

    # ------------------------------------------------------------------
    @property
    def num_roots(self) -> int:
        """Number of trees (distinct first-vertex matches)."""
        return len(self._roots)

    def memory_bytes(self) -> int:
        """Simulated footprint of the trie."""
        return self.num_nodes * NODE_BYTES

    def roots(self) -> Iterator[TrieNode]:
        """Iterate root nodes."""
        return iter(self._roots.values())

    # ------------------------------------------------------------------
    def add_root(self, v: int) -> TrieNode:
        """Fetch-or-create the root for first-level vertex ``v``."""
        node = self._roots.get(v)
        if node is None:
            node = TrieNode(v, None)
            self._roots[v] = node
            self.num_nodes += 1
        return node

    def add_child(self, parent: TrieNode, v: int) -> TrieNode:
        """Create a child node.

        Expansion code guarantees sibling values are distinct (the
        backtracking enumeration never revisits a candidate), which upholds
        Def. 11 condition (3) without storing a children map.
        """
        node = TrieNode(v, parent)
        parent.child_count += 1
        self.num_nodes += 1
        return node

    def extend_path(self, parent: TrieNode | None, values: Iterable[int]) -> TrieNode:
        """Append a chain of nodes below ``parent`` (root chain if None)."""
        node = parent
        for v in values:
            if node is None:
                node = self.add_root(v)
            else:
                node = self.add_child(node, v)
        if node is None:
            raise ValueError("empty path")
        return node

    def detach_childless(self, child: TrieNode) -> int:
        """Remove exactly one childless node without cascading.

        Used mid-expansion (Algorithm 2): the parent is still being extended
        with further candidates, so its transiently-zero child count must
        not trigger an upward cascade.
        """
        if child.child_count != 0:
            raise ValueError("node still has children")
        parent = child.parent
        if parent is None:
            if self._roots.get(child.v) is child:
                del self._roots[child.v]
        else:
            parent.child_count -= 1
        child.parent = None
        self.num_nodes -= 1
        return 1

    def remove_leaf(self, leaf: TrieNode) -> int:
        """Remove a result; cascades up while parents lose their last child.

        Returns the number of nodes removed (for memory release).
        """
        removed = 0
        node: TrieNode | None = leaf
        while node is not None and node.child_count == 0:
            parent = node.parent
            if parent is None:
                if self._roots.get(node.v) is node:
                    del self._roots[node.v]
            else:
                parent.child_count -= 1
            node.parent = None
            removed += 1
            node = parent
        self.num_nodes -= removed
        return removed

    # ------------------------------------------------------------------
    def leaves_at_depth(self, depth: int) -> list[TrieNode]:
        """All nodes at ``depth`` (a full scan; used by tests, not hot paths)."""
        result: list[TrieNode] = []

        def walk(node: TrieNode, d: int, children: dict) -> None:
            if d == depth:
                result.append(node)

        # Without child pointers a scan requires an auxiliary index, so
        # tests use the frontier lists maintained by R-Meef instead;
        # this helper only works for depth 0.
        if depth == 0:
            return list(self._roots.values())
        raise NotImplementedError(
            "trie nodes store no child pointers; track frontiers externally"
        )


def trie_from_paths(
    paths: Iterable[tuple[int, ...]],
) -> "tuple[EmbeddingTrie, list[TrieNode]]":
    """Build a prefix-sharing trie from root-to-leaf paths.

    The trie itself stores no child maps (Def. 11), so construction keeps
    an external prefix index, exactly as the R-Meef frontier code does
    mid-expansion.  Returns the trie and one leaf node per *distinct*
    path, in first-seen order.  All paths must have the same length.
    """
    trie = EmbeddingTrie()
    index: dict[tuple[int, ...], TrieNode] = {}
    leaves: list[TrieNode] = []
    depth: int | None = None
    for path in paths:
        path = tuple(path)
        if not path:
            raise ValueError("empty path")
        if depth is None:
            depth = len(path)
        elif len(path) != depth:
            raise ValueError(
                f"ragged paths: expected length {depth}, got {len(path)}"
            )
        if path in index:
            continue
        node = index.get(path[:1])
        if node is None:
            node = trie.add_root(path[0])
            index[path[:1]] = node
        for i in range(2, len(path) + 1):
            prefix = path[:i]
            child = index.get(prefix)
            if child is None:
                child = trie.add_child(node, prefix[-1])
                index[prefix] = child
            node = child
        leaves.append(node)
    return trie, leaves


def embedding_list_bytes(count: int, num_query_vertices: int) -> int:
    """Footprint of the naive embedding-list (EL) representation."""
    return count * (num_query_vertices * 8 + LIST_ENTRY_OVERHEAD)


def trie_nodes_for_results(results: list[tuple[int, ...]]) -> int:
    """Nodes an embedding trie needs for ``results`` (prefix-tree size).

    Used by the compression experiment (Tables 3-4): results sharing
    prefixes in matching order share trie nodes.
    """
    seen: set[tuple[int, ...]] = set()
    for emb in results:
        for i in range(1, len(emb) + 1):
            seen.add(emb[:i])
    return len(seen)
