"""Region groups and memory estimation (paper Sec. 6, Algorithm 3).

The candidate vertices of ``dp0.piv`` on a machine are split into disjoint
*region groups*, each small enough that its intermediate results fit in the
available memory.  Groups grow greedily by neighbourhood proximity
(Eq. 5), so candidates in a group share foreign fetches and edge
verifications.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.embedding_trie import NODE_BYTES


class MemoryEstimator:
    """Estimates the embedding-trie bytes a start vertex will generate.

    Calibrated from SM-E (Sec. 6): while enumerating the local embeddings
    the average trie-node count per processed start vertex is recorded; the
    distributed phase reuses that average.  Before calibration (or when SM-E
    processed nothing) a degree-based fallback is used.
    """

    def __init__(self, num_unit_leaves: int):
        self._num_unit_leaves = max(1, num_unit_leaves)
        self._calibrated: float | None = None

    def calibrate(self, trie_nodes: int, start_vertices: int) -> None:
        """Feed SM-E statistics (total trie nodes, candidates processed)."""
        if start_vertices > 0:
            self._calibrated = trie_nodes / start_vertices

    def estimate_bytes(self, degree: int) -> int:
        """Estimated trie bytes for results originating from one vertex."""
        if self._calibrated is not None:
            nodes = self._calibrated
        else:
            # Worst case for round 0: one node per leaf combination,
            # capped to keep the fallback sane on hubs.
            nodes = min(float(degree) ** self._num_unit_leaves, 1e6)
        return int(max(1.0, nodes) * NODE_BYTES)


class RegionGrouper:
    """Algorithm 3: greedy proximity grouping under a memory budget."""

    def __init__(
        self,
        adjacency: Callable[[int], np.ndarray],
        estimator: MemoryEstimator,
        budget_bytes: float,
        seed: int = 0,
        max_probe: int = 96,
        strategy: str = "proximity",
    ):
        if strategy not in ("proximity", "random"):
            raise ValueError(f"unknown grouping strategy: {strategy!r}")
        self._adjacency = adjacency
        self._estimator = estimator
        self._budget = budget_bytes
        self._rng = np.random.default_rng(seed)
        # Proximity is evaluated for at most this many frontier candidates
        # per step, keeping grouping near-linear on large candidate sets.
        self._max_probe = max_probe
        # "random" reproduces the naive grouping the paper argues against
        # (Sec. 6, Fig. 6): same budget, no locality — used by ablations.
        self._strategy = strategy

    def proximity(self, v: int, group_neighbours: set[int]) -> float:
        """Eq. 5: fraction of v's neighbours adjacent to the group."""
        adj = self._adjacency(v)
        if len(adj) == 0:
            return 0.0
        shared = sum(1 for w in adj if int(w) in group_neighbours)
        return shared / len(adj)

    def groups(self, candidates: list[int]) -> list[list[int]]:
        """Partition ``candidates`` into region groups.

        Each group's estimated memory stays below the budget (single-vertex
        groups are allowed to exceed it — they cannot be split further).
        """
        remaining = set(int(v) for v in candidates)
        result: list[list[int]] = []
        while remaining:
            seed_vertex = int(
                self._rng.choice(np.fromiter(remaining, dtype=np.int64))
            )
            remaining.discard(seed_vertex)
            group = [seed_vertex]
            cost = self._estimator.estimate_bytes(
                len(self._adjacency(seed_vertex))
            )
            group_neighbours = {int(w) for w in self._adjacency(seed_vertex)}
            # Frontier: remaining candidates within distance 2 of the group.
            frontier = {
                v for v in remaining
                if v in group_neighbours
                or any(int(w) in group_neighbours for w in self._adjacency(v)[: 32])
            }
            while remaining and cost < self._budget:
                pool = frontier & remaining
                if self._strategy == "random":
                    best = int(
                        self._rng.choice(np.fromiter(remaining, dtype=np.int64))
                    )
                elif pool:
                    probe = list(pool)
                    if len(probe) > self._max_probe:
                        idx = self._rng.choice(
                            len(probe), size=self._max_probe, replace=False
                        )
                        probe = [probe[i] for i in idx]
                    best = max(
                        probe,
                        key=lambda v: (self.proximity(v, group_neighbours), -v),
                    )
                else:
                    best = int(
                        self._rng.choice(np.fromiter(remaining, dtype=np.int64))
                    )
                extra = self._estimator.estimate_bytes(
                    len(self._adjacency(best))
                )
                if cost + extra > self._budget:
                    break
                remaining.discard(best)
                frontier.discard(best)
                group.append(best)
                cost += extra
                new_neighbours = {int(w) for w in self._adjacency(best)}
                group_neighbours |= new_neighbours
                frontier |= {v for v in remaining if v in new_neighbours}
            result.append(sorted(group))
        return result
