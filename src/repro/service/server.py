"""The socket front end: a long-running query service over one graph.

:class:`QueryServer` binds a TCP socket and speaks the JSON-lines
protocol of :mod:`repro.service.protocol`; every connection gets its own
handler thread (``ThreadingTCPServer``), and all connections share one
:class:`~repro.service.scheduler.QueryScheduler` — so the priority queue,
admission budget, in-flight deduplication and result cache apply across
clients, which is the whole point of a serving layer.

Entry points::

    server = repro.Session(graph).serve(port=0)        # API front door
    python -m repro serve --graph g.npz --port 7463    # CLI

With ``log_path`` every served result/explanation record — and every
delivered streaming delta record — is appended to a JSONL request log
(via :func:`repro.api.results.append_record_jsonl`), replayable with
:func:`repro.api.results.read_records_jsonl`.

This transport is deliberately minimal — newline-framed JSON over TCP —
because it is also the first cut of the socket layer the ROADMAP's
distributed-shards work will ride on.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from concurrent.futures import CancelledError
from typing import TYPE_CHECKING, Any

from repro.api.config import RunConfig
from repro.api.registry import EngineRegistry, default_registry
from repro.distributed.registry import ShardRegistry
from repro.service import protocol
from repro.service.cache import ResultCache
from repro.service.scheduler import QueryScheduler, ServiceTimeout

if TYPE_CHECKING:  # pragma: no cover - types only
    from typing import Mapping

    from repro.graph.graph import Graph
    from repro.service.tenancy import TenantQuota
    from repro.store import EmbeddingStore

__all__ = ["QueryServer"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: hello, then a request/response loop until EOF."""

    server: "_TCPServer"

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        front = self.server.front
        # Responses and pushed delta lines share this connection; the
        # lock keeps their JSON-lines framing from interleaving.
        write_lock = threading.Lock()

        def send(message: dict) -> None:
            with write_lock:
                protocol.write_message(self.wfile, message)

        #: Watch ids whose push sink is this connection (detached on EOF).
        attached: list[str] = []
        try:
            try:
                send(front._hello())
            except OSError:
                # e.g. a readiness probe that connected and hung up.
                return
            while True:
                try:
                    message = protocol.read_message(self.rfile)
                except (protocol.ProtocolError, OSError) as exc:
                    try:
                        send(protocol.error_response(None, str(exc)))
                    except OSError:
                        pass
                    return
                if message is None:
                    return
                if not message:  # blank keep-alive line
                    continue
                response = front._dispatch(
                    message, push=send, attached=attached
                )
                try:
                    send(response)
                except OSError:
                    return
                if response.get("kind") == "bye":
                    front._request_shutdown()
                    return
        finally:
            for watch_id in attached:
                front.streams.detach_push(watch_id)


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    front: "QueryServer"


class QueryServer:
    """JSON-lines TCP server over one :class:`QueryScheduler`.

    ``port=0`` binds an ephemeral port; read the actual one from
    :attr:`address`.  Use :meth:`start` for a background server (tests,
    notebooks) or :meth:`serve_forever` to block (the CLI); either way
    :meth:`close` — or a client ``shutdown`` op — stops the accept loop
    and the scheduler.
    """

    def __init__(
        self,
        graph: "Graph",
        config: RunConfig | None = None,
        registry: EngineRegistry | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        threads: int = 4,
        cache: "ResultCache | None | bool" = None,
        cache_dir: "str | None" = None,
        store: "EmbeddingStore | None" = None,
        store_dir: "str | None" = None,
        memory_budget_mb: float | None = None,
        log_path: "str | None" = None,
        partition: Any = None,
        tenants: "Mapping[str, TenantQuota] | None" = None,
        default_quota: "TenantQuota | None" = None,
        shard_registry: "ShardRegistry | None" = None,
        verify_deltas: bool = False,
        slow_log: int = 16,
        events_path: "str | None" = None,
    ):
        self.graph = graph
        self.config = config or RunConfig()
        self.registry = registry or default_registry()
        if cache_dir is not None:
            if isinstance(cache, ResultCache):
                raise ValueError(
                    "pass either a ready ResultCache (configure its "
                    "disk_dir yourself) or cache_dir, not both"
                )
            if cache is False:
                raise ValueError("cache_dir is meaningless with cache=False")
            cache = ResultCache(disk_dir=cache_dir)
        if store_dir is not None:
            if store is not None:
                raise ValueError(
                    "pass either a ready EmbeddingStore or store_dir, "
                    "not both"
                )
            from repro.store import EmbeddingStore

            store = EmbeddingStore(store_dir)
        self.store = store
        # Always own a registry: the announce op must work even when the
        # backend is local (a worker can announce before an operator
        # flips the config to socket on restart), and metrics reports
        # the roster either way.
        self.shard_registry = (
            shard_registry if shard_registry is not None else ShardRegistry()
        )
        self._started = time.monotonic()
        # Bind before building the scheduler: a bind failure (port in
        # use) must not strand live worker threads / process pools.
        self._tcp = _TCPServer((host, int(port)), _Handler)
        try:
            self.scheduler = QueryScheduler(
                graph,
                self.config,
                self.registry,
                threads=threads,
                cache=cache,
                memory_budget_mb=memory_budget_mb,
                partition=partition,
                tenants=tenants,
                default_quota=default_quota,
                shard_registry=self.shard_registry,
                store=store,
                slow_log=slow_log,
            )
        except BaseException:
            self._tcp.server_close()
            raise
        # Continuous queries + streaming ingest ride the scheduler's
        # worker pool; each applied batch rebinds the scheduler (and
        # reclaims the superseded version's cache entries) via _on_rebind.
        from repro.streaming import ContinuousQueryManager

        # Observability: the process-wide event journal (optionally
        # mirrored to a JSONL sink) and the SLO health engine evaluated
        # over _metrics() on demand by the ``health`` op.
        from repro.obs.events import journal as _journal
        from repro.obs.health import HealthEngine

        if events_path is not None:
            _journal().set_sink(events_path)
        self.health = HealthEngine()
        self.streams = ContinuousQueryManager(
            graph,
            scheduler=self.scheduler,
            verify=verify_deltas,
            on_rebind=self._on_rebind,
            on_record=lambda record: self._log_record(record.to_dict()),
        )
        self._log_path = log_path
        self._log_lock = threading.Lock()
        self._explain_engines: dict[str, Any] = {}
        self._explain_lock = threading.Lock()
        self._tcp.front = self
        self._thread: threading.Thread | None = None
        self._closed = False
        #: True once a serve loop was launched; close() must only call
        #: _tcp.shutdown() then — shutdown() waits on an event that only
        #: serve_forever() sets, so it would hang for a never-started
        #: server (e.g. Session.serve(start=False) closed unused).
        self._serving = False
        # close() can race: the shutdown op runs it on a daemon thread
        # while the owning `with server:` exits.  Serialize the whole
        # teardown so the loser blocks until the winner has fully closed.
        self._close_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        return self._tcp.server_address[:2]

    def start(self) -> "QueryServer":
        """Serve on a daemon thread; returns immediately."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._tcp.serve_forever,
                name="repro-query-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`close` or a shutdown op."""
        self._serving = True
        self._tcp.serve_forever()

    def close(self) -> None:
        """Stop accepting, release the socket, stop the scheduler.

        Idempotent and thread-safe: concurrent callers (the ``shutdown``
        op's daemon thread vs. the owner's context exit) serialize, and
        every caller returns only once the teardown has fully finished.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            if self._serving:
                self._tcp.shutdown()
            self._tcp.server_close()
            if self._thread is not None:
                self._thread.join()
                self._thread = None
            self.scheduler.close()

    def _request_shutdown(self) -> None:
        """Shutdown initiated from a handler thread (the ``shutdown`` op)."""
        threading.Thread(target=self.close, daemon=True).start()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Protocol dispatch (one call per request line)
    # ------------------------------------------------------------------
    def _on_rebind(self, old: Any, new: Any) -> None:
        """Swap the serving layer over to a freshly ingested version.

        In-flight queries keep their pinned snapshot (scheduler
        executions capture graph + partition at submit); everything that
        serves *new* requests — the scheduler's graph, the explain-engine
        cache, the hello/metrics fingerprints — moves to the new version,
        and the superseded version's now-unreachable result-cache entries
        are reclaimed by fingerprint.
        """
        from repro.obs import events as _events

        _events.emit(
            "info",
            "streaming",
            _events.GRAPH_REBIND,
            old_fingerprint=old.fingerprint,
            new_fingerprint=new.fingerprint,
            version=new.version,
        )
        self.scheduler.rebind_graph(new.graph)
        self.graph = new.graph
        with self._explain_lock:
            self._explain_engines.clear()
        if self.scheduler.cache is not None:
            self.scheduler.cache.evict_graph(old.fingerprint)
        if self.store is not None:
            # Stored sets for the superseded snapshot are stale the same
            # way cache entries are — and they persist, so unlink them.
            self.store.evict_graph(old.fingerprint)

    def _hello(self) -> dict[str, Any]:
        current = self.streams.current
        return {
            "kind": "hello",
            "ok": True,
            "version": protocol.PROTOCOL_VERSION,
            "graph": current.fingerprint,
            "graph_version": current.version,
            "num_vertices": current.graph.num_vertices,
            "num_edges": current.graph.num_edges,
            "engines": self.registry.names(),
        }

    def _dispatch(
        self,
        message: dict[str, Any],
        *,
        push: Any = None,
        attached: "list[str] | None" = None,
    ) -> dict[str, Any]:
        request_id = message.get("id")
        op = message.get("op")
        try:
            if op == "submit":
                return self._op_submit(request_id, message)
            if op == "explain":
                return self._op_explain(request_id, message)
            if op == "stats":
                return protocol.ok_response(
                    request_id, "stats", self.scheduler.stats()
                )
            if op == "ping":
                return protocol.ok_response(
                    request_id,
                    "pong",
                    {"version": protocol.PROTOCOL_VERSION},
                )
            if op == "shutdown":
                return protocol.ok_response(request_id, "bye", None)
            if op == "announce":
                return self._op_announce(request_id, message)
            if op == "metrics":
                return self._op_metrics(request_id, message)
            if op == "events":
                return self._op_events(request_id, message)
            if op == "health":
                return self._op_health(request_id, message)
            if op == "register":
                return self._op_register(request_id, message, push, attached)
            if op == "unregister":
                return self._op_unregister(request_id, message)
            if op == "ingest":
                return self._op_ingest(request_id, message)
            if op == "poll":
                return self._op_poll(request_id, message)
            if op == "page":
                return self._op_page(request_id, message)
            if op == "lookup":
                return self._op_lookup(request_id, message)
            if op == "aggregate":
                return self._op_aggregate(request_id, message)
            return protocol.error_response(
                request_id,
                f"unknown op {op!r}; expected one of "
                f"{', '.join(protocol.OPS)}",
            )
        except ServiceTimeout as exc:
            return protocol.error_response(request_id, f"timeout: {exc}")
        except CancelledError:
            # A shutdown cancelled the queued request under this waiter.
            return protocol.error_response(
                request_id, "request cancelled (server shutting down?)"
            )
        except Exception as exc:
            # Whatever an engine (or a third-party plugin) raised: the
            # connection must answer, not die — AdmissionError,
            # UnknownEngineError/UnknownQueryError, SchedulerClosed,
            # type errors from malformed fields, plugin bugs, all of it.
            return protocol.error_response(
                request_id, f"{type(exc).__name__}: {exc}"
            )

    @staticmethod
    def _bad_field(name: str, expected: str, value: Any) -> str:
        return (
            f"invalid {name!r} field: expected {expected}, got {value!r}"
        )

    def _validate_submit(self, message: dict[str, Any]) -> "str | None":
        """The first malformed submit field as an error message, or None.

        Checked up front, naming the offending field, so a typed client
        bug ("priority": "high") gets a protocol error it can act on —
        not a generic coercion traceback — and the connection stays
        serviceable.
        """
        query = message.get("query")
        if not isinstance(query, str) or not query:
            return "submit needs a 'query' (name or pattern DSL)"
        engine = message.get("engine")
        if engine is not None and not isinstance(engine, str):
            return self._bad_field("engine", "an engine name string", engine)
        priority = message.get("priority")
        if priority is not None and (
            not isinstance(priority, int) or isinstance(priority, bool)
        ):
            return self._bad_field("priority", "an integer", priority)
        timeout = message.get("timeout")
        if timeout is not None and (
            not isinstance(timeout, (int, float))
            or isinstance(timeout, bool)
            or timeout <= 0
        ):
            return self._bad_field(
                "timeout", "a positive number of seconds", timeout
            )
        collect = message.get("collect")
        if collect is not None and not (
            isinstance(collect, bool) or collect == "store"
        ):
            return self._bad_field(
                "collect", "a boolean or 'store'", collect
            )
        limit = message.get("limit")
        if limit is not None and (
            not isinstance(limit, int)
            or isinstance(limit, bool)
            or limit < 1
        ):
            return self._bad_field("limit", "a positive integer", limit)
        memory_mb = message.get("memory_mb")
        if memory_mb is not None and (
            not isinstance(memory_mb, (int, float))
            or isinstance(memory_mb, bool)
            or memory_mb <= 0
        ):
            return self._bad_field(
                "memory_mb", "a positive number of MiB", memory_mb
            )
        tenant = message.get("tenant")
        if tenant is not None and (
            not isinstance(tenant, str) or not tenant
        ):
            return self._bad_field(
                "tenant", "a non-empty tenant name string", tenant
            )
        trace = message.get("trace")
        if trace is not None and not isinstance(trace, bool):
            return self._bad_field("trace", "a boolean", trace)
        profile = message.get("profile")
        if profile is not None and not isinstance(profile, bool):
            return self._bad_field("profile", "a boolean", profile)
        return None

    def _op_submit(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        problem = self._validate_submit(message)
        if problem is not None:
            return protocol.error_response(request_id, problem)
        ticket = self.scheduler.submit(
            str(message["query"]),
            str(message.get("engine") or "RADS"),
            priority=message.get("priority") or 0,
            timeout=message.get("timeout"),
            collect=message.get("collect"),
            limit=message.get("limit"),
            memory_mb=message.get("memory_mb"),
            tenant=message.get("tenant"),
            trace=bool(message.get("trace", False)),
            profile=bool(message.get("profile", False)),
        )
        result = ticket.result()
        cache = (
            "hit" if ticket.cache_hit
            else "dedup" if ticket.deduped
            else "miss"
        )
        record = result.to_dict()
        self._log_record(record)
        return protocol.ok_response(
            request_id, "result", record, cache=cache, store=ticket.store
        )

    def _op_explain(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        from repro.api.session import resolve_query

        query = message.get("query")
        if not query:
            return protocol.error_response(
                request_id, "explain needs a 'query' (name or pattern DSL)"
            )
        engine_name = self.registry.resolve(
            str(message.get("engine", "RADS"))
        ).name
        with self._explain_lock:
            engine = self._explain_engines.get(engine_name)
            if engine is None:
                engine = self.registry.create(engine_name, graph=self.graph)
                self._explain_engines[engine_name] = engine
            # explain() is analytical and engine state is untouched, but
            # engines are not thread-safe in general: hold the lock.
            explanation = engine.explain(
                resolve_query(str(query)),
                graph=self.graph if message.get("estimates", True) else None,
            )
        record = explanation.to_dict()
        self._log_record(record)
        return protocol.ok_response(request_id, "explanation", record)

    def _op_announce(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        address = message.get("address")
        if not isinstance(address, str) or not address:
            return protocol.error_response(
                request_id,
                self._bad_field(
                    "address", "a 'host:port' worker address", address
                ),
            )
        try:
            host, port = protocol.parse_address(address)
        except ValueError as exc:
            return protocol.error_response(
                request_id, f"invalid 'address' field: {exc}"
            )
        canonical = f"{host}:{port}"
        if message.get("withdraw"):
            known = self.shard_registry.withdraw(canonical)
            if known:
                from repro.obs import events as _events

                _events.emit(
                    "info",
                    "registry",
                    _events.WORKER_LEFT,
                    address=canonical,
                    roster=len(self.shard_registry),
                )
            return protocol.ok_response(
                request_id,
                "withdrawn",
                {
                    "address": canonical,
                    "known": known,
                    "roster": len(self.shard_registry),
                    "version": self.shard_registry.version(),
                },
            )
        graphs = message.get("graphs") or ()
        if not isinstance(graphs, (list, tuple)) or not all(
            isinstance(g, str) for g in graphs
        ):
            return protocol.error_response(
                request_id,
                self._bad_field(
                    "graphs", "a list of graph fingerprints", graphs
                ),
            )
        before = self.shard_registry.version()
        version = self.shard_registry.announce(
            canonical,
            graphs=graphs,
            workers=message.get("workers"),
            pid=message.get("pid"),
        )
        if version != before:
            # A version advance means a *new* roster member (re-announces
            # refresh in place); that join is the transition the health
            # engine's worker_loss rule clears on.
            from repro.obs import events as _events

            _events.emit(
                "info",
                "registry",
                _events.WORKER_JOINED,
                address=canonical,
                roster=len(self.shard_registry),
                rejoined=self.shard_registry.announces(canonical) > 1,
            )
        stale_after = self.shard_registry.stale_after
        return protocol.ok_response(
            request_id,
            "announced",
            {
                "address": canonical,
                "roster": len(self.shard_registry),
                "version": version,
                # The re-announce cadence that keeps the entry fresh.
                "interval": (
                    None if stale_after is None else stale_after / 3.0
                ),
            },
        )

    # -- streaming / continuous queries --------------------------------
    def _op_register(
        self,
        request_id: Any,
        message: dict[str, Any],
        push: Any,
        attached: "list[str] | None",
    ) -> dict[str, Any]:
        query = message.get("query")
        if not isinstance(query, str) or not query:
            return protocol.error_response(
                request_id, "register needs a 'query' (name or pattern DSL)"
            )
        tenant = message.get("tenant")
        if tenant is not None and (
            not isinstance(tenant, str) or not tenant
        ):
            return protocol.error_response(
                request_id,
                self._bad_field(
                    "tenant", "a non-empty tenant name string", tenant
                ),
            )
        collect = message.get("collect")
        if collect is not None and not isinstance(collect, bool):
            return protocol.error_response(
                request_id, self._bad_field("collect", "a boolean", collect)
            )
        wants_push = message.get("push")
        if wants_push is not None and not isinstance(wants_push, bool):
            return protocol.error_response(
                request_id, self._bad_field("push", "a boolean", wants_push)
            )
        watch = self.streams.register(
            query,
            tenant=tenant,
            collect=True if collect is None else collect,
        )
        if wants_push and push is not None:
            self.streams.attach_push(
                watch.id,
                lambda record, send=push, watch_id=watch.id: send({
                    "kind": "delta",
                    "ok": True,
                    "watch": watch_id,
                    "result": record.to_dict(),
                }),
            )
            if attached is not None:
                attached.append(watch.id)
        current = self.streams.current
        return protocol.ok_response(
            request_id,
            "registered",
            {
                "watch": watch.id,
                "pattern": watch.pattern.name,
                "version": current.version,
                "fingerprint": current.fingerprint,
                "push": bool(wants_push and push is not None),
            },
        )

    def _op_unregister(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        watch_id = message.get("watch")
        if not isinstance(watch_id, str) or not watch_id:
            return protocol.error_response(
                request_id,
                self._bad_field("watch", "a watch id string", watch_id),
            )
        known = self.streams.unregister(watch_id)
        return protocol.ok_response(
            request_id, "unregistered", {"watch": watch_id, "known": known}
        )

    @staticmethod
    def _edge_batch(value: Any, name: str) -> "list[tuple[int, int]] | str":
        """Parse one ingest edge list; an error string when malformed."""
        if value is None:
            return []
        if not isinstance(value, (list, tuple)):
            return QueryServer._bad_field(
                name, "a list of [u, v] vertex pairs", value
            )
        edges = []
        for item in value:
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
                or not all(
                    isinstance(x, int) and not isinstance(x, bool)
                    for x in item
                )
            ):
                return QueryServer._bad_field(
                    name, "a list of [u, v] vertex pairs", item
                )
            edges.append((int(item[0]), int(item[1])))
        return edges

    def _op_ingest(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        additions = self._edge_batch(message.get("additions"), "additions")
        if isinstance(additions, str):
            return protocol.error_response(request_id, additions)
        deletions = self._edge_batch(message.get("deletions"), "deletions")
        if isinstance(deletions, str):
            return protocol.error_response(request_id, deletions)
        if not additions and not deletions:
            return protocol.error_response(
                request_id,
                "ingest needs 'additions' and/or 'deletions' edge lists",
            )
        try:
            report = self.streams.ingest(additions, deletions)
        except ValueError as exc:
            # Batch validation: names the offending field/edge.
            return protocol.error_response(
                request_id, f"invalid ingest batch: {exc}"
            )
        return protocol.ok_response(request_id, "ingested", report)

    def _op_poll(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        watch_id = message.get("watch")
        if not isinstance(watch_id, str) or not watch_id:
            return protocol.error_response(
                request_id,
                self._bad_field("watch", "a watch id string", watch_id),
            )
        wait = message.get("wait")
        if wait is not None and (
            not isinstance(wait, (int, float))
            or isinstance(wait, bool)
            or wait <= 0
        ):
            return protocol.error_response(
                request_id,
                self._bad_field(
                    "wait", "a positive number of seconds", wait
                ),
            )
        try:
            watch = self.streams.get(watch_id)
        except KeyError:
            return protocol.error_response(
                request_id, f"unknown 'watch' id {watch_id!r}"
            )
        records = watch.poll(wait=wait)
        return protocol.ok_response(
            request_id,
            "deltas",
            {
                "watch": watch_id,
                "deltas": [record.to_dict() for record in records],
                "dropped": watch.dropped,
            },
        )

    # -- embedding store (page / lookup / aggregate) --------------------
    def _store_query(
        self, message: dict[str, Any], op: str
    ) -> "tuple[str, str] | str":
        """Validated (query, engine) for a store op; error string if bad."""
        query = message.get("query")
        if not isinstance(query, str) or not query:
            return f"{op} needs a 'query' (name or pattern DSL)"
        engine = message.get("engine")
        if engine is not None and not isinstance(engine, str):
            return self._bad_field("engine", "an engine name string", engine)
        return query, str(engine or "RADS")

    def _op_page(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        parsed = self._store_query(message, "page")
        if isinstance(parsed, str):
            return protocol.error_response(request_id, parsed)
        query, engine = parsed
        limit = message.get("limit")
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            return protocol.error_response(
                request_id,
                self._bad_field("limit", "a positive integer", limit),
            )
        offset = message.get("offset", 0)
        if (
            not isinstance(offset, int)
            or isinstance(offset, bool)
            or offset < 0
        ):
            return protocol.error_response(
                request_id,
                self._bad_field("offset", "a non-negative integer", offset),
            )
        try:
            result = self.scheduler.page(
                query, engine, limit=limit, offset=offset
            )
        except LookupError as exc:
            return protocol.error_response(request_id, str(exc))
        self._log_store_read("page", query, engine, result)
        return protocol.ok_response(request_id, "page", result)

    def _op_lookup(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        parsed = self._store_query(message, "lookup")
        if isinstance(parsed, str):
            return protocol.error_response(request_id, parsed)
        query, engine = parsed
        vertex = message.get("vertex")
        if (
            not isinstance(vertex, int)
            or isinstance(vertex, bool)
            or vertex < 0
        ):
            return protocol.error_response(
                request_id,
                self._bad_field(
                    "vertex", "a non-negative data vertex id", vertex
                ),
            )
        try:
            result = self.scheduler.lookup(query, engine, vertex=vertex)
        except LookupError as exc:
            return protocol.error_response(request_id, str(exc))
        self._log_store_read("lookup", query, engine, result)
        return protocol.ok_response(request_id, "lookup", result)

    def _op_aggregate(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        from repro.store.columnar import AGGREGATE_MODES

        parsed = self._store_query(message, "aggregate")
        if isinstance(parsed, str):
            return protocol.error_response(request_id, parsed)
        query, engine = parsed
        group_by = message.get("group_by", "root")
        if group_by not in AGGREGATE_MODES:
            return protocol.error_response(
                request_id,
                self._bad_field(
                    "group_by",
                    f"one of {', '.join(AGGREGATE_MODES)}",
                    group_by,
                ),
            )
        try:
            result = self.scheduler.aggregate(
                query, engine, group_by=str(group_by)
            )
        except LookupError as exc:
            return protocol.error_response(request_id, str(exc))
        self._log_store_read("aggregate", query, engine, result)
        return protocol.ok_response(request_id, "aggregate", result)

    def _log_store_read(
        self, kind: str, query: str, engine: str, result: dict[str, Any]
    ) -> None:
        """Append a served store read to the request log (replayable —
        ``record_from_dict`` passes these ``kind``-tagged dicts through).
        """
        if self._log_path is None:
            return
        record = dict(result)
        # Embedding pages can be large; the log keeps the read's shape
        # (query, engine, counts, disposition), not the payload rows.
        record.pop("embeddings", None)
        record.update(kind=kind, query=query, engine=engine)
        self._log_record(record)

    def _op_metrics(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        """The ``metrics`` op: structured JSON, or Prometheus-style text.

        ``format: "text"`` renders the same snapshot through
        :func:`repro.obs.expo.render_text` and returns it as a string
        result (one ``repro_*`` sample per line).
        """
        fmt = message.get("format")
        if fmt not in (None, "json", "text"):
            return protocol.error_response(
                request_id,
                self._bad_field("format", "'json' or 'text'", fmt),
            )
        payload: Any = self._metrics()
        if fmt == "text":
            from repro.obs.expo import render_text

            payload = render_text(payload)
        return protocol.ok_response(request_id, "metrics", payload)

    def _op_events(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        """The ``events`` op: filtered slice of the event journal.

        Optional filters: ``level`` (minimum severity), ``component``,
        ``since`` (strictly-greater sequence cursor — pass the last
        ``seq`` you saw to poll incrementally), ``limit`` (newest N).
        """
        from repro.obs import events as _events

        level = message.get("level")
        if level is not None and level not in _events.LEVELS:
            return protocol.error_response(
                request_id,
                self._bad_field(
                    "level", f"one of {', '.join(_events.LEVELS)}", level
                ),
            )
        component = message.get("component")
        if component is not None and (
            not isinstance(component, str) or not component
        ):
            return protocol.error_response(
                request_id,
                self._bad_field(
                    "component", "a component name string", component
                ),
            )
        since = message.get("since")
        if since is not None and (
            not isinstance(since, int)
            or isinstance(since, bool)
            or since < 0
        ):
            return protocol.error_response(
                request_id,
                self._bad_field(
                    "since", "a non-negative sequence number", since
                ),
            )
        limit = message.get("limit")
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 1
        ):
            return protocol.error_response(
                request_id,
                self._bad_field("limit", "a positive integer", limit),
            )
        journal = _events.journal()
        records = journal.snapshot(
            level=level, component=component, since=since, limit=limit
        )
        return protocol.ok_response(
            request_id,
            "events",
            {
                "events": records,
                "last_seq": journal.last_seq,
                "capacity": journal.capacity,
            },
        )

    def _op_health(
        self, request_id: Any, message: dict[str, Any]
    ) -> dict[str, Any]:
        """The ``health`` op: the SLO verdict over the live metrics."""
        verdict = self.health.evaluate(self._metrics())
        return protocol.ok_response(request_id, "health", verdict)

    def _metrics(self) -> dict[str, Any]:
        """Structured service counters for the ``metrics`` op."""
        from repro.obs.events import journal

        _journal = journal()
        scheduler = self.scheduler.stats()
        cache = scheduler.pop("cache", None)
        store = scheduler.pop("store", None)
        tenants = scheduler.pop("tenants", {})
        observability = self.scheduler.observability()
        current = self.streams.current
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "protocol_version": protocol.PROTOCOL_VERSION,
            "graph": current.fingerprint,
            "graph_version": current.version,
            "scheduler": scheduler,
            "cache": cache,
            "store": store,
            "tenants": tenants,
            "histograms": observability["histograms"],
            "slow_queries": observability["slow_queries"],
            "streaming": self.streams.stats(),
            "shards": {
                "configured": list(self.config.shards or ()),
                "registry": self.shard_registry.snapshot(),
                "version": self.shard_registry.version(),
            },
            "events": {
                "last_seq": _journal.last_seq,
                "retained": len(_journal),
                "capacity": _journal.capacity,
            },
        }

    # ------------------------------------------------------------------
    def _log_record(self, record: dict[str, Any]) -> None:
        if self._log_path is None:
            return
        from repro.api.results import append_record_jsonl

        # Logged on a copy: the wall-clock stamp is a property of the
        # *log line* (when the server served it), not of the record the
        # response carries — responses stay byte-identical to PR 8.
        entry = dict(record)
        entry.setdefault("ts", time.time())
        with self._log_lock:
            append_record_jsonl(entry, self._log_path)


def wait_until_serving(
    address: tuple[str, int], timeout: float = 10.0
) -> None:
    """Block until a server accepts connections at ``address`` (or raise).

    Convenience for scripts that background ``repro serve`` and need a
    readiness gate sturdier than sleeping.
    """
    import time

    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with socket.create_connection(address, timeout=1.0):
                return
        except OSError as exc:
            last_error = exc
            time.sleep(0.05)
    raise TimeoutError(
        f"no query server answering at {address} after {timeout}s: "
        f"{last_error}"
    )
