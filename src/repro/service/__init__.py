"""Query service layer: scheduler + result cache + socket server/client.

This package turns the library into a long-running service (PR 4 of the
ROADMAP's march toward serving heavy traffic):

- :class:`~repro.service.scheduler.QueryScheduler` — concurrent
  submissions over one graph: priority queue + worker threads over the
  existing engines/executors, admission-control memory budget derived
  from :attr:`RunConfig.memory_mb`, deduplication of identical in-flight
  queries, per-request timeout and cancellation.
- :class:`~repro.service.cache.ResultCache` — LRU + TTL result cache
  keyed by ``(graph fingerprint, pattern.canonical_key(), engine, config
  digest, collect)``; a hit for any *isomorphic* rewrite of a cached
  query serves the stored result with embeddings correctly remapped.
- :class:`~repro.service.server.QueryServer` /
  :class:`~repro.service.client.ServiceClient` — a JSON-lines TCP
  transport reusing ``RunResult.to_dict()`` / ``QueryExplanation.to_dict()``
  (``repro serve`` / ``repro submit`` on the CLI;
  ``Session.serve()`` / ``repro.connect()`` in the API).

See the "Service layer" section of ROADMAP.md for the wire schema, the
cache-key definition and the eviction policy.
"""

from repro.service.cache import (
    ResultCache,
    cache_key,
    config_digest,
    key_digest,
    remap_embeddings,
)
from repro.service.client import (
    ServiceClient,
    ServiceError,
    Subscription,
    connect,
)
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.scheduler import (
    AdmissionError,
    QueryScheduler,
    QueryTicket,
    QuotaExceeded,
    SchedulerClosed,
    ServiceTimeout,
)
from repro.service.server import QueryServer, wait_until_serving
from repro.service.tenancy import TenantLedger, TenantQuota

__all__ = [
    "AdmissionError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryScheduler",
    "QueryServer",
    "QueryTicket",
    "QuotaExceeded",
    "ResultCache",
    "SchedulerClosed",
    "ServiceClient",
    "ServiceError",
    "Subscription",
    "ServiceTimeout",
    "TenantLedger",
    "TenantQuota",
    "cache_key",
    "config_digest",
    "connect",
    "key_digest",
    "remap_embeddings",
    "wait_until_serving",
]
