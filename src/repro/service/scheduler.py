"""Concurrent query scheduler: many submissions over one data graph.

:class:`QueryScheduler` turns the one-shot :class:`repro.api.session.Session`
execution path into an always-on serving loop.  Submissions go into a
priority queue; a fixed pool of worker threads executes them over the
existing engine/:class:`~repro.runtime.executor.Executor` machinery, each
run on a fresh-stats cluster over one shared partition (so results are
bit-identical to a standalone ``Session.run()``).

Serving features, each deterministic and independently testable:

- **Priorities** — higher ``priority`` runs first; ties are FIFO.
- **Admission control** — every request reserves an estimated memory
  footprint (default: the worst case of its simulated cluster,
  ``machines x memory_mb``) against a host budget derived from
  :attr:`RunConfig.memory_mb` (default: one worst-case query per worker
  thread).  The queue head waits until enough reservations are released;
  a request that can *never* fit is rejected at submit time with
  :class:`AdmissionError`.  With ``memory_mb=None`` the budget is
  unlimited.
- **Deduplication** — a submission whose cache key (graph fingerprint,
  ``canonical_key()``, engine, config digest, collect flag) matches an
  in-flight request does not enqueue new work: it attaches to the running
  execution and receives the same result, remapped to its own pattern.
- **Result cache** — finished runs go into a :class:`~repro.service.cache.ResultCache`;
  later submissions of the same key (including isomorphic rewrites) are
  answered immediately, without touching the queue.
- **Timeout / cancellation** — ``timeout=`` bounds *waiting*: a timer
  fails the ticket with :class:`ServiceTimeout` at its deadline, so a
  blocked ``result()`` returns on time no matter how busy the workers
  are.  Expired queued work is skipped entirely; a run already
  executing is not preempted — its result still lands in the cache for
  the next requester.  :meth:`QueryTicket.cancel` works any time
  before delivery.
- **Tenant quotas** — ``submit(tenant=...)`` attributes the request to
  a tenant; ``tenants=`` / ``default_quota=`` attach
  :class:`~repro.service.tenancy.TenantQuota` limits: token-bucket
  submission rates (rejected loudly at submit with
  :class:`~repro.service.tenancy.QuotaExceeded`), per-tenant
  concurrent-memory budgets (an over-budget tenant's work is *deferred*
  at claim time without blocking other tenants — unlike the global
  budget, which is strict), and weighted fair-share claiming among
  equal-priority queued requests (least reserved bytes per unit weight
  runs first, FIFO within a tenant).

Engines are built per worker thread (they keep per-run state), and each
worker owns one executor from :meth:`RunConfig.make_executor` — with
``RunConfig(backend="socket", shards=[...])`` every worker thread holds
its own connections to the shard roster, so a served session fans
concurrent queries out across hosts.  Submitting an engine whose
registry entry has ``distributed=False`` on the socket backend raises
:class:`~repro.api.registry.CapabilityError` at submit time.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import Future
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable

from repro.api.config import MIB, RunConfig, normalize_collect
from repro.api.registry import EngineRegistry, default_registry
from repro.engines.base import RunResult
from repro.enumeration.labeled import LabeledPattern
from repro.obs import events as _events
from repro.obs.hist import Histogram, SlowQueryLog
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer
from repro.query.pattern import Pattern
from repro.service.cache import (
    DEDUP_COUNTER,
    ResultCache,
    cache_key,
    config_digest,
    copy_result,
    remap_embeddings,
)
from repro.service.tenancy import QuotaExceeded, TenantLedger, TenantQuota

#: Mirrors :data:`repro.store.STORE_HIT_COUNTER`.  Spelled out here (and
#: asserted equal in the store module) because importing it would make
#: ``repro.store`` <-> ``repro.service`` circular at import time.
STORE_HIT_COUNTER = "service.store_hit"

if TYPE_CHECKING:  # pragma: no cover - types only
    from typing import Mapping

    from repro.distributed.registry import ShardRegistry
    from repro.graph.graph import Graph
    from repro.store import EmbeddingStore

__all__ = [
    "AdmissionError",
    "QueryScheduler",
    "QueryTicket",
    "QuotaExceeded",
    "SchedulerClosed",
    "ServiceTimeout",
]


class SchedulerClosed(RuntimeError):
    """Submission after :meth:`QueryScheduler.close`."""


class AdmissionError(RuntimeError):
    """A request's memory estimate exceeds the whole admission budget."""


class ServiceTimeout(TimeoutError):
    """A request was not delivered within its ``timeout``."""


class QueryTicket:
    """Handle for one submission: a future plus serving metadata.

    ``cache_hit`` is True when the submission was answered from the
    result cache without queueing; ``deduped`` when it attached to an
    identical in-flight execution.  :meth:`result` blocks (with an
    optional *wait* timeout, independent of the submission's own
    ``timeout``); :meth:`cancel` succeeds any time before delivery.
    """

    def __init__(
        self,
        pattern: Pattern,
        engine: str,
        *,
        priority: int,
        deadline: float | None,
        limit: int | None,
        tenant: "str | None" = None,
        trace: bool = False,
        profile: bool = False,
    ):
        self.pattern = pattern
        self.engine = engine
        self.priority = priority
        self.deadline = deadline
        self.limit = limit
        self.tenant = tenant
        #: The request asked for a span tree (``RunResult.trace``).
        self.trace = trace
        #: The request asked for a resource profile (``RunResult.profile``).
        self.profile = profile
        self.cache_hit = False
        self.deduped = False
        #: Store disposition for ``collect="store"`` submissions:
        #: ``"hit"`` (answered from the persisted set) or ``"stored"``
        #: (enumerated and persisted by this submission); None otherwise.
        self.store: "str | None" = None
        self._future: "Future[RunResult]" = Future()
        self._timer: "threading.Timer | None" = None

    def result(self, timeout: float | None = None) -> RunResult:
        """The run's :class:`RunResult` (raises what the run raised)."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The run's exception, if any (None for a delivered result)."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """True once delivered, failed or cancelled."""
        return self._future.done()

    def cancelled(self) -> bool:
        """True when :meth:`cancel` won."""
        return self._future.cancelled()

    def cancel(self) -> bool:
        """Abandon the request; True unless already delivered."""
        cancelled = self._future.cancel()
        if cancelled:
            self._drop_timer()  # reap the deadline timer right away
        return cancelled

    # -- scheduler side -------------------------------------------------
    def _expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def _claim_resolution(self) -> bool:
        """Atomically win the right to resolve the future (or lose)."""
        if self._future.done():
            # Already resolved — the deadline timer, a canceller or
            # another deliverer got here first.  (Also checked below:
            # done() is only a fast path, the transition is what counts.)
            return False
        try:
            return self._future.set_running_or_notify_cancel()
        except RuntimeError:
            return False

    def _deliver(self, build: Callable[[], RunResult]) -> bool:
        """Resolve the future unless cancellation/timeout already won."""
        if not self._claim_resolution():
            return False
        try:
            self._future.set_result(build())
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiter
            self._future.set_exception(exc)
        self._drop_timer()
        return True

    def _fail(self, exc: BaseException) -> bool:
        if not self._claim_resolution():
            return False
        self._future.set_exception(exc)
        self._drop_timer()
        return True

    def _drop_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


class _Execution:
    """One unit of queue work: a primary request plus dedup followers.

    ``graph``/``partition`` pin the snapshot the execution runs against:
    they are captured at submit time, so a :meth:`QueryScheduler.rebind_graph`
    between submission and execution cannot mix versions — the cache key
    (which leads with the pinned graph's fingerprint) and the data the
    engine reads always describe the same snapshot.  ``job`` carries an
    opaque callable instead of a query (see
    :meth:`QueryScheduler.submit_job`).
    """

    def __init__(
        self,
        key: tuple,
        ticket: QueryTicket,
        cost: int,
        *,
        graph: "Graph | None" = None,
        partition: Any = None,
        job: "Callable[[], Any] | None" = None,
        submitted_at: float = 0.0,
    ):
        self.key = key
        self.engine = ticket.engine
        self.cost = cost
        self.graph = graph
        self.partition = partition
        self.job = job
        #: Scheduler-clock reading at submit; queue-wait is measured
        #: from here to the claim.
        self.submitted_at = submitted_at
        #: The run records a span tree (the primary asked, or a dedup
        #: rider escalated it before a worker claimed the execution).
        self.traced = ticket.trace
        #: The run records a resource profile (same escalation rule).
        self.profiled = ticket.profile
        self.requests: list[QueryTicket] = [ticket]
        #: The pattern actually enumerated (the primary's spelling).
        self.pattern = ticket.pattern
        self.collect = False if job is not None else key[-1]
        #: The tenant whose budget/fair share the execution runs under
        #: (the primary's; dedup riders from other tenants ride free).
        self.tenant = ticket.tenant
        #: Highest priority pushed to the heap so far; a dedup rider with
        #: a higher priority re-pushes the execution (the old heap entry
        #: goes stale and is skipped via ``claimed``/priority mismatch).
        self.heap_priority = ticket.priority
        #: Set once a worker takes (or drops) this execution; stale heap
        #: entries left behind by priority escalation check it.
        self.claimed = False


class QueryScheduler:
    """Thread-pool query service over one data graph.

    Parameters
    ----------
    graph:
        The data graph every query runs against.
    config:
        Cluster/backend configuration (one shared partition is built from
        it up front; every run gets a fresh-stats cluster over it).
    registry:
        Engine registry (default: :func:`repro.api.default_registry`).
    threads:
        Worker threads executing queued queries concurrently.
    cache:
        A :class:`ResultCache`, ``None`` for the default (128 entries, no
        TTL), or ``False`` to disable caching entirely.
    memory_budget_mb:
        Admission budget in MiB.  Default: ``machines * memory_mb *
        threads`` when the config caps memory, else unlimited.
    partition:
        A prebuilt partition of ``graph`` under this config (e.g. a
        Session's cached one), reused instead of partitioning again.
    tenants / default_quota:
        Per-tenant :class:`~repro.service.tenancy.TenantQuota` limits
        (explicit mapping plus a default for unlisted tenants); see the
        module docstring's tenant-quota bullet.
    shard_registry:
        A :class:`~repro.distributed.registry.ShardRegistry` for the
        socket backend: worker-thread executors reconcile their shard
        rosters against it at batch boundaries, so announced workers
        join (and withdrawn ones leave) a running scheduler.  With a
        registry the roster may start empty — the startup probe is
        skipped and submissions fail with ``DistributedError`` until a
        worker announces.
    slow_log:
        Depth of the slow-query ring: the N slowest executions are kept
        (with their trace ids) for the ``metrics`` op.

    Deadlines (``submit(timeout=...)``) are wall-clock
    (:func:`time.monotonic`) throughout — both the queue-side expiry
    checks and the ticket's deadline timer — so the two mechanisms can
    never disagree.
    """

    def __init__(
        self,
        graph: "Graph",
        config: RunConfig | None = None,
        registry: EngineRegistry | None = None,
        *,
        threads: int = 4,
        cache: "ResultCache | None | bool" = None,
        memory_budget_mb: float | None = None,
        partition: Any = None,
        tenants: "Mapping[str, TenantQuota] | None" = None,
        default_quota: "TenantQuota | None" = None,
        shard_registry: "ShardRegistry | None" = None,
        store: "EmbeddingStore | None" = None,
        slow_log: int = 16,
    ):
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.graph = graph
        self.config = config or RunConfig()
        self.registry = registry or default_registry()
        self.shard_registry = shard_registry
        #: Persistent embedding store backing ``collect="store"``
        #: submissions and the page/lookup/aggregate ops (None = the
        #: store tier is off and store-mode submissions are rejected).
        self.store = store
        if cache is False:
            self.cache: ResultCache | None = None
        else:
            self.cache = cache if isinstance(cache, ResultCache) else ResultCache()
        self._clock = time.monotonic
        self._threads = threads
        # The config is immutable, so the digest half of every cache key
        # is computed once here, not per submission.
        self._config_digest = config_digest(self.config)
        # Shared, immutable once built: every run reuses this partition.
        self._partition = (
            partition if partition is not None
            else self.config.make_partition(graph)
        )
        if self.config.backend == "socket" and (
            self.config.shards or shard_registry is None
        ):
            # Fail fast on a dead/misconfigured static shard roster: the
            # per-worker executor fallback below (meant for process-pool
            # start failures, where serial is a silent-but-equivalent
            # degradation) must not quietly turn a distributed server
            # into a local one.  DistributedError propagates to whoever
            # is starting the service.  With a shard registry and no
            # static shards the roster is elastic — it may legitimately
            # be empty until a worker announces — so there is nothing to
            # probe at startup.
            self.config.make_executor(registry=shard_registry).close()
        self._tenants = TenantLedger(
            tenants, default=default_quota, clock=time.monotonic
        )
        # -- admission budget ------------------------------------------
        per_query = self.config.memory_bytes
        self._default_cost = (
            0 if per_query is None else per_query * self.config.machines
        )
        if memory_budget_mb is not None:
            if per_query is None:
                raise ValueError(
                    "memory_budget_mb needs RunConfig.memory_mb to meter "
                    "requests: without it every query costs 0 bytes and "
                    "the budget would silently admit unlimited work"
                )
            self._budget: int | None = int(memory_budget_mb * MIB)
        elif per_query is not None:
            self._budget = self._default_cost * threads
        else:
            self._budget = None
        self._reserved = 0
        # -- queue ------------------------------------------------------
        self._cond = threading.Condition()
        self._heap: list[tuple[int, int, _Execution]] = []
        self._inflight: dict[tuple, _Execution] = {}
        self._seq = itertools.count()
        self._closed = False
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cache_hits": 0,
            "deduped": 0,
            "timeouts": 0,
            "cancelled": 0,
            "rejected": 0,
            "quota_rejected": 0,
            "executor_fallbacks": 0,
            "store_hits": 0,
            "store_stored": 0,
        }
        self._running = 0
        self._max_in_flight = 0
        # -- observability ---------------------------------------------
        # End-to-end submit->deliver latency (fast-path hits included),
        # queue wait (submit->claim, queued executions only) and the
        # slowest executions with their span trees; surfaced through
        # observability() / the server's ``metrics`` op.
        self.latency = Histogram("latency")
        self.queue_wait = Histogram("queue_wait")
        self.slow_queries = SlowQueryLog(slow_log)
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"repro-query-{i}", daemon=True
            )
            for i in range(threads)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query: "str | Pattern",
        engine: str = "RADS",
        *,
        priority: int = 0,
        timeout: float | None = None,
        collect: "bool | str | None" = None,
        limit: int | None = None,
        memory_mb: float | None = None,
        tenant: "str | None" = None,
        trace: bool = False,
        profile: bool = False,
    ) -> QueryTicket:
        """Enqueue one query; returns immediately with a :class:`QueryTicket`.

        ``query`` is anything :func:`repro.api.session.resolve_query`
        accepts except labeled patterns; ``engine`` any registry
        name/alias.  ``collect``/``limit`` default to the scheduler
        config's result mode; ``memory_mb`` overrides the request's
        admission estimate; ``tenant`` attributes it to a tenant's
        quota/fair share.  Per-request overrides are validated with the
        same rules :class:`RunConfig` enforces — a negative
        ``memory_mb`` must not *credit* the admission budget, and a
        negative ``limit`` must not silently serve all-but-the-last
        embeddings — and rejected loudly here, at submit time.

        ``collect="store"`` (needs a configured embedding store)
        persists the enumeration: a submission whose key already names a
        stored set is answered from it without queueing
        (``ticket.store == "hit"``), otherwise the run is enumerated
        with embeddings, written to the store and served count-only
        (``ticket.store == "stored"``); pages come from :meth:`page`.

        ``trace=True`` records a span tree for the execution — the
        ``service.execute`` root, per-round engine spans, executor
        batches and (socket backend) shard-worker leaf spans — attached
        as ``result.trace``.  Counts and stats are bit-identical either
        way; cache/store fast-path answers carry no trace (nothing ran).

        ``profile=True`` records a resource profile for the execution —
        CPU/memory/GC deltas, a flame table over the span tree, and
        (socket backend) per-worker rusage attribution — attached as
        ``result.profile``.  The same bit-identical/fast-path rules as
        tracing apply.
        """
        from repro.api.session import resolve_query

        if memory_mb is not None and not (
            isinstance(memory_mb, (int, float))
            and not isinstance(memory_mb, bool)
            and memory_mb > 0
        ):
            raise ValueError(
                f"memory_mb must be a positive number or None, "
                f"got {memory_mb!r}"
            )
        if limit is not None and (
            not isinstance(limit, int)
            or isinstance(limit, bool)
            or limit < 1
        ):
            raise ValueError(
                f"limit must be a positive integer or None, got {limit!r}"
            )
        if tenant is not None and (
            not isinstance(tenant, str) or not tenant
        ):
            raise ValueError(
                f"tenant must be a non-empty string or None, got {tenant!r}"
            )
        pattern = resolve_query(query)
        if isinstance(pattern, LabeledPattern):
            raise ValueError(
                "the query service serves unlabeled queries; run labeled "
                "queries through Session.run() instead"
            )
        if self.config.backend == "socket":
            # Enforced here, at submission time, so a non-distributed
            # engine is rejected loudly instead of failing inside a
            # worker thread (same rule as Session's, and the request
            # never consumes queue or budget).
            engine_name = self.registry.require(
                engine, distributed=True
            ).name
        else:
            engine_name = self.registry.resolve(engine).name
        collect = (
            self.config.collect
            if collect is None
            else normalize_collect(collect, field="collect")
        )
        if collect == "store" and self.store is None:
            raise ValueError(
                "collect='store' needs an embedding store; serve with "
                "--store-dir (or pass store= to the scheduler)"
            )
        limit = self.config.limit if limit is None else limit
        cost = (
            self._default_cost if memory_mb is None else int(memory_mb * MIB)
        )
        if self._budget is not None and cost > self._budget:
            with self._cond:
                self._stats["rejected"] += 1
            _events.emit(
                "warning",
                "scheduler",
                _events.ADMISSION_REJECTED,
                pattern=pattern.name,
                tenant=tenant,
                cost_bytes=cost,
                budget_bytes=self._budget,
            )
            raise AdmissionError(
                f"query {pattern.name!r} needs {cost} bytes but the "
                f"admission budget is {self._budget} bytes"
            )
        # Tenant gates, both before the cache fast path: the token bucket
        # shapes *request* rate (cache hits and dedup riders are requests
        # too), and a request that can never fit the tenant's own memory
        # budget must fail loudly now, not wait forever at claim time.
        try:
            self._tenants.admit(tenant)
        except QuotaExceeded:
            with self._cond:
                self._stats["quota_rejected"] += 1
            _events.emit(
                "warning",
                "scheduler",
                _events.QUOTA_REJECTED,
                pattern=pattern.name,
                tenant=tenant,
            )
            raise
        tenant_budget = self._tenants.memory_bytes(tenant)
        if tenant_budget is not None and cost > tenant_budget:
            self._tenants.reject_memory(tenant)
            with self._cond:
                self._stats["rejected"] += 1
            _events.emit(
                "warning",
                "scheduler",
                _events.ADMISSION_REJECTED,
                pattern=pattern.name,
                tenant=tenant,
                cost_bytes=cost,
                budget_bytes=tenant_budget,
            )
            raise AdmissionError(
                f"query {pattern.name!r} needs {cost} bytes but tenant "
                f"{tenant!r}'s memory budget is {tenant_budget} bytes"
            )
        submitted = self._clock()
        deadline = None if timeout is None else submitted + timeout
        ticket = QueryTicket(
            pattern,
            engine_name,
            priority=priority,
            deadline=deadline,
            limit=limit,
            tenant=tenant,
            trace=bool(trace),
            profile=bool(profile),
        )
        # Pin the snapshot this submission runs against: the cache key
        # below and the execution's graph/partition must describe the
        # same version even if rebind_graph swaps mid-submit.
        with self._cond:
            graph, partition = self.graph, self._partition
        key = cache_key(
            graph,
            pattern,
            engine_name,
            self.config,
            collect=collect,
            digest=self._config_digest,
        )
        # Fast path: a store-mode submission whose set is already
        # persisted is answered from the store without queueing (the
        # ResultCache is bypassed for store keys — the store *is* their
        # serve tier, and it survives restarts).
        if collect == "store":
            served = self.store.result_for(key, pattern)
            if served is not None:
                ticket.store = "hit"
                with self._cond:
                    if self._closed:
                        raise SchedulerClosed("scheduler is closed")
                    self._stats["submitted"] += 1
                    self._stats["store_hits"] += 1
                    self._tenants.note(tenant, "submitted")
                ticket._deliver(
                    lambda: self._finish_result(served, ticket, hit=False)
                )
                self.latency.observe(self._clock() - submitted)
                return ticket
        # Fast path: answer from the cache without queueing.
        elif self.cache is not None:
            served = self.cache.get(key, pattern)
            if served is not None:
                ticket.cache_hit = True
                with self._cond:
                    if self._closed:
                        raise SchedulerClosed("scheduler is closed")
                    self._stats["submitted"] += 1
                    self._stats["cache_hits"] += 1
                    self._tenants.note(tenant, "submitted")
                    self._tenants.note(tenant, "cache_hits")
                ticket._deliver(
                    lambda: self._finish_result(served, ticket, hit=True)
                )
                self.latency.observe(self._clock() - submitted)
                return ticket
        with self._cond:
            if self._closed:
                raise SchedulerClosed("scheduler is closed")
            self._stats["submitted"] += 1
            self._tenants.note(tenant, "submitted")
            running = self._inflight.get(key)
            if running is not None:
                # Deduplicate: ride the in-flight execution.  A rider
                # with a higher priority escalates the queued execution
                # (re-push; the old heap entry goes stale).
                ticket.deduped = True
                running.requests.append(ticket)
                self._stats["deduped"] += 1
                self._tenants.note(tenant, "deduped")
                if ticket.trace and not running.claimed:
                    # A traced rider upgrades the shared execution; all
                    # followers then share the primary run's span tree.
                    running.traced = True
                if ticket.profile and not running.claimed:
                    # Same escalation for a profiled rider.
                    running.profiled = True
                if not running.claimed and priority > running.heap_priority:
                    running.heap_priority = priority
                    heapq.heappush(
                        self._heap, (-priority, next(self._seq), running)
                    )
                    self._cond.notify()
                self._arm_timer(ticket, timeout)
                return ticket
            execution = _Execution(
                key,
                ticket,
                cost,
                graph=graph,
                partition=partition,
                submitted_at=submitted,
            )
            self._inflight[key] = execution
            heapq.heappush(
                self._heap, (-priority, next(self._seq), execution)
            )
            self._arm_timer(ticket, timeout)
            self._cond.notify()
        return ticket

    def _arm_timer(self, ticket: QueryTicket, timeout: float | None) -> None:
        """Fail the ticket at its deadline even while workers are busy.

        The timer bounds *waiting* precisely — a blocked ``result()``
        returns at the deadline no matter how long the queue is.  The
        execution itself is not preempted; its result is still delivered
        to other requesters and cached.

        Cost: one (daemon) Timer thread per timed request, alive until
        delivery, cancellation or the deadline — a deliberate trade: it
        keeps the deadline authoritative on the ticket itself (observers
        beyond ``result()`` see the failure too) instead of pushing
        deadline math into every waiter.
        """
        if timeout is None:
            return

        def expire() -> None:
            if ticket._fail(ServiceTimeout(
                f"query {ticket.pattern.name!r} was not served within "
                f"{timeout}s"
            )):
                with self._cond:
                    self._stats["timeouts"] += 1
                _events.emit(
                    "warning",
                    "scheduler",
                    _events.ADMISSION_TIMEOUT,
                    pattern=ticket.pattern.name,
                    tenant=ticket.tenant,
                    timeout_seconds=timeout,
                )

        ticket._timer = timer = threading.Timer(timeout, expire)
        timer.daemon = True
        timer.start()

    def run(
        self,
        query: "str | Pattern",
        engine: str = "RADS",
        **submit_kwargs: Any,
    ) -> RunResult:
        """Submit and wait — the blocking convenience spelling."""
        return self.submit(query, engine, **submit_kwargs).result()

    def submit_job(
        self,
        fn: Callable[[], Any],
        *,
        priority: int = 0,
        tenant: "str | None" = None,
        description: str = "job",
    ) -> QueryTicket:
        """Run an opaque callable on the worker pool; returns a ticket.

        The serving features that make sense for non-query work apply:
        tenant token-bucket admission (:class:`QuotaExceeded` at submit),
        priority ordering against queued queries, and the shared stats
        counters.  There is no caching, deduplication or admission cost —
        jobs are assumed light relative to queries (the streaming layer's
        per-batch delta computations ride here).  ``ticket.result()``
        returns whatever ``fn`` returned.
        """
        if not callable(fn):
            raise TypeError(f"fn must be callable, got {fn!r}")
        if tenant is not None and (
            not isinstance(tenant, str) or not tenant
        ):
            raise ValueError(
                f"tenant must be a non-empty string or None, got {tenant!r}"
            )
        try:
            self._tenants.admit(tenant)
        except QuotaExceeded:
            with self._cond:
                self._stats["quota_rejected"] += 1
            _events.emit(
                "warning",
                "scheduler",
                _events.QUOTA_REJECTED,
                job=description,
                tenant=tenant,
            )
            raise
        ticket = QueryTicket(
            Pattern(1, [], name=description),
            "job",
            priority=priority,
            deadline=None,
            limit=None,
            tenant=tenant,
        )
        with self._cond:
            if self._closed:
                raise SchedulerClosed("scheduler is closed")
            self._stats["submitted"] += 1
            self._tenants.note(tenant, "submitted")
            key = ("job", next(self._seq))
            execution = _Execution(
                key, ticket, 0, job=fn, submitted_at=self._clock()
            )
            self._inflight[key] = execution
            heapq.heappush(
                self._heap, (-priority, next(self._seq), execution)
            )
            self._cond.notify()
        return ticket

    def rebind_graph(self, graph: "Graph", *, partition: Any = None) -> None:
        """Serve subsequent submissions against a new graph snapshot.

        The streaming ingest path calls this after every applied batch.
        In-flight and queued executions keep the snapshot they were
        submitted against (each execution pins graph + partition at
        submit time, and its cache key leads with that snapshot's
        fingerprint), so a rebind never mixes versions — entries cached
        under the old fingerprint simply become unreachable rather than
        being flushed (reclaim their memory with
        :meth:`ResultCache.evict_graph` if desired).
        """
        if partition is None:
            partition = self.config.make_partition(graph)
        with self._cond:
            if self._closed:
                raise SchedulerClosed("scheduler is closed")
            self.graph = graph
            self._partition = partition

    # ------------------------------------------------------------------
    # Store serving (index scans; answered inline, never queued)
    # ------------------------------------------------------------------
    def _store_key(
        self, query: "str | Pattern", engine: str
    ) -> "tuple[tuple, Pattern]":
        """Resolve (store key, pattern) for one serve-side request."""
        from repro.api.session import resolve_query

        if self.store is None:
            raise ValueError(
                "no embedding store configured; serve with --store-dir "
                "(or pass store= to the scheduler)"
            )
        pattern = resolve_query(query)
        if isinstance(pattern, LabeledPattern):
            raise ValueError(
                "the embedding store serves unlabeled queries"
            )
        engine_name = self.registry.resolve(engine).name
        with self._cond:
            graph = self.graph
        key = cache_key(
            graph,
            pattern,
            engine_name,
            self.config,
            collect="store",
            digest=self._config_digest,
        )
        return key, pattern

    @staticmethod
    def _no_stored_set(pattern: Pattern) -> LookupError:
        return LookupError(
            f"no stored set for {pattern.name!r} on the current graph; "
            f"submit it with collect='store' first"
        )

    def page(
        self,
        query: "str | Pattern",
        engine: str = "RADS",
        *,
        limit: int,
        offset: int = 0,
    ) -> "dict[str, Any]":
        """One page of a stored set, in its sorted leaf order.

        An index range scan over the persisted columns — only the
        ``limit`` requested embeddings are decompressed.  Raises
        :class:`LookupError` when no set is stored for the key.
        """
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise ValueError(
                f"limit must be a positive integer, got {limit!r}"
            )
        if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
            raise ValueError(
                f"offset must be a non-negative integer, got {offset!r}"
            )
        key, pattern = self._store_key(query, engine)
        result = self.store.page(key, pattern, limit=limit, offset=offset)
        if result is None:
            raise self._no_stored_set(pattern)
        result["store"] = "hit"
        return result

    def lookup(
        self, query: "str | Pattern", engine: str = "RADS", *, vertex: int
    ) -> "dict[str, Any]":
        """Stored embeddings containing data vertex ``vertex``
        (inverted-postings scan)."""
        if not isinstance(vertex, int) or isinstance(vertex, bool) or vertex < 0:
            raise ValueError(
                f"vertex must be a non-negative integer, got {vertex!r}"
            )
        key, pattern = self._store_key(query, engine)
        result = self.store.lookup(key, pattern, vertex)
        if result is None:
            raise self._no_stored_set(pattern)
        result["store"] = "hit"
        return result

    def aggregate(
        self,
        query: "str | Pattern",
        engine: str = "RADS",
        *,
        group_by: str = "root",
    ) -> "dict[str, Any]":
        """Group counts over a stored set (node ranges; no leaf reads).

        ``group_by``: ``"root"``, ``"vertex"`` or ``"orbit"`` — see
        :meth:`repro.store.EmbeddingStore.aggregate`.
        """
        from repro.store.columnar import AGGREGATE_MODES

        if group_by not in AGGREGATE_MODES:
            raise ValueError(
                f"group_by must be one of {', '.join(AGGREGATE_MODES)}, "
                f"got {group_by!r}"
            )
        key, pattern = self._store_key(query, engine)
        result = self.store.aggregate(key, pattern, group_by)
        if result is None:
            raise self._no_stored_set(pattern)
        result["store"] = "hit"
        return result

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        engines: dict[str, Any] = {}
        # The executor rides in a one-slot holder: for the socket
        # backend it is built lazily inside _execute's failure guard, so
        # a shard roster dying after the init-time probe fails the
        # waiting tickets with a visible DistributedError (and is
        # retried on the next claim once the roster heals) instead of
        # silently degrading the "distributed" server to local serial
        # execution.
        holder: list[Any] = [None]
        if self.config.backend != "socket":
            try:
                holder[0] = self.config.make_executor()
            except Exception:
                # A process-pool backend that cannot start (full
                # /dev/shm, no spawn support) must not silently kill the
                # worker and wedge submissions: results are
                # backend-independent, so serial execution is a safe
                # degradation there.
                from repro.runtime.executor import SerialExecutor

                holder[0] = SerialExecutor()
                with self._cond:
                    self._stats["executor_fallbacks"] += 1
        try:
            while True:
                with self._cond:
                    execution = self._claim()
                    while execution is None:
                        if self._closed:
                            return
                        self._cond.wait()
                        execution = self._claim()
                try:
                    self._execute(execution, engines, holder)
                finally:
                    with self._cond:
                        self._reserved -= execution.cost
                        self._tenants.release(
                            execution.tenant, execution.cost
                        )
                        self._running -= 1
                        self._cond.notify_all()
        finally:
            if holder[0] is not None:
                holder[0].close()

    def _prune(self, execution: _Execution, now: float) -> bool:
        """Drop dead tickets from ``execution``; True while any remain.

        Requests that died while queued (timeout / cancel) are counted
        here; an execution left with no live waiters is skippable.
        Caller holds the lock.
        """
        live: list[QueryTicket] = []
        for ticket in execution.requests:
            if ticket.cancelled():
                self._stats["cancelled"] += 1
            elif ticket.done():
                pass  # the deadline timer already failed it
            elif ticket._expired(now) and ticket._fail(
                ServiceTimeout(
                    f"query {ticket.pattern.name!r} timed out after "
                    f"waiting in the service queue"
                )
            ):
                self._stats["timeouts"] += 1
            else:
                live.append(ticket)
        execution.requests = live
        return bool(live)

    def _claim(self) -> _Execution | None:
        """Pick the next runnable execution (holding the lock), or None.

        Strictly priority-ordered against the *global* budget: when the
        chosen execution does not fit the remaining budget the worker
        waits instead of bypassing it, so a large request cannot be
        starved by a stream of small ones (progress is guaranteed
        because no admitted request costs more than the whole budget).
        Within the topmost priority that has any runnable work, tenants
        are weighted fair-shared: the candidate whose tenant holds the
        least reserved bytes per unit weight claims first (FIFO within a
        tenant), and a tenant over its own memory budget is skipped —
        deferred until its running work releases, without blocking other
        tenants (that deferral is the one sanctioned bypass).
        """
        now = self._clock()
        # Reap resolved entries off the head first (claimed executions,
        # pre-escalation duplicates, executions whose waiters all died)
        # so the heap does not accumulate garbage across claims.
        while self._heap:
            neg_priority, _seq, execution = self._heap[0]
            if execution.claimed or -neg_priority != execution.heap_priority:
                heapq.heappop(self._heap)
                continue
            if not self._prune(execution, now):
                heapq.heappop(self._heap)
                execution.claimed = True
                self._inflight.pop(execution.key, None)
                continue
            break
        # Scan in priority order for the fair-share winner of the
        # topmost priority with tenant headroom.  The winner may sit
        # below tenant-blocked entries; it is claimed in place (its heap
        # entry goes stale and is reaped by the loop above later).
        best: "tuple[tuple[float, int], _Execution] | None" = None
        top_priority: int | None = None
        for neg_priority, seq, execution in sorted(self._heap):
            if execution.claimed or -neg_priority != execution.heap_priority:
                continue
            if top_priority is not None and -neg_priority != top_priority:
                break
            if not self._prune(execution, now):
                execution.claimed = True
                self._inflight.pop(execution.key, None)
                continue
            if not self._tenants.has_headroom(
                execution.tenant, execution.cost
            ):
                continue  # deferred: over its own budget, others proceed
            top_priority = -neg_priority
            rank = (self._tenants.fair_key(execution.tenant), seq)
            if best is None or rank < best[0]:
                best = (rank, execution)
        if best is None:
            return None
        execution = best[1]
        if self._budget is not None and (
            self._reserved + execution.cost > self._budget
        ):
            return None
        execution.claimed = True
        self._reserved += execution.cost
        self._tenants.reserve(execution.tenant, execution.cost)
        self._running += 1
        self._max_in_flight = max(self._max_in_flight, self._running)
        self.queue_wait.observe(now - execution.submitted_at)
        return execution

    def _execute(
        self,
        execution: _Execution,
        engines: dict[Any, Any],
        holder: list[Any],
    ) -> None:
        if execution.job is not None:
            self._execute_job(execution)
            return
        stored_mode = False
        # A profiled run always carries a tracer — the flame table is an
        # aggregation of the span tree — but the tree is only *attached*
        # to the result when tracing was actually requested.
        tracer = (
            Tracer() if (execution.traced or execution.profiled) else None
        )
        profiler = Profiler() if execution.profiled else None
        try:
            # Construction is inside the guard too: a failing engine
            # factory, executor (dead shard roster) or partition/cluster
            # problem must fail the waiting tickets, not unwind (and
            # permanently kill) the worker.
            if holder[0] is None:
                holder[0] = self.config.make_executor(
                    registry=self.shard_registry
                )
            executor = holder[0]
            # Engines hold a graph reference, so the per-worker cache is
            # keyed by (engine, snapshot fingerprint) — a rebind must not
            # serve a new version through an engine built over the old
            # one.  key[0] is the pinned snapshot's fingerprint.  Bounded:
            # a long ingest history must not pin every old graph alive.
            engine_key = (execution.engine, execution.key[0])
            engine = engines.get(engine_key)
            if engine is None:
                if len(engines) >= 8:
                    engines.clear()
                engine = self.registry.create(
                    execution.engine, graph=execution.graph
                )
                engines[engine_key] = engine
            cluster = self.config.make_cluster(
                execution.graph, partition=execution.partition
            )
            root = (
                nullcontext()
                if tracer is None
                else tracer.root(
                    "service.execute",
                    pattern=execution.pattern.name,
                    engine=execution.engine,
                )
            )
            prof = nullcontext() if profiler is None else profiler
            with root, prof:
                raw = engine.run(
                    cluster,
                    execution.pattern,
                    collect_embeddings=bool(execution.collect),
                    executor=executor,
                )
            if execution.collect == "store" and not raw.failed:
                # Persist inside the guard: an unwritable store must
                # fail the waiting tickets, not unwind the worker.  The
                # served copies carry counts only — embeddings live in
                # the store and are paged from there.
                self.store.put(execution.key, execution.pattern, raw)
                stored_mode = True
                raw = copy_result(raw)
                raw.embeddings = None
            if execution.traced and tracer is not None:
                # Attached after the store write: persisted sets never
                # carry one request's trace.
                raw.trace = tracer.tree()
            if profiler is not None:
                # Same discipline for the profile (and the flame table
                # folds the span tree whether or not it was attached).
                raw.profile = profiler.result(tree=tracer.tree())
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            from repro.distributed.errors import DistributedError

            if isinstance(exc, DistributedError) and holder[0] is not None:
                # The roster died under this executor: drop it so the
                # next claim reconnects (and heals once workers return).
                try:
                    holder[0].close()
                finally:
                    holder[0] = None
            with self._cond:
                # Seal before failing: later identical submissions must
                # start a fresh execution, not attach to this dead one.
                self._inflight.pop(execution.key, None)
                requests = list(execution.requests)
            # Count only tickets this failure actually resolved — ones
            # already timed out or cancelled are in those counters.
            failed = 0
            for ticket in requests:
                if ticket._fail(exc):
                    failed += 1
                    self._tenants.note(ticket.tenant, "failed")
            with self._cond:
                self._stats["failed"] += failed
            return
        with self._cond:
            # Seal the follower list: a dedup submission can only attach
            # while the key is in ``_inflight``, so popping it here (under
            # the lock) guarantees everyone appended is delivered below.
            self._inflight.pop(execution.key, None)
            requests = list(execution.requests)
        if self.cache is not None and execution.collect != "store":
            # Fault counters (distributed.*) describe how *this*
            # execution was transported, not the result: strip them from
            # the cached copy so later requesters of a healthy roster do
            # not inherit phantom faults.  The current requesters, whose
            # run did experience the fault, still see them (served from
            # ``raw`` below).
            cached = raw
            if any(k.startswith("distributed.") for k in raw.counters):
                cached = copy_result(raw)
                cached.counters = {
                    key: value
                    for key, value in cached.counters.items()
                    if not key.startswith("distributed.")
                }
            self.cache.put(execution.key, execution.pattern, cached)
        now = self._clock()
        delivered = 0
        for ticket in requests:
            if ticket._expired(now):
                if ticket._fail(
                    ServiceTimeout(
                        f"query {ticket.pattern.name!r} finished after "
                        f"its deadline"
                    )
                ):
                    with self._cond:
                        self._stats["timeouts"] += 1
                continue
            if stored_mode:
                ticket.store = "stored"
            if ticket._deliver(
                lambda t=ticket: self._serve_copy(raw, execution.pattern, t)
            ):
                delivered += 1
                self._tenants.note(ticket.tenant, "completed")
        with self._cond:
            self._stats["completed"] += delivered
            if stored_mode:
                self._stats["store_stored"] += 1
        duration = now - execution.submitted_at
        self.latency.observe(duration)
        self.slow_queries.record({
            "pattern": execution.pattern.name,
            "engine": execution.engine,
            "tenant": execution.tenant,
            "duration": duration,
            "trace_id": None if tracer is None else tracer.trace_id,
            "trace": raw.trace,
        })

    def _execute_job(self, execution: _Execution) -> None:
        """Run an opaque job on this worker; deliver its return value."""
        try:
            value = execution.job()
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiter
            with self._cond:
                self._inflight.pop(execution.key, None)
                requests = list(execution.requests)
            failed = 0
            for ticket in requests:
                if ticket._fail(exc):
                    failed += 1
                    self._tenants.note(ticket.tenant, "failed")
            with self._cond:
                self._stats["failed"] += failed
            return
        with self._cond:
            self._inflight.pop(execution.key, None)
            requests = list(execution.requests)
        delivered = 0
        for ticket in requests:
            if ticket._deliver(lambda value=value: value):
                delivered += 1
                self._tenants.note(ticket.tenant, "completed")
        with self._cond:
            self._stats["completed"] += delivered

    # ------------------------------------------------------------------
    # Result shaping
    # ------------------------------------------------------------------
    def _serve_copy(
        self, raw: RunResult, executed: Pattern, ticket: QueryTicket
    ) -> RunResult:
        """An independent RunResult for one requester of an execution."""
        served = copy_result(raw)
        served.pattern_name = ticket.pattern.name
        if served.embeddings is not None:
            served.embeddings = remap_embeddings(
                served.embeddings, executed, ticket.pattern
            )
        return self._finish_result(served, ticket, hit=False)

    def _finish_result(
        self, served: RunResult, ticket: QueryTicket, *, hit: bool
    ) -> RunResult:
        """Apply the request's limit and counter annotations in place."""
        if ticket.limit is not None and served.embeddings is not None:
            served.embeddings = served.embeddings[: ticket.limit]
        if self.cache is not None:
            self.cache.annotate(served, hit=hit)
        served.counters[DEDUP_COUNTER] = 1 if ticket.deduped else 0
        if self.store is not None:
            # Store hits set 1 in result_for; everything else serves 0.
            served.counters.setdefault(STORE_HIT_COUNTER, 0)
        return served

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """JSON-safe snapshot of scheduler (and cache) counters."""
        with self._cond:
            snapshot: dict[str, Any] = dict(self._stats)
            # Count live queued work, not raw heap entries: the heap
            # also holds stale duplicates left by priority escalation,
            # claimed executions awaiting reap, and executions whose
            # waiters all timed out or cancelled.
            queued = {
                id(execution)
                for neg_priority, _seq, execution in self._heap
                if not execution.claimed
                and -neg_priority == execution.heap_priority
                and any(not ticket.done() for ticket in execution.requests)
            }
            snapshot["queued"] = len(queued)
            snapshot["running"] = self._running
            snapshot["max_in_flight"] = self._max_in_flight
            snapshot["threads"] = self._threads
            snapshot["budget_bytes"] = self._budget
            snapshot["reserved_bytes"] = self._reserved
        snapshot["cache"] = None if self.cache is None else self.cache.stats()
        snapshot["store"] = None if self.store is None else self.store.stats()
        snapshot["tenants"] = self._tenants.stats()
        return snapshot

    def observability(self) -> dict[str, Any]:
        """Timing histograms (p50/p95/p99) and the slow-query log.

        JSON-safe; the server merges it into the ``metrics`` op.  The
        ``cache_lookup`` histogram appears only when a cache is
        configured (it lives on the cache, timing every ``get``).
        """
        histograms = {
            "latency": self.latency.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
        }
        if self.cache is not None:
            histograms["cache_lookup"] = self.cache.lookups.snapshot()
        return {
            "histograms": histograms,
            "slow_queries": self.slow_queries.snapshot(),
        }

    def close(self, *, cancel_pending: bool = True) -> None:
        """Stop the workers (idempotent).

        Pending queued requests are cancelled (or, with
        ``cancel_pending=False``, the call blocks until the workers have
        drained the queue before shutting them down).
        """
        with self._cond:
            if self._closed:
                return
            if cancel_pending:
                for _, _, execution in self._heap:
                    if execution.claimed:
                        continue  # running, or a stale duplicate entry
                    execution.claimed = True
                    for ticket in execution.requests:
                        if ticket.cancel():
                            self._stats["cancelled"] += 1
                    self._inflight.pop(execution.key, None)
                self._heap.clear()
            else:
                while self._has_pending_work():
                    self._cond.wait()
            self._closed = True
            self._cond.notify_all()
        for worker in self._workers:
            worker.join()

    def _has_pending_work(self) -> bool:
        """True while real work remains (caller holds the lock).

        Prunes stale heap entries (claimed executions, pre-escalation
        duplicates) on the way: workers popping those do not notify, so
        a drain that merely checked ``self._heap`` could wait forever on
        entries nobody will announce.
        """
        while self._heap:
            neg_priority, _seq, execution = self._heap[0]
            if execution.claimed or -neg_priority != execution.heap_priority:
                heapq.heappop(self._heap)
                continue
            return True
        return self._running > 0

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
