"""JSON-lines wire protocol shared by the query server and client.

One request or response per line, UTF-8 JSON with a trailing ``"\\n"``.
The payload vocabulary reuses the library's existing serializable records
verbatim — :meth:`RunResult.to_dict` and
:meth:`QueryExplanation.to_dict` — so anything that can read the CLI's
``--json`` output can read the service's responses (and the server's
request log replays through :func:`repro.api.results.read_records_jsonl`).

Requests (client -> server)::

    {"op": "submit", "id": 1, "query": "a-b, b-c, c-a", "engine": "rads",
     "priority": 0, "timeout": null, "collect": false, "limit": null}
    {"op": "explain", "id": 2, "query": "q4", "engine": "rads"}
    {"op": "stats",   "id": 3}
    {"op": "ping",    "id": 4}
    {"op": "shutdown","id": 5}
    {"op": "metrics", "id": 6}
    {"op": "announce","id": 7, "address": "127.0.0.1:7471",
     "graphs": ["<fingerprint>"], "workers": 2, "pid": 4242}
    {"op": "announce","id": 8, "address": "127.0.0.1:7471",
     "withdraw": true}
    {"op": "events",  "id": 16, "level": "warning",
     "component": "coordinator", "since": 42, "limit": 100}
    {"op": "health",  "id": 17}

``submit`` also accepts ``"tenant": "team-a"`` to attribute the request
to a tenant quota, ``"collect"`` is tri-state — ``false`` / ``true``
/ ``"store"`` (persist the enumeration to the server's embedding store;
needs ``--store-dir``) — and ``"trace": true`` records the execution's
span tree (:mod:`repro.obs.trace`), returned inside the result record
under ``"trace"`` (absent on untraced submits and fast-path cache/store
hits, so default payloads are byte-identical to earlier protocol
revisions).  ``announce`` registers (or, with ``withdraw``, removes) a
shard worker in the server's elastic roster; ``metrics`` returns
structured service counters (queue depth, per-tenant usage, cache
tiers, embedding-store counters, shard roster health, timing-histogram
snapshots with p50/p95/p99 and the slow-query log) — or, with
``"format": "text"``, the same snapshot rendered as Prometheus-style
exposition text (the result is then a string, one ``repro_*`` sample
per line).

``submit`` further accepts ``"profile": true`` to measure the request's
resource profile (:mod:`repro.obs.profile`): CPU time, peak memory,
GC/allocation deltas, a flame table over the span tree and — on the
socket backend — per-worker ``getrusage`` attribution, returned inside
the result record under ``"profile"`` (absent on unprofiled submits, so
default payloads are unchanged; profiled counts and stats stay
bit-identical to unprofiled runs).  ``events`` returns a filtered slice
of the server's bounded event journal (:mod:`repro.obs.events`) — every
filter optional: ``level`` is a minimum severity, ``component`` matches
exactly, ``since`` is a strictly-greater ``seq`` cursor for incremental
polling, ``limit`` keeps the newest N.  ``health`` evaluates the
declarative SLO rule set (:mod:`repro.obs.health`) over the live
metrics snapshot and returns ``{"status": "ok"|"degraded"|"critical",
"rules": [...], "firing": [...]}`` with the evidence each firing rule
fired on.

Embedding-store requests (served from the persisted, trie-compressed
sets written by ``collect="store"`` submissions; index range scans, no
full decompression)::

    {"op": "page",      "id": 13, "query": "a-b, b-c, c-a",
     "engine": "rads", "limit": 100, "offset": 0}
    {"op": "lookup",    "id": 14, "query": "a-b, b-c, c-a",
     "engine": "rads", "vertex": 7}
    {"op": "aggregate", "id": 15, "query": "a-b, b-c, c-a",
     "engine": "rads", "group_by": "root"|"vertex"|"orbit"}

``page`` returns one contiguous slice of the stored set's sorted leaf
order; ``lookup`` every stored embedding containing the data vertex;
``aggregate`` group counts (per first-query-vertex match, per contained
data vertex, or per automorphism orbit of query-vertex positions).  All
three answer for isomorphic rewrites of the stored query (embeddings
and positions are remapped through an explicit isomorphism) and fail
with ``ok: false`` when no set is stored for the key.

Streaming / continuous-query requests::

    {"op": "register",  "id": 9, "query": "a-b, b-c, c-a",
     "tenant": null, "collect": true, "push": false}
    {"op": "unregister","id": 10, "watch": "w1"}
    {"op": "ingest",    "id": 11, "additions": [[0, 5], [2, 7]],
     "deletions": [[1, 3]]}
    {"op": "poll",      "id": 12, "watch": "w1", "wait": 5.0}

``register`` installs a continuous query and returns its watch id;
``ingest`` applies one edge batch (additions and deletions, validated
strictly — no duplicates, no overlap) producing a new graph version, and
every watch's delta embeddings for the batch; ``poll`` drains a watch's
pending :class:`~repro.streaming.records.DeltaRecord` payloads.  With
``"push": true`` at register time the server *pushes* each delta down
this connection as an unsolicited line (no ``id``)::

    {"kind": "delta", "ok": true, "watch": "w1",
     "result": {... DeltaRecord.to_dict() ...}}

Responses (server -> client) echo ``id`` and carry ``ok``::

    {"id": 1, "ok": true, "kind": "result", "cache": "hit"|"miss"|"dedup",
     "store": null|"hit"|"stored", "result": {... RunResult.to_dict() ...}}
    {"id": 2, "ok": true, "kind": "explanation", "result": {...}}
    {"id": 3, "ok": true, "kind": "stats", "result": {...}}
    {"id": 4, "ok": true, "kind": "pong", "result": {"version": 1}}
    {"id": 5, "ok": true, "kind": "bye", "result": null}
    {"id": 16, "ok": true, "kind": "events",
     "result": {"events": [{"seq": 43, "ts": ..., "level": "error",
                            "component": "coordinator",
                            "kind": "worker.lost", ...}, ...],
                "last_seq": 57, "capacity": 512}}
    {"id": 17, "ok": true, "kind": "health",
     "result": {"status": "degraded", "firing": ["worker_loss"],
                "rules": [{"name": ..., "severity": ..., "firing": ...,
                           "evidence": {...}}, ...]}}
    {"id": 9, "ok": true, "kind": "registered", "result": {"watch": "w1", ...}}
    {"id": 11, "ok": true, "kind": "ingested", "result": {"version": 2, ...}}
    {"id": 12, "ok": true, "kind": "deltas", "result": {"deltas": [...], ...}}
    {"id": 13, "ok": true, "kind": "page",
     "result": {"embeddings": [[...], ...], "total": N,
                "offset": 0, "limit": 100, "store": "hit"}}
    {"id": 14, "ok": true, "kind": "lookup",
     "result": {"embeddings": [[...], ...], "count": M, "total": N,
                "vertex": 7, "store": "hit"}}
    {"id": 15, "ok": true, "kind": "aggregate",
     "result": {"group_by": "root", "total": N,
                "groups": {"<vertex>": count, ...}, "store": "hit"}}
    {"id": n, "ok": false, "error": "human-readable message"}

The ``submit`` response's ``cache`` field is the result-cache
disposition; ``store`` is the embedding-store disposition of a
``collect="store"`` submission (``"hit"`` = answered from the persisted
set, ``"stored"`` = enumerated and persisted by this request) and
``null`` otherwise.  Both surface verbatim in ``repro submit --json``
payloads.

On connect the server sends one unsolicited hello line
(``{"kind": "hello", "version": 1, "graph": <fingerprint>, ...}``) so
clients can fail fast on protocol or graph mismatches; the hello also
carries ``graph_version``, which advances as batches are ingested.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

#: Bumped on incompatible wire changes; checked in the client hello.
PROTOCOL_VERSION = 1

#: Operations the server dispatches on.
OPS = (
    "submit",
    "explain",
    "stats",
    "ping",
    "shutdown",
    "announce",
    "metrics",
    "events",
    "health",
    "register",
    "unregister",
    "ingest",
    "poll",
    "page",
    "lookup",
    "aggregate",
)


class ProtocolError(RuntimeError):
    """A malformed line, unknown op, or version mismatch."""


def encode(message: dict[str, Any]) -> bytes:
    """One protocol message as a JSON line (UTF-8, trailing newline)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: "bytes | str") -> dict[str, Any]:
    """Parse one line into a message dict (raises ProtocolError)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return message


def read_message(stream: BinaryIO) -> dict[str, Any] | None:
    """The next message from a socket file, or None at EOF."""
    line = stream.readline()
    if not line:
        return None
    if not line.strip():
        return {}
    return decode(line)


def write_message(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Send one message and flush (JSON-lines framing)."""
    stream.write(encode(message))
    stream.flush()


def parse_address(address: "tuple[str, int] | str | int") -> tuple[str, int]:
    """Accept ``(host, port)``, ``"host:port"`` or a bare port number.

    The shared address vocabulary for every socket endpoint — service
    clients, shard rosters, ``RunConfig.shards`` — lives here with the
    rest of the wire-level helpers.
    """
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    if isinstance(address, int):
        return "127.0.0.1", address
    text = str(address)
    host, _, port = text.rpartition(":")
    if not port.isdigit():
        raise ValueError(
            f"service address {address!r} is not (host, port), "
            f"'host:port' or a port number"
        )
    return host or "127.0.0.1", int(port)


def error_response(request_id: Any, message: str) -> dict[str, Any]:
    """A failure response echoing the request id."""
    return {"id": request_id, "ok": False, "error": str(message)}


def ok_response(
    request_id: Any, kind: str, result: Any, **extra: Any
) -> dict[str, Any]:
    """A success response echoing the request id."""
    response = {"id": request_id, "ok": True, "kind": kind, "result": result}
    response.update(extra)
    return response
