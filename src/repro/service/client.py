"""Thin client for the query service: a socket, JSON lines, typed results.

:func:`connect` (also exported as ``repro.connect``) opens a TCP
connection and returns a :class:`ServiceClient` whose methods mirror the
session API — ``submit`` returns a real
:class:`~repro.engines.base.RunResult` (rebuilt via ``from_dict``),
``explain`` a :class:`~repro.query.explain.QueryExplanation` — so code
written against a local :class:`~repro.api.session.Session` ports to the
service by swapping the object::

    with repro.connect(("127.0.0.1", 7463)) as client:
        result = client.submit("a-b, b-c, c-a", engine="rads")
        print(result.summary(), client.last_cache)  # "hit" on repeats

One client drives one connection and is not itself thread-safe; open one
client per thread (the server multiplexes all of them onto one scheduler,
which is where cross-client caching and dedup happen).
"""

from __future__ import annotations

import socket
from typing import Any

from repro.engines.base import RunResult
from repro.query.explain import QueryExplanation
from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError", "Subscription", "connect"]


class ServiceError(RuntimeError):
    """The server answered ``ok: false`` (the message is its ``error``)."""


# Compatibility alias; the shared helper lives with the wire protocol.
_parse_address = protocol.parse_address


def connect(
    address: "tuple[str, int] | str | int", *, timeout: float | None = None
) -> "ServiceClient":
    """Open a :class:`ServiceClient` to a running query server.

    ``timeout`` bounds the TCP connect and every subsequent response
    read (``None`` = wait forever; long enumerations need that or a
    generous value).
    """
    return ServiceClient(_parse_address(address), timeout=timeout)


class ServiceClient:
    """One JSON-lines connection to a :class:`~repro.service.server.QueryServer`."""

    def __init__(
        self, address: tuple[str, int], *, timeout: float | None = None
    ):
        self.address = address
        self._sock = socket.create_connection(address, timeout=timeout)
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_id = 1
        #: Cache disposition of the most recent submit: hit/miss/dedup.
        self.last_cache: str | None = None
        #: Store disposition of the most recent submit: ``"hit"`` /
        #: ``"stored"`` for ``collect="store"``, else None.
        self.last_store: str | None = None
        #: Pushed delta lines that arrived while waiting for a response
        #: (push-mode watches share the connection); drained by
        #: :class:`Subscription`.
        self._pushed: list[dict[str, Any]] = []
        try:
            self.hello = protocol.read_message(self._rfile)
            if self.hello is None or self.hello.get("kind") != "hello":
                raise ServiceError(
                    f"no protocol hello from {address}; is that a repro "
                    f"query server?"
                )
            if self.hello.get("version") != protocol.PROTOCOL_VERSION:
                raise ServiceError(
                    f"protocol version mismatch: server speaks "
                    f"{self.hello.get('version')}, client "
                    f"{protocol.PROTOCOL_VERSION}"
                )
        except BaseException:
            # Don't leak the connected socket/fds behind the exception.
            self.close()
            raise

    # ------------------------------------------------------------------
    def _call(self, op: str, **fields: Any) -> dict[str, Any]:
        request_id = self._next_id
        self._next_id += 1
        message = {"op": op, "id": request_id}
        message.update(
            {key: value for key, value in fields.items() if value is not None}
        )
        protocol.write_message(self._wfile, message)
        while True:
            response = protocol.read_message(self._rfile)
            if response is None:
                raise ServiceError(
                    f"server at {self.address} closed the connection"
                )
            if "id" not in response and response.get("kind") == "delta":
                # An unsolicited push-mode delta interleaved with this
                # request's response: buffer it for the subscription.
                self._pushed.append(response)
                continue
            break
        if "id" in response and response["id"] != request_id:
            # A stale response (e.g. from an earlier read that timed
            # out): the stream is desynchronized, so the connection is
            # unusable — close rather than hand back wrong answers.
            self.close()
            raise ServiceError(
                f"out-of-sync response from {self.address}: expected "
                f"id {request_id}, got {response['id']}; connection closed"
            )
        if not response.get("ok"):
            raise ServiceError(response.get("error") or "unknown error")
        return response

    # ------------------------------------------------------------------
    def submit(
        self,
        query: str,
        engine: str = "RADS",
        *,
        priority: int = 0,
        timeout: float | None = None,
        collect: "bool | str | None" = None,
        limit: int | None = None,
        memory_mb: float | None = None,
        tenant: "str | None" = None,
        trace: bool = False,
        profile: bool = False,
    ) -> RunResult:
        """Run one query on the server; blocks until the result arrives.

        Mirrors :meth:`QueryScheduler.submit` (``tenant`` attributes the
        request to a server-side quota); the cache disposition of the
        answer lands in :attr:`last_cache` (``"hit"``, ``"miss"`` or
        ``"dedup"``).  ``collect="store"`` persists the enumeration in
        the server's embedding store (needs ``--store-dir``); the store
        disposition lands in :attr:`last_store` (``"hit"`` or
        ``"stored"``) and pages come from :meth:`page`.

        ``trace=True`` asks the server to record the execution's span
        tree; it comes back on ``result.trace`` (``None`` for fast-path
        cache/store hits, where nothing ran).  ``profile=True`` asks for
        the execution's resource profile — CPU, peak memory, GC deltas,
        flame table, per-worker attribution — on ``result.profile``
        (same fast-path caveat; counts and stats are unaffected).
        """
        response = self._call(
            "submit",
            query=str(query),
            engine=engine,
            priority=priority or None,
            timeout=timeout,
            collect=collect,
            limit=limit,
            memory_mb=memory_mb,
            tenant=tenant,
            trace=trace or None,
            profile=profile or None,
        )
        self.last_cache = response.get("cache")
        self.last_store = response.get("store")
        return RunResult.from_dict(response["result"])

    # -- embedding store ------------------------------------------------
    @staticmethod
    def _tupled(result: "dict[str, Any]") -> "dict[str, Any]":
        """JSON embedding rows back to tuples (the RunResult spelling)."""
        if result.get("embeddings") is not None:
            result["embeddings"] = [
                tuple(row) for row in result["embeddings"]
            ]
        return result

    def page(
        self,
        query: str,
        engine: str = "RADS",
        *,
        limit: int,
        offset: int = 0,
    ) -> dict[str, Any]:
        """One page of a stored set (``collect="store"`` submissions),
        in its sorted leaf order: ``{"embeddings", "total", "offset",
        "limit", "store"}``."""
        response = self._call(
            "page",
            query=str(query),
            engine=engine,
            limit=limit,
            offset=offset,
        )
        return self._tupled(response["result"])

    def lookup(
        self, query: str, engine: str = "RADS", *, vertex: int
    ) -> dict[str, Any]:
        """Stored embeddings containing data vertex ``vertex``:
        ``{"embeddings", "count", "total", "vertex", "store"}``."""
        response = self._call(
            "lookup", query=str(query), engine=engine, vertex=vertex
        )
        return self._tupled(response["result"])

    def aggregate(
        self, query: str, engine: str = "RADS", *, group_by: str = "root"
    ) -> dict[str, Any]:
        """Group counts over a stored set (no decompression):
        ``{"group_by", "total", "groups", "store"}``."""
        response = self._call(
            "aggregate", query=str(query), engine=engine, group_by=group_by
        )
        return response["result"]

    def explain(
        self, query: str, engine: str = "RADS", *, estimates: bool = True
    ) -> QueryExplanation:
        """The engine's :class:`QueryExplanation` for ``query``."""
        response = self._call(
            "explain",
            query=str(query),
            engine=engine,
            estimates=estimates,
        )
        return QueryExplanation.from_dict(response["result"])

    def stats(self) -> dict[str, Any]:
        """Scheduler + cache counter snapshot (see ``QueryScheduler.stats``)."""
        return self._call("stats")["result"]

    def metrics(self, *, format: "str | None" = None) -> "dict[str, Any] | str":
        """Structured service metrics: uptime, scheduler/cache counters,
        timing histograms (p50/p95/p99), the slow-query log, per-tenant
        usage and the shard-roster health snapshot.  With
        ``format="text"`` the server renders the same snapshot as
        Prometheus-style exposition text and a ``str`` is returned."""
        return self._call("metrics", format=format)["result"]

    def events(
        self,
        *,
        level: "str | None" = None,
        component: "str | None" = None,
        since: "int | None" = None,
        limit: "int | None" = None,
    ) -> dict[str, Any]:
        """A filtered slice of the server's event journal.

        Returns ``{"events": [...], "last_seq": N, "capacity": C}``;
        ``level`` is a minimum severity (``debug`` .. ``error``),
        ``component`` matches exactly, ``since`` keeps events with
        ``seq`` strictly greater (poll incrementally by passing the last
        ``last_seq`` you saw), ``limit`` keeps the newest N.
        """
        return self._call(
            "events",
            level=level,
            component=component,
            since=since,
            limit=limit,
        )["result"]

    def health(self) -> dict[str, Any]:
        """The server's SLO verdict over its live metrics snapshot:
        ``{"status": "ok"|"degraded"|"critical", "rules": [...],
        "firing": [...]}`` (see :mod:`repro.obs.health`)."""
        return self._call("health")["result"]

    def ping(self) -> bool:
        """Round-trip health check."""
        return self._call("ping")["kind"] == "pong"

    def shutdown(self) -> None:
        """Ask the server to stop serving (it finishes in the background)."""
        self._call("shutdown")

    # -- streaming / continuous queries --------------------------------
    def register(
        self,
        query: str,
        *,
        tenant: "str | None" = None,
        collect: bool | None = None,
        push: bool = False,
    ) -> dict[str, Any]:
        """Register a continuous query; returns the watch info dict.

        The ``"watch"`` key carries the id for :meth:`poll` /
        :meth:`unregister`.  With ``push=True`` the server additionally
        pushes every delta down *this* connection as it fires (see
        :meth:`subscribe` for the iterator spelling).
        """
        response = self._call(
            "register",
            query=str(query),
            tenant=tenant,
            collect=collect,
            push=push or None,
        )
        return response["result"]

    def unregister(self, watch: str) -> bool:
        """Remove a watch; False when the server no longer knows the id."""
        return bool(
            self._call("unregister", watch=str(watch))["result"]["known"]
        )

    def ingest(
        self,
        additions: "list[tuple[int, int]] | None" = None,
        deletions: "list[tuple[int, int]] | None" = None,
    ) -> dict[str, Any]:
        """Apply one edge batch on the server; returns the ingest report.

        The report carries the new ``version``/``fingerprint`` and a
        per-watch outcome map.  Invalid batches (edge already present,
        edge missing, overlap, endpoint out of range) raise
        :class:`ServiceError` naming the offending edge.
        """
        response = self._call(
            "ingest",
            additions=(
                None if additions is None
                else [[int(u), int(v)] for u, v in additions]
            ),
            deletions=(
                None if deletions is None
                else [[int(u), int(v)] for u, v in deletions]
            ),
        )
        return response["result"]

    def poll(self, watch: str, *, wait: float | None = None):
        """Drain a watch's pending deltas as :class:`DeltaRecord` objects.

        ``wait`` blocks up to that many seconds for the first record
        (bound it below the client's socket timeout).
        """
        from repro.streaming.records import DeltaRecord

        result = self._call("poll", watch=str(watch), wait=wait)["result"]
        return [DeltaRecord.from_dict(data) for data in result["deltas"]]

    def subscribe(
        self,
        query: str,
        *,
        tenant: "str | None" = None,
        collect: bool | None = None,
    ) -> "Subscription":
        """Register with push mode and iterate deltas as they fire::

            with connect(addr) as client:
                for record in client.subscribe("a-b, b-c, c-a"):
                    alert(record.added_count)

        The iterator blocks on the connection (bounded by the client's
        socket timeout); ``Subscription.close()`` unregisters the watch.
        """
        info = self.register(
            query, tenant=tenant, collect=collect, push=True
        )
        return Subscription(self, info)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        host, port = self.address
        return f"ServiceClient({host}:{port})"


class Subscription:
    """Iterator over one push-mode watch's delta stream.

    Yields :class:`~repro.streaming.records.DeltaRecord` objects in
    ingest order.  Deltas buffered while other calls were in flight are
    drained first; then the iterator blocks reading the connection.  The
    stream ends (``StopIteration``) when the server closes the
    connection; a socket timeout propagates as-is so callers can poll.
    """

    def __init__(self, client: ServiceClient, info: dict[str, Any]):
        self.client = client
        self.info = info
        self.watch = info["watch"]
        self._closed = False

    def __iter__(self) -> "Subscription":
        return self

    def __next__(self):
        from repro.streaming.records import DeltaRecord

        if self._closed:
            raise StopIteration
        while True:
            for i, message in enumerate(self.client._pushed):
                if message.get("watch") == self.watch:
                    del self.client._pushed[i]
                    return DeltaRecord.from_dict(message["result"])
            message = protocol.read_message(self.client._rfile)
            if message is None:
                raise StopIteration
            if "id" not in message and message.get("kind") == "delta":
                self.client._pushed.append(message)
                continue
            # A response line with an id here means someone interleaved
            # a request on this connection while iterating — the client
            # is documented single-threaded, treat it as desync.
            self.client.close()
            raise ServiceError(
                "unexpected response while subscribed; one client drives "
                "one connection — use a separate client for requests"
            )

    def close(self) -> None:
        """Unregister the watch (idempotent; the connection stays open)."""
        if not self._closed:
            self._closed = True
            try:
                self.client.unregister(self.watch)
            except (ServiceError, OSError):
                # OSError covers a timed-out or torn-down socket: the
                # server reaps the watch's push sink when the connection
                # drops, so a failed goodbye is not a leak.
                pass

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
