"""Canonical-pattern result cache: share work across isomorphic queries.

The RADS paper motivates sharing enumeration work across queries; this
module implements the serving-side half of that idea.  Results are keyed
by the *isomorphism class* of the query pattern — via
:meth:`repro.query.pattern.Pattern.canonical_key` — together with the data
graph's content fingerprint, the engine name and a digest of the
stats-affecting :class:`~repro.api.config.RunConfig` fields.  A cache hit
for ``"a-b, b-c, c-a"`` therefore serves ``"x-y, y-z, z-x"`` too: the
stored embeddings are remapped through an explicit isomorphism so every
served tuple is a genuine embedding of the *requested* pattern.

Eviction is LRU with an optional TTL; ``hits`` / ``misses`` / ``evictions``
counters are kept per cache and surfaced on every served
:class:`~repro.engines.base.RunResult` under ``counters["service.*"]``.
TTL-expired entries are swept out *before* any live entry is evicted
for capacity, and they count as ``expirations``, not ``evictions``.

With ``disk_dir`` the memory LRU gains a persistent second tier: every
stored result is also spilled to one JSON file (written atomically)
whose name is the SHA-256 of the canonical cache key and whose body
repeats the full key for verification.  A memory miss falls through to
disk; a verified, unexpired file is promoted back into memory and
served — and because the spill format is exactly the
``RunResult.to_dict()`` round-trip every served copy already uses, a
disk-served result is byte-identical to a memory-served one.  The tier
survives server restarts: a fresh cache pointed at the same directory
reloads entries lazily, re-verifying the stored key (graph fingerprint,
canonical pattern, engine, config digest, collect flag) before serving.
Disk TTLs use wall-clock time (``time.time``), since monotonic clocks
do not survive restarts.

What is deliberately **not** in the key:

- ``workers`` — results are backend-independent (asserted by the runtime
  test suite), so a serial run can serve a ``--workers 8`` client.
- ``limit`` — collected embeddings are truncated at serve time, exactly
  like :meth:`repro.api.session.Session.run` does after an uncached run.

Failed (simulated-OOM) runs are never cached: they are cheap to reproduce
and a capacity change should take effect immediately.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.engines.base import RunResult
from repro.obs import events as _events
from repro.obs.hist import Histogram
from repro.query.isomorphism import find_isomorphism
from repro.query.pattern import Pattern

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.api.config import RunConfig
    from repro.graph.graph import Graph

#: Counter names merged into served ``RunResult.counters``.
HIT_COUNTER = "service.cache_hit"
DEDUP_COUNTER = "service.dedup"


def config_digest(config: "RunConfig") -> str:
    """Digest of the RunConfig fields that can change run *statistics*.

    Machines, memory cap, partitioner, cost model, stragglers and seed all
    change the simulated timings/communication (and the OOM outcome), so
    they key the cache.  ``workers``, ``backend`` and ``shards`` are
    excluded — results are backend-independent, so a socket-backed server
    serves cache hits for results computed serially and vice versa — as
    are the result-mode fields (``collect`` keys separately per request;
    ``limit`` is applied at serve time).

    Partitioner/cost-model *instances* are reduced to their type names
    (mirroring ``RunConfig.to_dict``): two differently-parameterised
    instances of one class should be given distinct classes — or distinct
    caches — to be distinguished.
    """
    record = config.to_dict()
    record.pop("workers", None)
    record.pop("backend", None)
    record.pop("shards", None)
    record.pop("collect", None)
    record.pop("limit", None)
    if record.get("stragglers") is not None:
        record["stragglers"] = {
            str(machine): float(factor)
            for machine, factor in sorted(record["stragglers"].items())
        }
    payload = json.dumps(record, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def cache_key(
    graph: "Graph",
    pattern: Pattern,
    engine: str,
    config: "RunConfig",
    *,
    collect: "bool | str",
    digest: str | None = None,
) -> tuple:
    """The full, hashable cache key for one (graph, query, engine, config).

    ``(graph fingerprint, pattern.canonical_key(), engine, config digest,
    collect)`` — equal for isomorphic patterns, different for anything
    that could change the served bytes.  ``collect`` is the tri-state
    result mode (``False``/``True``/``"store"``); store-mode keys also
    name the persistent :class:`~repro.store.EmbeddingStore` sets.  Pass
    a precomputed ``digest`` (from :func:`config_digest` of the same
    config) to skip rehashing an immutable config on a hot path.
    """
    from repro.api.config import normalize_collect

    return (
        graph.fingerprint(),
        pattern.canonical_key(),
        str(engine),
        config_digest(config) if digest is None else digest,
        normalize_collect(collect),
    )


#: Version tag written into every spill file; bumped on layout changes
#: (a mismatching file is treated as a miss, never misread).
DISK_FORMAT = 1


def _key_record(key: tuple) -> list:
    """The cache key as JSON-safe nested lists (tuples recursed)."""
    return [
        _key_record(part) if isinstance(part, tuple) else part
        for part in key
    ]


def key_digest(key: tuple) -> str:
    """Stable filename digest of a cache key (SHA-256 of its JSON form)."""
    payload = json.dumps(_key_record(key), sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def remap_embeddings(
    embeddings: list[tuple[int, ...]],
    stored_pattern: Pattern,
    requested_pattern: Pattern,
) -> list[tuple[int, ...]]:
    """Re-index embeddings of ``stored_pattern`` for ``requested_pattern``.

    An embedding is a tuple indexed by pattern vertex; serving a cached
    result for an isomorphic rewrite must permute each tuple through an
    isomorphism ``requested -> stored`` so that position ``u`` holds the
    data vertex matched to *requested* vertex ``u``.  Structurally equal
    patterns use the identity (so exact repeats are byte-identical even
    when the pattern has non-trivial automorphisms).
    """
    if stored_pattern == requested_pattern:
        return list(embeddings)
    mapping = find_isomorphism(requested_pattern, stored_pattern)
    if mapping is None:
        raise ValueError(
            f"cannot remap embeddings: {requested_pattern.name!r} is not "
            f"isomorphic to cached {stored_pattern.name!r}"
        )
    order = [mapping[u] for u in range(requested_pattern.num_vertices)]
    return [tuple(emb[v] for v in order) for emb in embeddings]


def copy_result(result: RunResult) -> RunResult:
    """A deep, independent copy (via the serialization round-trip).

    The one copy idiom shared by the cache and the scheduler: every
    served result is detached from the stored/raw one, so callers can
    mutate counters or embeddings freely.
    """
    return RunResult.from_dict(result.to_dict())


@dataclass
class _Entry:
    """One cached run: the executed pattern plus its result and deadline."""

    pattern: Pattern
    result: RunResult
    expires_at: float | None


class ResultCache:
    """Thread-safe LRU + TTL cache of :class:`RunResult` records.

    ``capacity`` bounds the number of memory entries
    (least-recently-*used* is evicted first, after TTL-expired entries
    are swept); ``ttl`` (seconds, ``None`` = forever) expires entries
    lazily at lookup and insertion time.  ``clock`` is injectable for
    deterministic tests and defaults to :func:`time.monotonic`.

    ``disk_dir`` enables the persistent second tier (see the module
    docstring): every stored result is spilled to a key-digest-named
    JSON file there, memory misses fall through to disk, and a fresh
    cache over the same directory serves earlier runs after a restart.
    ``disk_capacity`` bounds the file count (oldest spilled evicted
    first); ``wall_clock`` feeds disk TTLs and is injectable too.
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        disk_dir: "str | Path | None" = None,
        disk_capacity: int | None = None,
        wall_clock: Callable[[], float] = time.time,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        if disk_capacity is not None and disk_capacity < 1:
            raise ValueError(
                f"disk_capacity must be >= 1 or None, got {disk_capacity}"
            )
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._wall = wall_clock
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        #: Wall time of every :meth:`get` (hit or miss, disk included);
        #: surfaced as the ``cache_lookup`` histogram in the metrics op.
        self.lookups = Histogram("cache_lookup")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        # -- disk tier --------------------------------------------------
        self.disk_dir = None if disk_dir is None else Path(disk_dir)
        self.disk_capacity = disk_capacity
        self.disk_hits = 0
        self.disk_writes = 0
        self.disk_evictions = 0
        self.disk_expirations = 0
        self.disk_errors = 0
        #: digest -> spill order proxy (mtime at scan, then insertion
        #: order); bounds the tier without re-listing the directory.
        self._disk_index: "OrderedDict[str, float]" = OrderedDict()
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            self._scan_disk()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: tuple, pattern: Pattern) -> RunResult | None:
        """The cached result for ``key``, served *for* ``pattern``.

        Returns an independent :class:`RunResult` copy whose
        ``pattern_name`` and (when collected) ``embeddings`` are remapped
        to the requested pattern, or ``None`` on a miss.  Counts, timings
        and communication stats are the stored run's, bit-identical to
        re-running the query.
        """
        started = time.perf_counter()
        try:
            return self._get(key, pattern)
        finally:
            self.lookups.observe(time.perf_counter() - started)

    def _get(self, key: tuple, pattern: Pattern) -> RunResult | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                entry = None
            if entry is None and self.disk_dir is not None:
                entry = self._load_from_disk(key)
                if entry is not None:
                    # Promote: the disk hit becomes the freshest memory
                    # entry (expired peers swept first, then LRU).
                    self._insert(key, entry)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            stored_pattern, stored = entry.pattern, entry.result
        served = copy_result(stored)
        served.pattern_name = pattern.name
        if served.embeddings is not None:
            served.embeddings = remap_embeddings(
                served.embeddings, stored_pattern, pattern
            )
        return served

    def put(self, key: tuple, pattern: Pattern, result: RunResult) -> bool:
        """Store a finished run; returns False when it is not cacheable."""
        if result.failed:
            return False
        entry = _Entry(
            pattern=pattern,
            result=copy_result(result),
            expires_at=(
                None if self.ttl is None else self._clock() + self.ttl
            ),
        )
        # Per-request diagnostics never enter the shared tier: a later
        # requester gets the stored run's counts and stats, not this
        # request's span tree or resource profile (and spill files stay
        # byte-stable).
        entry.result.trace = None
        entry.result.profile = None
        with self._lock:
            self._insert(key, entry)
            if self.disk_dir is not None:
                self._spill(key, entry)
        return True

    def clear(self) -> None:
        """Drop every memory entry (counters and spilled files are kept)."""
        with self._lock:
            self._entries.clear()

    def evict_graph(self, fingerprint: str) -> int:
        """Drop memory *and* disk entries keyed to one graph fingerprint.

        Version-targeted invalidation for the streaming ingest path:
        cache keys lead with the graph fingerprint, so entries for a
        superseded snapshot can never be served again — reclaim their
        memory without flushing results for other graphs.  Spilled disk
        files whose stored key names the fingerprint are unlinked too:
        a fingerprint can recur (ingest an edge batch, then delete the
        same batch), and a stale spill surviving a restart would then
        serve the old run's bytes for a graph it never saw.  Returns the
        number of memory entries plus spill files dropped, all counted
        as ``invalidations``, not ``evictions``.
        """
        with self._lock:
            dead = [k for k in self._entries if k[0] == fingerprint]
            for key in dead:
                del self._entries[key]
            dropped = len(dead)
            if self.disk_dir is not None:
                # Spill filenames are full-key digests, so the
                # fingerprint is only recoverable from each file's
                # embedded key record.
                for digest in list(self._disk_index):
                    try:
                        record = json.loads(
                            self._disk_path(digest).read_text()
                        )
                        stored_key = (
                            record.get("key")
                            if isinstance(record, dict)
                            else None
                        )
                    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                        self._drop_disk(digest, counter="disk_errors")
                        continue
                    if (
                        isinstance(stored_key, list)
                        and stored_key
                        and stored_key[0] == fingerprint
                    ):
                        self._disk_index.pop(digest, None)
                        try:
                            self._disk_path(digest).unlink()
                        except OSError:
                            pass
                        dropped += 1
            self.invalidations += dropped
            return dropped

    # ------------------------------------------------------------------
    def _insert(self, key: tuple, entry: _Entry) -> None:
        """File one entry (caller holds the lock): sweep, insert, evict.

        TTL-expired entries are swept *first* and counted as
        ``expirations`` — capacity pressure must evict dead weight, not
        live least-recently-used entries sharing the cache with expired
        ones that merely had not been looked up since their deadline.
        """
        self._entries.pop(key, None)
        if len(self._entries) >= self.capacity:
            for stale_key in [
                k for k, e in self._entries.items() if self._expired(e)
            ]:
                del self._entries[stale_key]
                self.expirations += 1
        self._entries[key] = entry
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            evicted += 1
        if evicted:
            _events.emit(
                "debug",
                "cache",
                _events.CACHE_EVICTED,
                evicted=evicted,
                entries=len(self._entries),
                capacity=self.capacity,
            )

    def _expired(self, entry: _Entry) -> bool:
        return entry.expires_at is not None and self._clock() >= entry.expires_at

    # ------------------------------------------------------------------
    # Disk tier (every helper below is called with the lock held)
    # ------------------------------------------------------------------
    def _scan_disk(self) -> None:
        """Index existing spill files (restart path), oldest first."""
        try:
            files = sorted(
                (
                    (path.stat().st_mtime, path.stem)
                    for path in self.disk_dir.glob("*.json")
                ),
            )
        except OSError:
            self.disk_errors += 1
            return
        for mtime, digest in files:
            self._disk_index[digest] = mtime

    def _disk_path(self, digest: str) -> Path:
        return self.disk_dir / f"{digest}.json"

    def _drop_disk(self, digest: str, *, counter: str) -> None:
        self._disk_index.pop(digest, None)
        try:
            self._disk_path(digest).unlink()
        except OSError:
            pass
        setattr(self, counter, getattr(self, counter) + 1)
        if counter == "disk_errors":
            _events.emit(
                "error",
                "cache",
                _events.CACHE_DISK_ERROR,
                digest=digest,
                errors=self.disk_errors,
            )

    def _spill(self, key: tuple, entry: _Entry) -> None:
        """Write-through one entry to its spill file (atomically)."""
        digest = key_digest(key)
        record = {
            "format": DISK_FORMAT,
            "key": _key_record(key),
            "pattern": str(entry.pattern),
            "pattern_name": entry.pattern.name,
            "stored_at": self._wall(),
            "ttl": self.ttl,
            "result": entry.result.to_dict(),
        }
        path = self._disk_path(digest)
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_text(json.dumps(record, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            self.disk_errors += 1
            _events.emit(
                "error",
                "cache",
                _events.CACHE_DISK_ERROR,
                digest=digest,
                op="spill",
                errors=self.disk_errors,
            )
            return
        self._disk_index.pop(digest, None)
        self._disk_index[digest] = record["stored_at"]
        self.disk_writes += 1
        if self.disk_capacity is not None:
            while len(self._disk_index) > self.disk_capacity:
                oldest = next(iter(self._disk_index))
                self._drop_disk(oldest, counter="disk_evictions")

    def _load_from_disk(self, key: tuple) -> "_Entry | None":
        """Verified reload of one spilled entry, or None (a miss)."""
        digest = key_digest(key)
        if digest not in self._disk_index:
            return None
        try:
            record = json.loads(self._disk_path(digest).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._drop_disk(digest, counter="disk_errors")
            return None
        # Fingerprint-verified reload: the file must repeat the exact
        # key — graph fingerprint, canonical pattern, engine, config
        # digest, collect flag — not merely sit at the right filename.
        if (
            not isinstance(record, dict)
            or record.get("format") != DISK_FORMAT
            or record.get("key") != _key_record(key)
        ):
            self._drop_disk(digest, counter="disk_errors")
            return None
        ttl = record.get("ttl")
        remaining: float | None = None
        if ttl is not None:
            remaining = record.get("stored_at", 0.0) + ttl - self._wall()
            if remaining <= 0:
                self._drop_disk(digest, counter="disk_expirations")
                return None
        try:
            from repro.api.session import resolve_query

            pattern = resolve_query(record["pattern"]).copy_with_name(
                record.get("pattern_name")
            )
            result = RunResult.from_dict(record["result"])
        except Exception:
            self._drop_disk(digest, counter="disk_errors")
            return None
        self.disk_hits += 1
        return _Entry(
            pattern=pattern,
            result=result,
            expires_at=(
                None if remaining is None else self._clock() + remaining
            ),
        )

    def stats(self) -> dict:
        """Counter snapshot (JSON-safe; keys match the served counters).

        With the disk tier enabled a nested ``"disk"`` dict reports the
        tier's entry count and hit/spill/eviction/error counters
        (``None`` when the cache is memory-only).
        """
        with self._lock:
            snapshot: dict = {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
            }
            snapshot["disk"] = (
                None
                if self.disk_dir is None
                else {
                    "dir": str(self.disk_dir),
                    "entries": len(self._disk_index),
                    "capacity": self.disk_capacity,
                    "hits": self.disk_hits,
                    "writes": self.disk_writes,
                    "evictions": self.disk_evictions,
                    "expirations": self.disk_expirations,
                    "errors": self.disk_errors,
                }
            )
            return snapshot

    def annotate(self, result: RunResult, *, hit: bool) -> RunResult:
        """Merge this cache's counters into ``result.counters`` in place.

        Adds ``service.cache_hit`` (0/1 for *this* request) and the
        cumulative ``service.cache_hits`` / ``service.cache_misses`` /
        ``service.cache_evictions`` totals, so every served RunResult
        carries the cache's state without a second round-trip.
        """
        snapshot = self.stats()
        result.counters[HIT_COUNTER] = 1 if hit else 0
        result.counters["service.cache_hits"] = snapshot["hits"]
        result.counters["service.cache_misses"] = snapshot["misses"]
        result.counters["service.cache_evictions"] = (
            snapshot["evictions"] + snapshot["expirations"]
        )
        return result


__all__ = [
    "DEDUP_COUNTER",
    "HIT_COUNTER",
    "ResultCache",
    "cache_key",
    "config_digest",
    "key_digest",
    "remap_embeddings",
]
