"""Canonical-pattern result cache: share work across isomorphic queries.

The RADS paper motivates sharing enumeration work across queries; this
module implements the serving-side half of that idea.  Results are keyed
by the *isomorphism class* of the query pattern — via
:meth:`repro.query.pattern.Pattern.canonical_key` — together with the data
graph's content fingerprint, the engine name and a digest of the
stats-affecting :class:`~repro.api.config.RunConfig` fields.  A cache hit
for ``"a-b, b-c, c-a"`` therefore serves ``"x-y, y-z, z-x"`` too: the
stored embeddings are remapped through an explicit isomorphism so every
served tuple is a genuine embedding of the *requested* pattern.

Eviction is LRU with an optional TTL; ``hits`` / ``misses`` / ``evictions``
counters are kept per cache and surfaced on every served
:class:`~repro.engines.base.RunResult` under ``counters["service.*"]``.

What is deliberately **not** in the key:

- ``workers`` — results are backend-independent (asserted by the runtime
  test suite), so a serial run can serve a ``--workers 8`` client.
- ``limit`` — collected embeddings are truncated at serve time, exactly
  like :meth:`repro.api.session.Session.run` does after an uncached run.

Failed (simulated-OOM) runs are never cached: they are cheap to reproduce
and a capacity change should take effect immediately.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.engines.base import RunResult
from repro.query.isomorphism import find_isomorphism
from repro.query.pattern import Pattern

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.api.config import RunConfig
    from repro.graph.graph import Graph

#: Counter names merged into served ``RunResult.counters``.
HIT_COUNTER = "service.cache_hit"
DEDUP_COUNTER = "service.dedup"


def config_digest(config: "RunConfig") -> str:
    """Digest of the RunConfig fields that can change run *statistics*.

    Machines, memory cap, partitioner, cost model, stragglers and seed all
    change the simulated timings/communication (and the OOM outcome), so
    they key the cache.  ``workers``, ``backend`` and ``shards`` are
    excluded — results are backend-independent, so a socket-backed server
    serves cache hits for results computed serially and vice versa — as
    are the result-mode fields (``collect`` keys separately per request;
    ``limit`` is applied at serve time).

    Partitioner/cost-model *instances* are reduced to their type names
    (mirroring ``RunConfig.to_dict``): two differently-parameterised
    instances of one class should be given distinct classes — or distinct
    caches — to be distinguished.
    """
    record = config.to_dict()
    record.pop("workers", None)
    record.pop("backend", None)
    record.pop("shards", None)
    record.pop("collect", None)
    record.pop("limit", None)
    if record.get("stragglers") is not None:
        record["stragglers"] = {
            str(machine): float(factor)
            for machine, factor in sorted(record["stragglers"].items())
        }
    payload = json.dumps(record, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def cache_key(
    graph: "Graph",
    pattern: Pattern,
    engine: str,
    config: "RunConfig",
    *,
    collect: bool,
    digest: str | None = None,
) -> tuple:
    """The full, hashable cache key for one (graph, query, engine, config).

    ``(graph fingerprint, pattern.canonical_key(), engine, config digest,
    collect)`` — equal for isomorphic patterns, different for anything
    that could change the served bytes.  Pass a precomputed ``digest``
    (from :func:`config_digest` of the same config) to skip rehashing an
    immutable config on a hot path.
    """
    return (
        graph.fingerprint(),
        pattern.canonical_key(),
        str(engine),
        config_digest(config) if digest is None else digest,
        bool(collect),
    )


def remap_embeddings(
    embeddings: list[tuple[int, ...]],
    stored_pattern: Pattern,
    requested_pattern: Pattern,
) -> list[tuple[int, ...]]:
    """Re-index embeddings of ``stored_pattern`` for ``requested_pattern``.

    An embedding is a tuple indexed by pattern vertex; serving a cached
    result for an isomorphic rewrite must permute each tuple through an
    isomorphism ``requested -> stored`` so that position ``u`` holds the
    data vertex matched to *requested* vertex ``u``.  Structurally equal
    patterns use the identity (so exact repeats are byte-identical even
    when the pattern has non-trivial automorphisms).
    """
    if stored_pattern == requested_pattern:
        return list(embeddings)
    mapping = find_isomorphism(requested_pattern, stored_pattern)
    if mapping is None:
        raise ValueError(
            f"cannot remap embeddings: {requested_pattern.name!r} is not "
            f"isomorphic to cached {stored_pattern.name!r}"
        )
    order = [mapping[u] for u in range(requested_pattern.num_vertices)]
    return [tuple(emb[v] for v in order) for emb in embeddings]


def copy_result(result: RunResult) -> RunResult:
    """A deep, independent copy (via the serialization round-trip).

    The one copy idiom shared by the cache and the scheduler: every
    served result is detached from the stored/raw one, so callers can
    mutate counters or embeddings freely.
    """
    return RunResult.from_dict(result.to_dict())


@dataclass
class _Entry:
    """One cached run: the executed pattern plus its result and deadline."""

    pattern: Pattern
    result: RunResult
    expires_at: float | None


class ResultCache:
    """Thread-safe LRU + TTL cache of :class:`RunResult` records.

    ``capacity`` bounds the number of entries (least-recently-*used* is
    evicted first); ``ttl`` (seconds, ``None`` = forever) expires entries
    lazily at lookup and insertion time.  ``clock`` is injectable for
    deterministic tests and defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: tuple, pattern: Pattern) -> RunResult | None:
        """The cached result for ``key``, served *for* ``pattern``.

        Returns an independent :class:`RunResult` copy whose
        ``pattern_name`` and (when collected) ``embeddings`` are remapped
        to the requested pattern, or ``None`` on a miss.  Counts, timings
        and communication stats are the stored run's, bit-identical to
        re-running the query.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                entry = None
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            stored_pattern, stored = entry.pattern, entry.result
        served = copy_result(stored)
        served.pattern_name = pattern.name
        if served.embeddings is not None:
            served.embeddings = remap_embeddings(
                served.embeddings, stored_pattern, pattern
            )
        return served

    def put(self, key: tuple, pattern: Pattern, result: RunResult) -> bool:
        """Store a finished run; returns False when it is not cacheable."""
        if result.failed:
            return False
        entry = _Entry(
            pattern=pattern,
            result=copy_result(result),
            expires_at=(
                None if self.ttl is None else self._clock() + self.ttl
            ),
        )
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return True

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def _expired(self, entry: _Entry) -> bool:
        return entry.expires_at is not None and self._clock() >= entry.expires_at

    def stats(self) -> dict[str, int]:
        """Counter snapshot (JSON-safe; keys match the served counters)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
            }

    def annotate(self, result: RunResult, *, hit: bool) -> RunResult:
        """Merge this cache's counters into ``result.counters`` in place.

        Adds ``service.cache_hit`` (0/1 for *this* request) and the
        cumulative ``service.cache_hits`` / ``service.cache_misses`` /
        ``service.cache_evictions`` totals, so every served RunResult
        carries the cache's state without a second round-trip.
        """
        snapshot = self.stats()
        result.counters[HIT_COUNTER] = 1 if hit else 0
        result.counters["service.cache_hits"] = snapshot["hits"]
        result.counters["service.cache_misses"] = snapshot["misses"]
        result.counters["service.cache_evictions"] = (
            snapshot["evictions"] + snapshot["expirations"]
        )
        return result


__all__ = [
    "DEDUP_COUNTER",
    "HIT_COUNTER",
    "ResultCache",
    "cache_key",
    "config_digest",
    "remap_embeddings",
]
