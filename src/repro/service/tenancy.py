"""Per-tenant quotas for the query service: rate, memory, fair share.

A production serving tier cannot let one caller starve the rest.  This
module adds the accounting half of multi-tenancy to
:class:`~repro.service.scheduler.QueryScheduler`:

- **Token-bucket rate limits** — each tenant's submissions drain a
  bucket of ``burst`` tokens refilled at ``rate`` tokens/second; an
  empty bucket rejects the submission loudly at submit time with
  :class:`QuotaExceeded` (cache hits and dedup riders consume tokens
  too: the rate shapes *request* rate, not compute).
- **Per-tenant memory budgets** — a tenant's concurrently *running*
  admission cost (the same ``machines x memory_mb`` estimate the global
  budget meters) may not exceed ``memory_mb``; a request that can never
  fit is rejected at submit time, one that merely has to wait is
  deferred at claim time without blocking other tenants.
- **Weighted fair share** — among runnable queued requests of equal
  priority, the scheduler picks the tenant with the least reserved
  memory per unit ``weight`` (FIFO within a tenant), so a heavy tenant
  cannot monopolize the worker pool by submitting first.

:class:`TenantLedger` holds the per-tenant state; quotas come from an
explicit ``{tenant: TenantQuota}`` mapping plus an optional ``default``
applied to tenants not listed.  Tenants without any quota (and the
anonymous ``tenant=None``) are tracked for stats and fairness but never
rejected.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.api.config import MIB

__all__ = ["QuotaExceeded", "TenantLedger", "TenantQuota"]


class QuotaExceeded(RuntimeError):
    """A tenant's token bucket is empty (submission rate limit)."""


@dataclass(frozen=True)
class TenantQuota:
    """Serving limits for one tenant (all knobs optional).

    - ``rate``: submissions per second refilled into the bucket
      (``None`` = unmetered).
    - ``burst``: bucket capacity — how many submissions may arrive
      back-to-back (default: ``ceil(rate)``, at least 1).
    - ``memory_mb``: cap on the tenant's concurrently reserved admission
      cost, in MiB (``None`` = only the global budget applies).
    - ``weight``: fair-share weight — a tenant with weight 2 is allowed
      twice the reserved memory of a weight-1 tenant before the
      scheduler prefers the other.
    """

    rate: float | None = None
    burst: int | None = None
    memory_mb: float | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate is not None and not (
            isinstance(self.rate, (int, float)) and self.rate > 0
        ):
            raise ValueError(
                f"rate must be positive or None, got {self.rate!r}"
            )
        if self.burst is not None and not (
            isinstance(self.burst, int) and self.burst >= 1
        ):
            raise ValueError(
                f"burst must be an integer >= 1 or None, got {self.burst!r}"
            )
        if self.memory_mb is not None and not (
            isinstance(self.memory_mb, (int, float)) and self.memory_mb > 0
        ):
            raise ValueError(
                f"memory_mb must be positive or None, got {self.memory_mb!r}"
            )
        if not (isinstance(self.weight, (int, float)) and self.weight > 0):
            raise ValueError(
                f"weight must be positive, got {self.weight!r}"
            )

    @property
    def bucket_size(self) -> float | None:
        """Effective bucket capacity (``None`` when rate is unmetered)."""
        if self.rate is None:
            return None
        return float(self.burst if self.burst is not None
                     else max(1, math.ceil(self.rate)))

    @property
    def memory_bytes(self) -> int | None:
        """The memory budget in bytes (what admission accounts in)."""
        return None if self.memory_mb is None else int(self.memory_mb * MIB)


class _TenantState:
    """Mutable accounting for one tenant (bucket + reservations + stats)."""

    __slots__ = (
        "quota", "tokens", "refilled_at", "reserved", "running", "stats",
    )

    def __init__(self, quota: "TenantQuota | None", now: float):
        self.quota = quota
        size = None if quota is None else quota.bucket_size
        self.tokens = 0.0 if size is None else size
        self.refilled_at = now
        self.reserved = 0
        self.running = 0
        self.stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cache_hits": 0,
            "deduped": 0,
            "rejected_rate": 0,
            "rejected_memory": 0,
        }


class TenantLedger:
    """Thread-safe per-tenant accounting behind the scheduler.

    ``quotas`` maps tenant names to their :class:`TenantQuota`;
    ``default`` applies to any other named tenant.  The anonymous tenant
    (``None``) is tracked but never limited.  ``clock`` is injectable
    for deterministic token-bucket tests.
    """

    def __init__(
        self,
        quotas: "Mapping[str, TenantQuota] | None" = None,
        *,
        default: "TenantQuota | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._quotas = dict(quotas or {})
        for tenant, quota in self._quotas.items():
            if not isinstance(tenant, str) or not tenant:
                raise ValueError(
                    f"tenant names must be non-empty strings, got {tenant!r}"
                )
            if not isinstance(quota, TenantQuota):
                raise TypeError(
                    f"quota for {tenant!r} must be a TenantQuota, "
                    f"got {quota!r}"
                )
        self._default = default
        self._clock = clock
        self._lock = threading.Lock()
        self._states: dict[Any, _TenantState] = {}

    # ------------------------------------------------------------------
    def quota_for(self, tenant: "str | None") -> "TenantQuota | None":
        """The quota governing ``tenant`` (the anonymous tenant has none)."""
        if tenant is None:
            return None
        return self._quotas.get(tenant, self._default)

    def _state(self, tenant: "str | None") -> _TenantState:
        """The tenant's state record (caller holds the lock)."""
        state = self._states.get(tenant)
        if state is None:
            state = _TenantState(self.quota_for(tenant), self._clock())
            self._states[tenant] = state
        return state

    def _refill(self, state: _TenantState, now: float) -> None:
        quota = state.quota
        if quota is None or quota.rate is None:
            return
        elapsed = max(0.0, now - state.refilled_at)
        state.tokens = min(
            quota.bucket_size or 0.0, state.tokens + elapsed * quota.rate
        )
        state.refilled_at = now

    # ------------------------------------------------------------------
    def admit(self, tenant: "str | None") -> None:
        """Charge one submission token; raises :class:`QuotaExceeded`."""
        with self._lock:
            state = self._state(tenant)
            quota = state.quota
            if quota is None or quota.rate is None:
                return
            self._refill(state, self._clock())
            if state.tokens < 1.0:
                state.stats["rejected_rate"] += 1
                raise QuotaExceeded(
                    f"tenant {tenant!r} exceeded its submission rate of "
                    f"{quota.rate}/s (burst {int(quota.bucket_size or 0)}); "
                    f"retry later"
                )
            state.tokens -= 1.0

    def memory_bytes(self, tenant: "str | None") -> "int | None":
        """The tenant's concurrent-memory budget in bytes (None = uncapped)."""
        quota = self.quota_for(tenant)
        return None if quota is None else quota.memory_bytes

    def reject_memory(self, tenant: "str | None") -> None:
        """Count a never-fits memory rejection for ``tenant``."""
        with self._lock:
            self._state(tenant).stats["rejected_memory"] += 1

    def has_headroom(self, tenant: "str | None", cost: int) -> bool:
        """Would running a ``cost``-byte request keep the tenant in budget?"""
        budget = self.memory_bytes(tenant)
        if budget is None:
            return True
        with self._lock:
            return self._state(tenant).reserved + cost <= budget

    def reserve(self, tenant: "str | None", cost: int) -> None:
        """Charge a claimed execution's cost against the tenant."""
        with self._lock:
            state = self._state(tenant)
            state.reserved += cost
            state.running += 1

    def release(self, tenant: "str | None", cost: int) -> None:
        """Return a finished execution's cost to the tenant."""
        with self._lock:
            state = self._state(tenant)
            state.reserved -= cost
            state.running -= 1

    def fair_key(self, tenant: "str | None") -> float:
        """Reserved bytes per unit weight — lower claims first."""
        with self._lock:
            state = self._states.get(tenant)
            if state is None:
                return 0.0
            weight = 1.0 if state.quota is None else state.quota.weight
            return state.reserved / weight

    def note(self, tenant: "str | None", counter: str, amount: int = 1) -> None:
        """Bump one per-tenant stat counter."""
        with self._lock:
            self._state(tenant).stats[counter] += amount

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, dict[str, Any]]:
        """JSON-safe per-tenant usage (the ``metrics`` op's tenant view).

        The anonymous tenant is reported under ``"*"`` when it has any
        activity; named tenants under their own names.
        """
        with self._lock:
            snapshot: dict[str, dict[str, Any]] = {}
            for tenant, state in self._states.items():
                name = "*" if tenant is None else str(tenant)
                quota = state.quota
                snapshot[name] = dict(state.stats)
                snapshot[name].update({
                    "reserved_bytes": state.reserved,
                    "running": state.running,
                    "rate": None if quota is None else quota.rate,
                    "memory_mb": None if quota is None else quota.memory_mb,
                    "weight": 1.0 if quota is None else quota.weight,
                })
            return snapshot
