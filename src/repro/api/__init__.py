"""Public API: engine registry, run configuration and the session facade.

This package is the stable surface every entry point (CLI, bench harness,
examples, future services) is built on::

    import repro

    result = (
        repro.open("road.npz")
        .with_cluster(machines=10, memory_mb=512)
        .engine("rads")
        .query("q4")
        .run()
    )
    print(result.summary())
    record = result.to_dict()          # JSON-safe; RunResult.from_dict inverts

Pieces:

- :class:`EngineRegistry` / :func:`register_engine` / :func:`default_registry`
  — one case-insensitive name/alias -> engine mapping with capability
  metadata and per-engine factory kwargs (`repro.api.registry`).
- :class:`RunConfig` — validated cluster + backend + result-mode
  configuration (`repro.api.config`).
- :class:`Session` / :func:`open_session` — fluent composition and
  ``run_grid`` sweeps (`repro.api.session`).
- JSON/JSONL result serialization (`repro.api.results`).
"""

from repro.api.config import MIB, ConfigError, PARTITIONER_NAMES, RunConfig
from repro.api.registry import (
    CapabilityError,
    EngineRegistry,
    EngineSpec,
    UnknownEngineError,
    default_registry,
    register_engine,
)
from repro.api.results import (
    STORE_READ_KINDS,
    append_record_jsonl,
    grid_results,
    read_records_jsonl,
    read_results_jsonl,
    record_from_dict,
    record_to_dict,
    result_from_json,
    result_to_json,
    write_results_jsonl,
)
from repro.api.session import (
    Session,
    UnknownQueryError,
    load_graph,
    open_session,
    resolve_pattern,
    resolve_query,
)
from repro.api.session import open  # noqa: A004 - the facade's spelling
from repro.engines.base import RunResult
from repro.query.dsl import (
    PatternBuilder,
    PatternSyntaxError,
    parse_pattern,
    pattern,
)
from repro.query.explain import QueryExplanation, explain_query

__all__ = [
    "CapabilityError",
    "ConfigError",
    "EngineRegistry",
    "EngineSpec",
    "MIB",
    "PARTITIONER_NAMES",
    "PatternBuilder",
    "PatternSyntaxError",
    "QueryExplanation",
    "RunConfig",
    "RunResult",
    "STORE_READ_KINDS",
    "Session",
    "UnknownEngineError",
    "UnknownQueryError",
    "append_record_jsonl",
    "default_registry",
    "explain_query",
    "grid_results",
    "load_graph",
    "open",
    "open_session",
    "parse_pattern",
    "pattern",
    "read_records_jsonl",
    "read_results_jsonl",
    "record_from_dict",
    "record_to_dict",
    "register_engine",
    "resolve_pattern",
    "resolve_query",
    "result_from_json",
    "result_to_json",
    "write_results_jsonl",
]
