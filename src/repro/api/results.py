"""Serializable run results: JSON/JSONL round-trips for RunResult.

The dict form lives on :meth:`repro.engines.base.RunResult.to_dict` /
``from_dict``; this module adds the file-level helpers used by the CLI's
``--json`` output and by provenance-style tooling that wants to archive
whole experiment grids as one record per line.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.engines.base import RunResult

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.bench.harness import GridResult


def result_to_json(result: RunResult, *, indent: int | None = None) -> str:
    """One RunResult as a JSON document."""
    return json.dumps(result.to_dict(), indent=indent, sort_keys=True)


def result_from_json(document: str) -> RunResult:
    """Inverse of :func:`result_to_json`."""
    return RunResult.from_dict(json.loads(document))


def write_results_jsonl(
    results: Iterable[RunResult], path: str | Path
) -> int:
    """Write results to ``path`` as JSON Lines; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(result_to_json(result))
            handle.write("\n")
            count += 1
    return count


def read_results_jsonl(path: str | Path) -> list[RunResult]:
    """Read back a JSONL file written by :func:`write_results_jsonl`."""
    results = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                results.append(result_from_json(line))
    return results


def grid_results(grid: "GridResult") -> list[RunResult]:
    """A GridResult's runs flattened in (engine, query) insertion order."""
    return list(grid.results.values())
