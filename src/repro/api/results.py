"""Serializable run results: JSON/JSONL round-trips for result records.

The dict forms live on :meth:`repro.engines.base.RunResult.to_dict` /
``from_dict`` and :meth:`repro.query.explain.QueryExplanation.to_dict` /
``from_dict``; this module adds the file-level helpers used by the CLI's
``--json`` output, by provenance-style tooling that archives whole
experiment grids as one record per line, and by the query service's
request log (:mod:`repro.service.server`), which appends every served
record and replays through :func:`read_records_jsonl`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.engines.base import RunResult

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.bench.harness import GridResult
    from repro.query.explain import QueryExplanation
    from repro.streaming.records import DeltaRecord

    #: Records these helpers read and write (a real alias so checkers
    #: and get_type_hints can resolve the annotations below).
    Record = RunResult | QueryExplanation | DeltaRecord


def result_to_json(result: RunResult, *, indent: int | None = None) -> str:
    """One RunResult as a JSON document."""
    return json.dumps(result.to_dict(), indent=indent, sort_keys=True)


def result_from_json(document: str) -> RunResult:
    """Inverse of :func:`result_to_json`."""
    return RunResult.from_dict(json.loads(document))


def record_to_dict(record: "Record | dict[str, Any]") -> dict[str, Any]:
    """The dict form of a RunResult / QueryExplanation (dicts pass through)."""
    if isinstance(record, dict):
        return record
    return record.to_dict()


#: ``"kind"`` tags of embedding-store read records (the query server logs
#: one per served ``page``/``lookup``/``aggregate`` op).  They have no
#: richer type — each is already its own JSON-safe payload — so
#: :func:`record_from_dict` replays them as plain dicts.
STORE_READ_KINDS = ("page", "lookup", "aggregate")


def record_from_dict(data: dict[str, Any]) -> "Record | dict[str, Any]":
    """Rebuild a record from its dict form, dispatching on the schema.

    ``DeltaRecord`` dicts carry an explicit ``"kind": "delta"`` tag;
    embedding-store reads carry ``"kind": "page"``/``"lookup"``/
    ``"aggregate"`` and pass through as dicts (see
    :data:`STORE_READ_KINDS`); event-journal records
    (:mod:`repro.obs.events` sinks) are recognised by their
    ``seq``/``level``/``component`` core keys and pass through as
    dicts; ``QueryExplanation`` dicts are recognised
    by their ``rounds`` / ``matching_order`` keys, ``RunResult`` dicts by
    ``embedding_count``; anything else raises ``ValueError`` (a record
    log should only contain those).
    """
    if data.get("kind") == "delta":
        from repro.streaming.records import DeltaRecord

        return DeltaRecord.from_dict(data)
    if data.get("kind") in STORE_READ_KINDS:
        return data
    if "seq" in data and "level" in data and "component" in data:
        # An event-journal record (repro.obs.events JSONL sink): already
        # its own JSON-safe payload, replayed as a plain dict.
        return data
    if "rounds" in data and "matching_order" in data:
        from repro.query.explain import QueryExplanation

        return QueryExplanation.from_dict(data)
    if "embedding_count" in data:
        return RunResult.from_dict(data)
    raise ValueError(
        f"unrecognised record schema (keys: {sorted(data)[:8]}); expected "
        f"RunResult.to_dict(), QueryExplanation.to_dict(), "
        f"DeltaRecord.to_dict() or embedding-store read output"
    )


def write_results_jsonl(
    results: "Iterable[Record | dict[str, Any]]",
    path: str | Path,
    *,
    append: bool = False,
) -> int:
    """Write records to ``path`` as JSON Lines; returns the line count.

    Accepts :class:`RunResult`, :class:`QueryExplanation` or ready dicts
    (mixed freely).  ``append=True`` adds to an existing log instead of
    truncating — the mode the query server's request log uses, so a
    restarted server keeps extending one replayable file.
    """
    count = 0
    with open(path, "a" if append else "w", encoding="utf-8") as handle:
        for result in results:
            handle.write(
                json.dumps(record_to_dict(result), sort_keys=True)
            )
            handle.write("\n")
            count += 1
    return count


def append_record_jsonl(
    record: "Record | dict[str, Any]", path: str | Path
) -> None:
    """Append one record to a JSONL log (creating the file on first use)."""
    write_results_jsonl([record], path, append=True)


def read_results_jsonl(path: str | Path) -> list[RunResult]:
    """Read back a RunResult-only JSONL file (see :func:`read_records_jsonl`)."""
    return [
        RunResult.from_dict(data) for data in _read_dicts_jsonl(path)
    ]


def read_records_jsonl(path: str | Path) -> "list[Record | dict[str, Any]]":
    """Read back a mixed JSONL log of results, explanations and deltas.

    The inverse of :func:`write_results_jsonl` /
    :func:`append_record_jsonl`; each line comes back as the right type
    via :func:`record_from_dict` (embedding-store reads as plain dicts),
    so a server request log replays into live objects.
    """
    return [record_from_dict(data) for data in _read_dicts_jsonl(path)]


def _read_dicts_jsonl(path: str | Path) -> list[dict[str, Any]]:
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def grid_results(grid: "GridResult") -> list[RunResult]:
    """A GridResult's runs flattened in (engine, query) insertion order."""
    return list(grid.results.values())
