"""Validated run configuration shared by every entry point.

:class:`RunConfig` replaces the long positional-argument tails that used
to be threaded through ``EnumerationEngine.run`` / ``make_cluster`` /
``run_query_grid``: one frozen, validated dataclass describes the
simulated cluster (machines, per-machine memory, partitioner, cost model,
stragglers), the execution backend (workers) and the result mode
(collect/limit).  Invalid values raise :class:`ConfigError` at
construction time, not deep inside a run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.cluster.costmodel import CostModel

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.cluster.cluster import Cluster
    from repro.graph.graph import Graph
    from repro.partition.partitioner import Partitioner
    from repro.runtime.executor import Executor

#: Bytes per mebibyte (``memory_mb`` is expressed in MiB).
MIB = 1024 * 1024

#: Named partitioner strategies accepted by :attr:`RunConfig.partitioner`.
PARTITIONER_NAMES = ("metis", "hash", "labelprop")

#: Execution backends accepted by :attr:`RunConfig.backend`.
BACKEND_NAMES = ("auto", "serial", "process", "socket")


#: Legal values of the tri-state ``collect`` result mode.
COLLECT_MODES = (False, True, "store")


class ConfigError(ValueError):
    """A RunConfig field failed validation."""


def normalize_collect(value: Any, *, field: str = "collect") -> "bool | str":
    """Validate the tri-state result mode: ``False``/``True``/``"store"``.

    Truthy non-bools (``collect=1``) are rejected rather than coerced —
    silently treating them as ``True`` used to mask caller bugs, and
    ``"store"`` must stay distinguishable from plain truthiness.
    ``field`` names the offending field in the :class:`ConfigError`.
    """
    if value is True or value is False:
        return value
    if value == "store":
        return "store"
    raise ConfigError(
        f"{field} must be True, False or 'store', got {value!r}"
    )


@dataclass(frozen=True)
class RunConfig:
    """Everything about *how* to run, separate from graph/engine/query.

    - ``machines``: simulated cluster size (>= 1).
    - ``memory_mb``: per-machine memory cap in MiB (``None`` = unlimited).
    - ``partitioner``: ``"metis"`` (default), ``"hash"``, ``"labelprop"``
      or a ready :class:`~repro.partition.partitioner.Partitioner`.
    - ``cost_model``: simulated hardware; ``None`` = default testbed.
    - ``stragglers``: machine id -> slowdown factor (2.0 = half speed).
    - ``workers``: OS processes for independent per-machine work
      (0 = serial; results are backend-independent).
    - ``backend``: execution backend — ``"auto"`` (default: serial for
      ``workers == 0``, else the process pool), ``"serial"``,
      ``"process"``, or ``"socket"`` (dispatch to remote
      ``repro worker`` shard daemons; needs ``shards`` or a shard
      registry passed to :meth:`make_executor`).
    - ``shards``: shard-worker addresses for the socket backend
      (``"host:port"`` strings or ``(host, port)`` tuples); may be
      omitted when an elastic registry supplies the roster.
    - ``seed``: feeds the named partitioners (and future stochastic knobs).
    - ``collect``: result mode — ``False`` (counts only, default),
      ``True`` (keep full embeddings on the result) or ``"store"``
      (enumerate with embeddings and persist them to the session's or
      server's :class:`~repro.store.EmbeddingStore`; the returned result
      carries counts only, with pages served from the store).
    - ``limit``: keep at most this many collected embeddings.
    """

    machines: int = 10
    memory_mb: float | None = None
    partitioner: "str | Partitioner" = "metis"
    cost_model: CostModel | None = None
    stragglers: Mapping[int, float] | None = None
    workers: int = 0
    backend: str = "auto"
    shards: "tuple[str, ...] | None" = None
    seed: int = 0
    collect: "bool | str" = False
    limit: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.machines, int) or self.machines < 1:
            raise ConfigError(
                f"machines must be a positive integer, got {self.machines!r}"
            )
        if self.memory_mb is not None and not (
            isinstance(self.memory_mb, (int, float)) and self.memory_mb > 0
        ):
            raise ConfigError(
                f"memory_mb must be positive or None, got {self.memory_mb!r}"
            )
        if isinstance(self.partitioner, str):
            if self.partitioner not in PARTITIONER_NAMES:
                raise ConfigError(
                    f"unknown partitioner {self.partitioner!r}; choose from "
                    f"{', '.join(PARTITIONER_NAMES)} or pass a Partitioner"
                )
        elif not hasattr(self.partitioner, "assign"):
            raise ConfigError(
                f"partitioner must be a name or Partitioner, "
                f"got {self.partitioner!r}"
            )
        if not isinstance(self.workers, int) or self.workers < 0:
            raise ConfigError(
                f"workers must be a non-negative integer, got {self.workers!r}"
            )
        if self.backend not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown backend {self.backend!r}; choose from "
                f"{', '.join(BACKEND_NAMES)}"
            )
        if self.shards is not None:
            if isinstance(self.shards, (str, bytes)) or not hasattr(
                self.shards, "__iter__"
            ):
                raise ConfigError(
                    f"shards must be a sequence of addresses, "
                    f"got {self.shards!r}"
                )
            normalized_shards = tuple(
                self._normalize_shard(shard) for shard in self.shards
            )
            if not normalized_shards:
                raise ConfigError("shards must not be empty when given")
            object.__setattr__(self, "shards", normalized_shards)
        if self.shards and self.backend != "socket":
            raise ConfigError(
                f"shards only apply to the socket backend "
                f"(got backend={self.backend!r})"
            )
        if self.stragglers is not None:
            normalized = dict(self.stragglers)
            for machine, factor in normalized.items():
                if not isinstance(machine, int) or machine < 0:
                    raise ConfigError(
                        f"straggler machine ids must be non-negative "
                        f"integers, got {machine!r}"
                    )
                if machine >= self.machines:
                    raise ConfigError(
                        f"straggler machine {machine} out of range for "
                        f"{self.machines} machines"
                    )
                if not (isinstance(factor, (int, float)) and factor > 0):
                    raise ConfigError(
                        f"straggler slowdown factors must be positive, "
                        f"got {factor!r} for machine {machine}"
                    )
            object.__setattr__(self, "stragglers", normalized)
        object.__setattr__(self, "collect", normalize_collect(self.collect))
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 1
        ):
            raise ConfigError(
                f"limit must be a positive integer or None, got {self.limit!r}"
            )

    @staticmethod
    def _normalize_shard(shard: Any) -> str:
        """One shard address as a canonical ``host:port`` string."""
        from repro.service.protocol import parse_address

        try:
            host, port = parse_address(
                tuple(shard) if isinstance(shard, (list, tuple)) else shard
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                f"invalid shard address {shard!r}: {exc}"
            ) from exc
        return f"{host}:{port}"

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int | None:
        """Per-machine cap in bytes (what the simulator accounts in)."""
        if self.memory_mb is None:
            return None
        return int(self.memory_mb * MIB)

    def replace(self, **updates: Any) -> "RunConfig":
        """A copy with ``updates`` applied (re-validated)."""
        return dataclasses.replace(self, **updates)

    def build_partitioner(self) -> "Partitioner":
        """The configured partitioner instance (named ones get ``seed``)."""
        if not isinstance(self.partitioner, str):
            return self.partitioner
        from repro.partition.label_propagation import (
            LabelPropagationPartitioner,
        )
        from repro.partition.metis_like import MetisLikePartitioner
        from repro.partition.partitioner import HashPartitioner

        cls = {
            "metis": MetisLikePartitioner,
            "hash": HashPartitioner,
            "labelprop": LabelPropagationPartitioner,
        }[self.partitioner]
        return cls(seed=self.seed)

    def make_partition(self, graph: "Graph"):
        """Partition ``graph`` over ``machines`` with the configured
        partitioner (the expensive, reusable part of cluster setup)."""
        from repro.partition.partition import GraphPartition

        owner = self.build_partitioner().assign(graph, self.machines)
        return GraphPartition(graph, owner)

    def make_cluster(self, graph: "Graph", *, partition=None) -> "Cluster":
        """Partition ``graph`` and build the simulated cluster.

        Pass a prebuilt ``partition`` (from :meth:`make_partition`, for
        this graph and machine count) to reuse it across memory-cap or
        straggler sweeps.  Straggler slowdown factors are applied as
        machine speed factors (they survive
        :meth:`~repro.cluster.cluster.Cluster.fresh_copy`).
        """
        from repro.cluster.cluster import Cluster

        if partition is None:
            partition = self.make_partition(graph)
        cluster = Cluster(
            partition,
            self.cost_model or CostModel(),
            self.memory_bytes,
        )
        for machine, factor in (self.stragglers or {}).items():
            cluster.set_speed_factor(machine, 1.0 / factor)
        return cluster

    def make_executor(self, registry: Any = None) -> "Executor":
        """The configured execution backend (caller owns closing it).

        ``backend="auto"`` keeps the historic ``workers`` semantics
        (0 = serial, N = process pool); ``"socket"`` connects a
        :class:`~repro.distributed.executor.SocketExecutor` to the
        configured ``shards`` (handshakes eagerly, so unreachable rosters
        fail here, not mid-run).  ``registry`` (socket backend only) is a
        :class:`~repro.distributed.registry.ShardRegistry` the executor's
        coordinator reconciles its roster against at batch boundaries —
        with one, ``shards`` may be omitted and the roster starts from
        whatever workers have announced.
        """
        from repro.runtime.executor import (
            ProcessExecutor,
            SerialExecutor,
            get_executor,
        )

        if self.backend == "serial":
            return SerialExecutor()
        if self.backend == "process":
            return ProcessExecutor(self.workers or None)
        if self.backend == "socket":
            from repro.distributed.executor import SocketExecutor

            if not self.shards and registry is None:
                raise ConfigError(
                    "backend='socket' needs shards=[...] (repro worker "
                    "addresses like '127.0.0.1:7471') or an attached "
                    "shard registry (workers announce via "
                    "'repro worker --announce')"
                )
            return SocketExecutor(self.shards or (), registry=registry)
        return get_executor(self.workers)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (objects reduced to their type names)."""
        return {
            "machines": self.machines,
            "memory_mb": self.memory_mb,
            "partitioner": (
                self.partitioner
                if isinstance(self.partitioner, str)
                else type(self.partitioner).__name__
            ),
            "cost_model": (
                None if self.cost_model is None
                else type(self.cost_model).__name__
            ),
            "stragglers": (
                None if self.stragglers is None else dict(self.stragglers)
            ),
            "workers": self.workers,
            "backend": self.backend,
            "shards": None if self.shards is None else list(self.shards),
            "seed": self.seed,
            "collect": self.collect,
            "limit": self.limit,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunConfig":
        """Rebuild a config from its :meth:`to_dict` form (re-validated).

        Inverts everything ``to_dict`` keeps losslessly.  Fields that
        were reduced to type names can only round-trip when they name a
        reconstructible value: the partitioner must be one of
        :data:`PARTITIONER_NAMES` and the cost model must be ``None``
        (a custom instance cannot be rebuilt from its class name alone —
        pass the instance to :class:`RunConfig` directly instead).
        Unknown keys raise :class:`ConfigError` naming them, so a
        mistyped field fails loudly instead of silently defaulting.
        """
        record = dict(data)
        unknown = sorted(
            set(record) - {f.name for f in dataclasses.fields(cls)}
        )
        if unknown:
            raise ConfigError(
                f"unknown RunConfig fields: {', '.join(unknown)}"
            )
        if record.get("cost_model") is not None:
            raise ConfigError(
                f"cost_model {record['cost_model']!r} cannot be rebuilt "
                f"from its type name; construct RunConfig with the "
                f"instance instead"
            )
        partitioner = record.get("partitioner", "metis")
        if not isinstance(partitioner, str) or (
            partitioner not in PARTITIONER_NAMES
        ):
            raise ConfigError(
                f"partitioner {partitioner!r} cannot be rebuilt from a "
                f"dict; choose from {', '.join(PARTITIONER_NAMES)}"
            )
        if record.get("stragglers") is not None:
            # JSON object keys are strings; machine ids are ints.
            try:
                record["stragglers"] = {
                    int(machine): factor
                    for machine, factor in record["stragglers"].items()
                }
            except (TypeError, ValueError, AttributeError) as exc:
                raise ConfigError(
                    f"stragglers must map machine ids to factors, "
                    f"got {record['stragglers']!r}"
                ) from exc
        if record.get("shards") is not None:
            record["shards"] = tuple(record["shards"])
        return cls(**record)
