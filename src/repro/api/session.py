"""The fluent session facade — the library's front door.

One object composes the five layers (graph IO -> partitioner/cluster ->
pattern -> engine -> executor) that previously had to be hand-wired::

    import repro

    result = (
        repro.open("road.npz")
        .with_cluster(machines=10, memory_mb=512)
        .engine("rads")
        .query("q4")
        .run()
    )
    grid = repro.open(graph).run_grid(queries=["q1", "q4"])

A :class:`Session` holds a data graph, a :class:`~repro.api.config.RunConfig`
and an :class:`~repro.api.registry.EngineRegistry`.  The partitioned base
cluster and the process pool are built lazily and reused across runs; each
run executes on a fresh-stats copy of the base cluster, so repeated and
gridded runs are independent — and stats are bit-identical to constructing
the cluster and engine by hand.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.api.config import RunConfig
from repro.api.registry import EngineRegistry, default_registry
from repro.graph.graph import Graph
from repro.graph.io import load_adjacency_text, load_binary, load_edge_list
from repro.query.pattern import Pattern
from repro.query.patterns import named_patterns

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.bench.harness import GridResult
    from repro.cluster.cluster import Cluster
    from repro.engines.base import RunResult
    from repro.runtime.executor import Executor

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET: Any = object()


class UnknownQueryError(KeyError):
    """A query name no registered pattern matches."""

    def __init__(self, name: str):
        self.name = name
        self.choices = ", ".join(sorted(named_patterns()))
        super().__init__(name)

    def __str__(self) -> str:
        return f"unknown query {self.name!r}; choose from: {self.choices}"


def load_graph(path: str | Path) -> Graph:
    """Load a graph, dispatching on the file extension.

    ``.npz`` (binary CSR), ``.edges`` (SNAP edge list) or ``.adj``
    (adjacency text).  Raises ``ValueError`` for anything else.
    """
    path = str(path)
    if path.endswith(".npz"):
        return load_binary(path)
    if path.endswith(".edges"):
        return load_edge_list(path)
    if path.endswith(".adj"):
        return load_adjacency_text(path)
    raise ValueError(f"unknown graph format: {path} (.npz/.edges/.adj)")


def resolve_pattern(query: "str | Pattern") -> Pattern:
    """A Pattern from a pattern or a (case-insensitive) registered name."""
    if isinstance(query, Pattern):
        return query
    pattern = named_patterns().get(str(query).lower())
    if pattern is None:
        raise UnknownQueryError(str(query))
    return pattern


def open_session(
    source: "Graph | str | Path",
    *,
    config: RunConfig | None = None,
    registry: EngineRegistry | None = None,
) -> "Session":
    """Open a session over a Graph instance or a graph file path."""
    graph = source if isinstance(source, Graph) else load_graph(source)
    return Session(graph, config=config, registry=registry)


#: ``repro.open(...)`` — the facade's documented spelling.
open = open_session


class Session:
    """Fluent composition of graph + config + engine + query.

    Builder methods return ``self`` so calls chain; ``run()`` executes the
    currently selected engine/query and returns a
    :class:`~repro.engines.base.RunResult`.  Use as a context manager (or
    call :meth:`close`) to release the process pool when ``workers > 0``.
    """

    def __init__(
        self,
        graph: Graph,
        config: RunConfig | None = None,
        registry: EngineRegistry | None = None,
    ):
        if not isinstance(graph, Graph):
            raise TypeError(
                f"Session needs a Graph, got {type(graph).__name__}; "
                f"use repro.open(path) for files"
            )
        self._graph = graph
        self._config = config or RunConfig()
        self._registry = registry or default_registry()
        self._engine_name: str | None = None
        self._engine_kwargs: dict[str, Any] = {}
        self._engine = None
        self._pattern: Pattern | None = None
        self._query_name: str | None = None
        self._partition = None
        self._executor: "Executor | None" = None

    # -- introspection -------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The data graph."""
        return self._graph

    @property
    def config(self) -> RunConfig:
        """The active run configuration."""
        return self._config

    @property
    def registry(self) -> EngineRegistry:
        """The engine registry lookups go through."""
        return self._registry

    # -- configuration -------------------------------------------------
    #: RunConfig fields the cached graph partition depends on; memory
    #: caps, stragglers, cost model and result mode are applied per run,
    #: so changing them (the common sweep axes) never repartitions.
    _PARTITION_FIELDS = ("machines", "partitioner", "seed")

    def with_config(self, config: RunConfig) -> "Session":
        """Swap in a whole RunConfig."""
        if config != self._config:
            self._invalidate(
                partition=any(
                    getattr(config, name) != getattr(self._config, name)
                    for name in self._PARTITION_FIELDS
                ),
                executor=config.workers != self._config.workers,
            )
            self._config = config
        return self

    def configure(self, **updates: Any) -> "Session":
        """Update individual RunConfig fields (validated immediately)."""
        return self.with_config(self._config.replace(**updates))

    def with_cluster(
        self,
        *,
        machines: int = _UNSET,
        memory_mb: float | None = _UNSET,
        partitioner: Any = _UNSET,
        cost_model: Any = _UNSET,
        stragglers: Mapping[int, float] | None = _UNSET,
        seed: int = _UNSET,
    ) -> "Session":
        """Configure the simulated cluster (named subset of configure)."""
        updates = {
            key: value
            for key, value in (
                ("machines", machines),
                ("memory_mb", memory_mb),
                ("partitioner", partitioner),
                ("cost_model", cost_model),
                ("stragglers", stragglers),
                ("seed", seed),
            )
            if value is not _UNSET
        }
        return self.configure(**updates)

    def with_workers(self, workers: int) -> "Session":
        """Select the execution backend (0 = serial)."""
        return self.configure(workers=workers)

    # -- engine / query selection --------------------------------------
    def engine(self, name: str, **engine_kwargs: Any) -> "Session":
        """Select an engine by registry name/alias (any case).

        ``engine_kwargs`` go to the engine's registered factory — e.g.
        ``session.engine("crystal", index=True)`` builds the clique index
        from the session graph up front.  The instance is built here and
        reused across runs, so factory work (like that index) is paid
        once per selection.
        """
        self._engine_name = self._registry.resolve(name).name
        self._engine_kwargs = dict(engine_kwargs)
        self._engine = self._registry.create(
            self._engine_name, graph=self._graph, **self._engine_kwargs
        )
        return self

    def query(self, query: "str | Pattern") -> "Session":
        """Select the pattern (name like "q4"/"triangle", or a Pattern)."""
        self._pattern = resolve_pattern(query)
        # Only a registered lookup name is a grid key; a Pattern object is
        # carried as-is so run_grid works for unregistered patterns too.
        self._query_name = (
            None if isinstance(query, Pattern) else str(query).lower()
        )
        return self

    # -- execution -----------------------------------------------------
    def _get_partition(self):
        if self._partition is None:
            self._partition = self._config.make_partition(self._graph)
        return self._partition

    def cluster(self) -> "Cluster":
        """A fresh-stats cluster over the session's (cached) partition."""
        return self._config.make_cluster(
            self._graph, partition=self._get_partition()
        )

    def build_engine(self):
        """The selected engine instance (built once at selection time)."""
        if self._engine is None:
            raise RuntimeError("no engine selected; call .engine(name) first")
        return self._engine

    def run(
        self,
        *,
        collect: bool | None = None,
        limit: int | None = None,
    ) -> "RunResult":
        """Run the selected engine on the selected query.

        ``collect``/``limit`` override the config's result mode for this
        run.  With a limit, collected embeddings are truncated after the
        (deterministic) run — counts and stats are unaffected.
        """
        if self._pattern is None:
            raise RuntimeError("no query selected; call .query(name) first")
        engine = self.build_engine()
        collect = self._config.collect if collect is None else collect
        limit = self._config.limit if limit is None else limit
        result = engine.run(
            self.cluster(),
            self._pattern,
            collect_embeddings=collect,
            executor=self._get_executor(),
        )
        if limit is not None and result.embeddings is not None:
            result.embeddings = result.embeddings[:limit]
        return result

    def run_grid(
        self,
        engines: "list[str] | Mapping[str, Any] | None" = None,
        queries: "list[str | Pattern] | None" = None,
        *,
        dataset_name: str = "session",
        check_consistency: bool = True,
        engine_kwargs: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "GridResult":
        """Engine x query sweep over the session cluster configuration.

        ``engines`` is a list of registry names (default: the paper's five),
        or a ready name -> instance mapping; ``queries`` a list of pattern
        names (default: the currently selected query).
        """
        from repro.bench.harness import run_query_grid

        if queries is None:
            if self._pattern is None:
                raise RuntimeError(
                    "no queries given and no query selected"
                )
            queries = [
                self._query_name if self._query_name is not None
                else self._pattern
            ]
        if engines is None or isinstance(engines, (list, tuple)):
            engines = self._registry.create_all(
                list(engines) if engines is not None else None,
                graph=self._graph,
                engine_kwargs=engine_kwargs,
                **({} if engines is not None else {"paper": True}),
            )
        elif engine_kwargs:
            raise ValueError(
                "engine_kwargs only configures registry-built engines; "
                "it cannot apply to a ready engines mapping"
            )
        return run_query_grid(
            self._graph,
            dataset_name,
            list(queries),
            engines=dict(engines),
            config=self._config,
            check_consistency=check_consistency,
            executor=self._get_executor(),
            partition=self._get_partition(),
            collect=self._config.collect,
            limit=self._config.limit,
        )

    # -- lifecycle -----------------------------------------------------
    def _get_executor(self) -> "Executor":
        if self._executor is None:
            self._executor = self._config.make_executor()
        return self._executor

    def _invalidate(self, *, partition: bool, executor: bool) -> None:
        if partition:
            self._partition = None
        if executor and self._executor is not None:
            self._executor.close()
            self._executor = None

    def close(self) -> None:
        """Release the process pool (idempotent; serial is a no-op)."""
        self._invalidate(partition=False, executor=True)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"graph={self._graph!r}",
            f"machines={self._config.machines}",
        ]
        if self._config.memory_mb is not None:
            parts.append(f"memory_mb={self._config.memory_mb}")
        if self._engine_name:
            parts.append(f"engine={self._engine_name!r}")
        if self._pattern is not None:
            parts.append(f"query={self._pattern.name!r}")
        return f"Session({', '.join(parts)})"
