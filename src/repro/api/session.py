"""The fluent session facade — the library's front door.

One object composes the five layers (graph IO -> partitioner/cluster ->
pattern -> engine -> executor) that previously had to be hand-wired::

    import repro

    result = (
        repro.open("road.npz")
        .with_cluster(machines=10, memory_mb=512)
        .engine("rads")
        .query("q4")
        .run()
    )
    grid = repro.open(graph).run_grid(queries=["q1", "q4"])

A :class:`Session` holds a data graph, a :class:`~repro.api.config.RunConfig`
and an :class:`~repro.api.registry.EngineRegistry`.  The partitioned base
cluster and the process pool are built lazily and reused across runs; each
run executes on a fresh-stats copy of the base cluster, so repeated and
gridded runs are independent — and stats are bit-identical to constructing
the cluster and engine by hand.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.api.config import RunConfig, normalize_collect
from repro.api.registry import (
    EngineRegistry,
    default_registry,
    suggest_names,
)
from repro.distributed.errors import DistributedError
from repro.enumeration.labeled import LabeledPattern
from repro.graph.graph import Graph
from repro.graph.labeled import LabeledGraph
from repro.graph.io import load_adjacency_text, load_binary, load_edge_list
from repro.query.dsl import PatternSyntaxError, parse_pattern
from repro.query.pattern import Pattern
from repro.query.patterns import named_patterns

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.bench.harness import GridResult
    from repro.cluster.cluster import Cluster
    from repro.engines.base import RunResult
    from repro.query.explain import QueryExplanation
    from repro.runtime.executor import Executor
    from repro.service.server import QueryServer
    from repro.store import EmbeddingStore
    from repro.streaming.continuous import ContinuousQueryManager, Watch
    from repro.streaming.version import GraphVersion

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET: Any = object()


class UnknownQueryError(KeyError):
    """A query string neither a registered pattern nor valid DSL matches."""

    def __init__(self, name: str, dsl_error: str | None = None):
        self.name = name
        self.choices = ", ".join(sorted(named_patterns()))
        self.suggestions = suggest_names(name, named_patterns())
        self.dsl_error = dsl_error
        super().__init__(name)

    def __str__(self) -> str:
        hint = (
            f" did you mean {' or '.join(map(repr, self.suggestions))}?"
            if self.suggestions
            else ""
        )
        detail = (
            f" (as pattern DSL: {self.dsl_error})" if self.dsl_error else ""
        )
        return (
            f"unknown query {self.name!r};{hint} "
            f"choose from: {self.choices}, "
            f"or pass edge-list DSL like 'a-b, b-c, c-a'{detail}"
        )


def load_graph(path: str | Path) -> Graph:
    """Load a graph, dispatching case-insensitively on the file extension.

    ``.npz`` (binary CSR), ``.edges`` (SNAP edge list) or ``.adj``
    (adjacency text) — ``ROAD.NPZ`` works too.  Raises ``ValueError``
    naming the offending suffix for anything else.
    """
    suffix = Path(str(path)).suffix
    loader = {
        ".npz": load_binary,
        ".edges": load_edge_list,
        ".adj": load_adjacency_text,
    }.get(suffix.lower())
    if loader is None:
        raise ValueError(
            f"unknown graph format {suffix or str(path)!r} for {path}; "
            f"expected .npz, .edges or .adj (any case)"
        )
    return loader(str(path))


def resolve_query(
    query: "str | Pattern | LabeledPattern",
) -> "Pattern | LabeledPattern":
    """A (possibly labeled) pattern from a name, DSL text or pattern.

    Strings are first looked up as registered names (case-insensitive,
    human aliases included: ``"house"`` finds ``q4``); anything that looks
    like edge-list DSL (contains ``-``) is parsed with
    :func:`repro.query.dsl.parse_pattern`, so labeled queries come through
    the same front door::

        resolve_query("q4")                    # registered name
        resolve_query("a-b, b-c, c-a")         # DSL -> triangle
        resolve_query("a:0-b:1, b-c:0, c-a")   # DSL -> LabeledPattern
    """
    if isinstance(query, (Pattern, LabeledPattern)):
        return query
    text = str(query)
    named = named_patterns().get(text.strip().lower())
    if named is not None:
        return named
    if "-" in text:
        try:
            return parse_pattern(text)
        except PatternSyntaxError as exc:
            raise UnknownQueryError(text, dsl_error=str(exc)) from exc
    raise UnknownQueryError(text)


def resolve_pattern(query: "str | Pattern | LabeledPattern") -> Pattern:
    """Like :func:`resolve_query`, unwrapping labels to the bare Pattern."""
    resolved = resolve_query(query)
    if isinstance(resolved, LabeledPattern):
        return resolved.pattern
    return resolved


def open_session(
    source: "Graph | LabeledGraph | str | Path",
    *,
    config: RunConfig | None = None,
    registry: EngineRegistry | None = None,
) -> "Session":
    """Open a session over a (labeled) graph instance or a graph file path."""
    graph = (
        source
        if isinstance(source, (Graph, LabeledGraph))
        else load_graph(source)
    )
    return Session(graph, config=config, registry=registry)


#: ``repro.open(...)`` — the facade's documented spelling.
open = open_session


class Session:
    """Fluent composition of graph + config + engine + query.

    Builder methods return ``self`` so calls chain; ``run()`` executes the
    currently selected engine/query and returns a
    :class:`~repro.engines.base.RunResult`.  Use as a context manager (or
    call :meth:`close`) to release the process pool when ``workers > 0``.

    Sessions are safe to share between threads: selection
    (``engine``/``query``/``configure``) and execution (``run``/
    ``explain``/``run_grid``) serialize on an internal re-entrant lock,
    so concurrent callers see consistent engine+query pairs (engines keep
    per-run state, so runs cannot overlap on one session).  For actual
    concurrent *throughput* over one graph use
    :class:`repro.service.QueryScheduler` (or :meth:`serve`), which runs
    worker threads with per-worker engines.
    """

    def __init__(
        self,
        graph: "Graph | LabeledGraph",
        config: RunConfig | None = None,
        registry: EngineRegistry | None = None,
    ):
        if isinstance(graph, LabeledGraph):
            self._labeled_graph: LabeledGraph | None = graph
            self._graph = graph.graph
        elif isinstance(graph, Graph):
            self._labeled_graph = None
            self._graph = graph
        else:
            raise TypeError(
                f"Session needs a Graph or LabeledGraph, got "
                f"{type(graph).__name__}; use repro.open(path) for files"
            )
        self._config = config or RunConfig()
        self._registry = registry or default_registry()
        self._engine_name: str | None = None
        self._engine_kwargs: dict[str, Any] = {}
        self._engine = None
        self._pattern: Pattern | None = None
        self._labeled_query: LabeledPattern | None = None
        self._query_name: str | None = None
        self._partition = None
        self._executor: "Executor | None" = None
        self._streams: "ContinuousQueryManager | None" = None
        self._store: "EmbeddingStore | None" = None
        # Re-entrant: run() takes it and calls locked helpers like
        # _get_partition(); re-entrancy keeps those compositions simple.
        self._lock = threading.RLock()

    # -- introspection -------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The (unlabeled) data graph partitions and clusters build on."""
        return self._graph

    @property
    def labeled_graph(self) -> "LabeledGraph | None":
        """The labeled data graph, when the session was opened with one."""
        return self._labeled_graph

    @property
    def config(self) -> RunConfig:
        """The active run configuration."""
        return self._config

    @property
    def registry(self) -> EngineRegistry:
        """The engine registry lookups go through."""
        return self._registry

    # -- configuration -------------------------------------------------
    #: RunConfig fields the cached graph partition depends on; memory
    #: caps, stragglers, cost model and result mode are applied per run,
    #: so changing them (the common sweep axes) never repartitions.
    _PARTITION_FIELDS = ("machines", "partitioner", "seed")
    #: RunConfig fields the cached executor depends on.
    _EXECUTOR_FIELDS = ("workers", "backend", "shards")

    def with_config(self, config: RunConfig) -> "Session":
        """Swap in a whole RunConfig."""
        with self._lock:
            if config != self._config:
                # Check before mutating: a rejected config must leave the
                # session (selection and caches) fully intact.
                if config.backend == "socket" and self._engine_name:
                    self._registry.require(
                        self._engine_name, distributed=True
                    )
                self._invalidate(
                    partition=any(
                        getattr(config, name) != getattr(self._config, name)
                        for name in self._PARTITION_FIELDS
                    ),
                    executor=any(
                        getattr(config, name) != getattr(self._config, name)
                        for name in self._EXECUTOR_FIELDS
                    ),
                )
                self._config = config
        return self

    def configure(self, **updates: Any) -> "Session":
        """Update individual RunConfig fields (validated immediately)."""
        return self.with_config(self._config.replace(**updates))

    def with_cluster(
        self,
        *,
        machines: int = _UNSET,
        memory_mb: float | None = _UNSET,
        partitioner: Any = _UNSET,
        cost_model: Any = _UNSET,
        stragglers: Mapping[int, float] | None = _UNSET,
        seed: int = _UNSET,
    ) -> "Session":
        """Configure the simulated cluster (named subset of configure)."""
        updates = {
            key: value
            for key, value in (
                ("machines", machines),
                ("memory_mb", memory_mb),
                ("partitioner", partitioner),
                ("cost_model", cost_model),
                ("stragglers", stragglers),
                ("seed", seed),
            )
            if value is not _UNSET
        }
        return self.configure(**updates)

    def with_workers(self, workers: int) -> "Session":
        """Select the execution backend (0 = serial)."""
        return self.configure(workers=workers)

    def backend(
        self,
        name: str,
        *,
        shards: "list | tuple | None" = None,
        workers: int | None = None,
    ) -> "Session":
        """Select the execution backend by name.

        ``"auto"`` (the default config) derives from ``workers``;
        ``"serial"``/``"process"`` force those backends; ``"socket"``
        dispatches to remote ``repro worker`` shard daemons and needs
        ``shards=[...]`` (``host:port`` strings or ``(host, port)``
        tuples).  Selecting the socket backend with a non-distributed
        engine already selected raises
        :class:`~repro.api.registry.CapabilityError` (same rule as the
        labeled-query capability, in either order)::

            session.backend("socket", shards=["10.0.0.1:7471",
                                              "10.0.0.2:7471"])
        """
        updates: dict[str, Any] = {"backend": name}
        if shards is not None or name != "socket":
            updates["shards"] = tuple(shards) if shards else None
        if workers is not None:
            updates["workers"] = workers
        return self.configure(**updates)

    def with_store(self, store: "EmbeddingStore | str | Path") -> "Session":
        """Attach a persistent embedding store (or open one at a path).

        Attaching enables ``run(collect="store")`` — the enumeration is
        persisted as trie-compressed columns keyed like the result cache,
        and repeated runs (including isomorphic rewrites of the query)
        are answered from disk without re-enumeration — plus the indexed
        :meth:`page`, :meth:`lookup` and :meth:`aggregate` reads.
        Streaming :meth:`ingest` invalidates the old snapshot's stored
        sets by graph fingerprint, exactly like the result cache.
        """
        from repro.store import EmbeddingStore

        with self._lock:
            if isinstance(store, EmbeddingStore):
                self._store = store
            else:
                self._store = EmbeddingStore(store)
        return self

    @property
    def store(self) -> "EmbeddingStore | None":
        """The attached embedding store, when :meth:`with_store` was used."""
        return self._store

    # -- engine / query selection --------------------------------------
    def engine(self, name: str, **engine_kwargs: Any) -> "Session":
        """Select an engine by registry name/alias (any case).

        ``engine_kwargs`` go to the engine's registered factory — e.g.
        ``session.engine("crystal", index=True)`` builds the clique index
        from the session graph up front.  The instance is built here and
        reused across runs, so factory work (like that index) is paid
        once per selection.
        """
        canonical = self._registry.resolve(name).name
        with self._lock:
            # Check before mutating: a rejected selection must leave the
            # previously selected engine (and its name) fully intact.
            self._check_label_capability(engine_name=canonical)
            if self._config.backend == "socket":
                self._registry.require(canonical, distributed=True)
            self._engine_name = canonical
            self._engine_kwargs = dict(engine_kwargs)
            self._engine = self._registry.create(
                self._engine_name, graph=self._graph, **self._engine_kwargs
            )
        return self

    def query(self, query: "str | Pattern | LabeledPattern") -> "Session":
        """Select the query pattern.

        Accepts a registered name (``"q4"``, human aliases like
        ``"house"``, any case), edge-list DSL (``"a-b, b-c, c-a"``,
        labeled ``"a:0-b:1, ..."``), a :class:`Pattern` or a
        :class:`~repro.enumeration.labeled.LabeledPattern`.  Labeled
        queries need a session opened over a
        :class:`~repro.graph.labeled.LabeledGraph` and an engine whose
        registry entry has ``supports_labels=True`` — both are checked
        here, at resolution time.
        """
        resolved = resolve_query(query)
        with self._lock:
            if isinstance(resolved, LabeledPattern):
                if self._labeled_graph is None:
                    raise ValueError(
                        f"labeled query {resolved!r} needs a labeled data "
                        f"graph; open the session with a LabeledGraph (e.g. "
                        f"repro.graph.labeled.label_randomly(graph, k))"
                    )
                # Check before mutating: a rejected query must leave the
                # previous selection fully intact.
                if self._engine_name is not None:
                    self._registry.require(
                        self._engine_name, supports_labels=True
                    )
                self._labeled_query = resolved
                self._pattern = resolved.pattern
            else:
                self._labeled_query = None
                self._pattern = resolved
            # Only a registered lookup name is a grid key; patterns and DSL
            # text are carried as objects so run_grid works for them too.
            self._query_name = (
                str(query).strip().lower()
                if isinstance(query, str)
                and str(query).strip().lower() in named_patterns()
                else None
            )
        return self

    def _check_label_capability(self, engine_name: str | None) -> None:
        """Enforce ``supports_labels`` once engine and query are known."""
        if engine_name is not None and self._labeled_query is not None:
            self._registry.require(engine_name, supports_labels=True)

    # -- execution -----------------------------------------------------
    def _get_partition(self):
        with self._lock:
            if self._partition is None:
                self._partition = self._config.make_partition(self._graph)
            return self._partition

    def cluster(self) -> "Cluster":
        """A fresh-stats cluster over the session's (cached) partition."""
        with self._lock:
            return self._config.make_cluster(
                self._graph, partition=self._get_partition()
            )

    def build_engine(self):
        """The selected engine instance (built once at selection time)."""
        with self._lock:
            if self._engine is None:
                raise RuntimeError(
                    "no engine selected; call .engine(name) first"
                )
            return self._engine

    def run(
        self,
        *,
        collect: "bool | str | None" = None,
        limit: int | None = None,
        trace: bool = False,
        profile: bool = False,
    ) -> "RunResult":
        """Run the selected engine on the selected query.

        ``collect``/``limit`` override the config's result mode for this
        run.  With a limit, collected embeddings are truncated after the
        (deterministic) run — counts and stats are unaffected.  Labeled
        queries run through the engine's ``run_labeled`` (the TurboIso
        matcher layer); there the limit caps enumeration itself, so it
        also caps the reported count.

        ``collect="store"`` (needs :meth:`with_store`) enumerates once
        and persists the embeddings to the attached store; the returned
        result carries counts/stats but ``embeddings=None`` — read them
        back with :meth:`page`, :meth:`lookup` or :meth:`aggregate`.
        Repeat store-mode runs of the same (isomorphic) query are served
        from disk without enumerating, marked by the
        ``service.store_hit`` counter.

        ``trace=True`` records a span tree for this run — a
        ``session.run`` root over the engine's per-round spans, executor
        batches and (socket backend) shard-worker leaf spans — attached
        as ``result.trace`` (:mod:`repro.obs.trace`).  Counts and stats
        are bit-identical either way; a store fast-path hit carries no
        trace (nothing ran), and persisted sets never store one.

        ``profile=True`` additionally measures the run's resource
        profile — CPU time (process and thread), peak memory, GC and
        allocation deltas, a flame table over the span tree and, on the
        socket backend, per-worker ``getrusage`` attribution — attached
        as ``result.profile`` (:mod:`repro.obs.profile`).  The same
        guarantees hold: counts and stats are bit-identical, fast-path
        hits carry no profile, persisted sets never store one.
        """
        with self._lock:
            if self._pattern is None:
                raise RuntimeError(
                    "no query selected; call .query(name) first"
                )
            engine = self.build_engine()
            collect = (
                self._config.collect
                if collect is None
                else normalize_collect(collect)
            )
            limit = self._config.limit if limit is None else limit
            tracer = None
            if trace or profile:
                # Profiled runs trace internally either way: the flame
                # table is an aggregation over the span tree.
                from repro.obs.trace import Tracer

                tracer = Tracer()
            profiler = None
            if profile:
                from repro.obs.profile import Profiler

                profiler = Profiler()

            def _root():
                return (
                    nullcontext()
                    if tracer is None
                    else tracer.root(
                        "session.run",
                        pattern=self._pattern.name,
                        engine=engine.name,
                    )
                )

            def _prof():
                return nullcontext() if profiler is None else profiler

            if self._labeled_query is not None:
                if collect == "store":
                    raise ValueError(
                        "collect='store' serves unlabeled queries only"
                    )
                with _root(), _prof():
                    result = engine.run_labeled(
                        self.cluster(),
                        self._labeled_graph,
                        self._labeled_query,
                        collect_embeddings=collect,
                        limit=limit,
                    )
                if trace and tracer is not None:
                    result.trace = tracer.tree()
                if profiler is not None:
                    result.profile = profiler.result(tree=tracer.tree())
                return result
            key: tuple | None = None
            if collect == "store":
                key = self._store_key()
                served = self._store.result_for(key, self._pattern)
                if served is not None:
                    return served
            try:
                with _root(), _prof():
                    result = engine.run(
                        self.cluster(),
                        self._pattern,
                        collect_embeddings=bool(collect),
                        executor=self._get_executor(),
                    )
            except DistributedError:
                # Total shard-roster loss: drop the dead executor so the
                # next run() re-dials the configured shards (healing once
                # workers come back) instead of failing forever.
                self._invalidate(partition=False, executor=True)
                raise
            if key is not None and not result.failed:
                from repro.service.cache import copy_result

                self._store.put(key, self._pattern, result)
                result = copy_result(result)
                result.embeddings = None
            if trace and tracer is not None:
                # Attached after the store write: persisted sets never
                # carry one run's trace.
                result.trace = tracer.tree()
            if profiler is not None:
                # Same discipline: the profile is this run's, never the
                # persisted set's.
                result.profile = profiler.result(tree=tracer.tree())
        if limit is not None and result.embeddings is not None:
            result.embeddings = result.embeddings[:limit]
        return result

    def explain(self, *, with_estimates: bool = True) -> "QueryExplanation":
        """Explain how the selected engine would run the selected query.

        Returns a serializable
        :class:`~repro.query.explain.QueryExplanation` — decomposition
        units, matching order, symmetry-breaking conditions, runner-up
        plans and (unless ``with_estimates=False``) per-round cost-model
        estimates against the session graph.  Purely analytical: nothing
        is enumerated and no cluster stats are touched.
        """
        with self._lock:
            if self._pattern is None:
                raise RuntimeError(
                    "no query selected; call .query(name) first"
                )
            return self.build_engine().explain(
                self._labeled_query or self._pattern,
                graph=self._graph if with_estimates else None,
            )

    def run_grid(
        self,
        engines: "list[str] | Mapping[str, Any] | None" = None,
        queries: "list[str | Pattern] | None" = None,
        *,
        dataset_name: str = "session",
        check_consistency: bool = True,
        engine_kwargs: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "GridResult":
        """Engine x query sweep over the session cluster configuration.

        ``engines`` is a list of registry names (default: the paper's five),
        or a ready name -> instance mapping; ``queries`` a list of pattern
        names (default: the currently selected query).
        """
        from repro.bench.harness import run_query_grid

        with self._lock:
            if queries is None:
                if self._pattern is None:
                    raise RuntimeError(
                        "no queries given and no query selected"
                    )
                if self._labeled_query is not None:
                    raise ValueError(
                        "labeled queries cannot be gridded (the "
                        "distributed engines are unlabeled); pass "
                        "explicit unlabeled queries= instead"
                    )
                queries = [
                    self._query_name if self._query_name is not None
                    else self._pattern
                ]
            if engines is None or isinstance(engines, (list, tuple)):
                engines = self._registry.create_all(
                    list(engines) if engines is not None else None,
                    graph=self._graph,
                    engine_kwargs=engine_kwargs,
                    **({} if engines is not None else {"paper": True}),
                )
            elif engine_kwargs:
                raise ValueError(
                    "engine_kwargs only configures registry-built "
                    "engines; it cannot apply to a ready engines mapping"
                )
            try:
                return run_query_grid(
                    self._graph,
                    dataset_name,
                    list(queries),
                    engines=dict(engines),
                    config=self._config,
                    check_consistency=check_consistency,
                    executor=self._get_executor(),
                    partition=self._get_partition(),
                    collect=self._config.collect,
                    limit=self._config.limit,
                )
            except DistributedError:
                # See run(): reconnect to the roster on the next call.
                self._invalidate(partition=False, executor=True)
                raise

    # -- stored-set reads ----------------------------------------------
    def _store_key(self) -> tuple:
        """The embedding-store key for the current selection (locked)."""
        from repro.service.cache import cache_key

        if self._store is None:
            raise RuntimeError(
                "no embedding store attached; call .with_store(dir) first"
            )
        if self._pattern is None:
            raise RuntimeError("no query selected; call .query(name) first")
        if self._labeled_query is not None:
            raise ValueError(
                "the embedding store serves unlabeled queries only"
            )
        if self._engine_name is None:
            raise RuntimeError("no engine selected; call .engine(name) first")
        return cache_key(
            self._graph,
            self._pattern,
            self._engine_name,
            self._config,
            collect="store",
        )

    def _no_stored_set(self) -> LookupError:
        return LookupError(
            f"no stored embedding set for {self._pattern.name!r} with "
            f"engine {self._engine_name!r} on this graph; run it with "
            f"collect='store' first"
        )

    def page(self, *, limit: int, offset: int = 0) -> dict[str, Any]:
        """One contiguous page of the stored set's sorted leaf order.

        Serves ``{"embeddings", "total", "offset", "limit"}`` for the
        selected engine/query straight from the attached store's range
        index — no enumeration, no full decompression.  Raises
        ``LookupError`` until a ``run(collect="store")`` has persisted
        the set.
        """
        with self._lock:
            key = self._store_key()
            page = self._store.page(
                key, self._pattern, limit=limit, offset=offset
            )
            if page is None:
                raise self._no_stored_set()
            return page

    def lookup(self, vertex: int) -> dict[str, Any]:
        """Every stored embedding containing data vertex ``vertex``.

        An inverted-postings range scan over the attached store; returns
        ``{"embeddings", "count", "total", "vertex"}``.
        """
        with self._lock:
            key = self._store_key()
            found = self._store.lookup(key, self._pattern, vertex)
            if found is None:
                raise self._no_stored_set()
            return found

    def aggregate(self, group_by: str = "root") -> dict[str, Any]:
        """Group counts over the stored set, without decompressing leaves.

        ``group_by`` is ``"root"`` (per first-query-vertex match),
        ``"vertex"`` (per contained data vertex) or ``"orbit"`` (per
        automorphism orbit of query positions); returns ``{"group_by",
        "total", "groups"}``.
        """
        with self._lock:
            key = self._store_key()
            groups = self._store.aggregate(key, self._pattern, group_by)
            if groups is None:
                raise self._no_stored_set()
            return groups

    # -- serving -------------------------------------------------------
    def serve(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        threads: int = 4,
        cache: Any = None,
        cache_dir: str | None = None,
        store: Any = None,
        store_dir: str | None = None,
        memory_budget_mb: float | None = None,
        log_path: str | None = None,
        tenants: Any = None,
        default_quota: Any = None,
        shard_registry: Any = None,
        slow_log: int = 16,
        events_path: str | None = None,
        start: bool = True,
    ) -> "QueryServer":
        """Expose this session's graph + config as a socket query service.

        Builds a :class:`repro.service.server.QueryServer` over the
        session graph, configuration and registry, and (by default)
        starts it on a background thread — the API-side twin of the
        ``repro serve`` CLI subcommand::

            server = repro.open("road.npz").serve(port=7463)
            client = repro.connect(server.address)

        The server owns its own scheduler/worker pool but shares the
        session's (cached) graph partition; the session stays
        independently usable.  Close the returned server (context manager
        or ``close()``) to stop serving.  Unlabeled queries only.

        ``store``/``store_dir`` enable ``collect="store"`` submissions
        plus the ``page``/``lookup``/``aggregate`` protocol ops; when
        neither is given a store attached with :meth:`with_store` is
        shared with the server.

        ``slow_log`` sizes the server's slow-query ring (the worst N by
        latency, surfaced in ``metrics``); ``events_path`` mirrors every
        event-journal record to a JSONL file (replayable with
        :func:`repro.api.results.read_records_jsonl`).
        """
        from repro.service.server import QueryServer

        with self._lock:
            server = QueryServer(
                self._graph,
                self._config,
                self._registry,
                host=host,
                port=port,
                threads=threads,
                cache=cache,
                cache_dir=cache_dir,
                store=(
                    self._store
                    if store is None and store_dir is None
                    else store
                ),
                store_dir=store_dir,
                memory_budget_mb=memory_budget_mb,
                log_path=log_path,
                partition=self._get_partition(),
                tenants=tenants,
                default_quota=default_quota,
                shard_registry=shard_registry,
                slow_log=slow_log,
                events_path=events_path,
            )
        return server.start() if start else server

    # -- streaming / continuous queries --------------------------------
    def watch(
        self,
        query: "str | Pattern",
        *,
        collect: bool = True,
    ) -> "Watch":
        """Register a continuous query against this session's graph.

        Returns a :class:`~repro.streaming.continuous.Watch`; every
        subsequent :meth:`ingest` batch publishes one
        :class:`~repro.streaming.records.DeltaRecord` (the embeddings
        that appeared and vanished) to it, drained with
        ``watch.poll()``::

            session = repro.open(graph)
            alerts = session.watch("a-b, b-c, c-a")
            session.ingest(additions=[(0, 9)])
            [delta] = alerts.poll()

        Unlabeled queries only.  Deltas are computed inline on the
        ingesting thread (for a quota-governed worker-pool version of
        the same machinery, serve the graph and use
        ``ServiceClient.register``).
        """
        return self._get_streams().register(query, collect=collect)

    def unwatch(self, watch: "Watch | str") -> bool:
        """Remove a watch (idempotent; accepts the Watch or its id)."""
        with self._lock:
            if self._streams is None:
                return False
            watch_id = watch if isinstance(watch, str) else watch.id
            return self._streams.unregister(watch_id)

    def ingest(
        self,
        additions: "Iterable[tuple[int, int]]" = (),
        deletions: "Iterable[tuple[int, int]]" = (),
    ) -> dict[str, Any]:
        """Apply one edge batch to the session graph, advancing its version.

        The batch is validated strictly (no duplicate or missing edges,
        no addition/deletion overlap) and merged into a fresh CSR
        snapshot — through the session's process pool when one is
        configured.  The session then rebinds to the new snapshot:
        ``session.graph`` answers with the new version, the cached
        partition is invalidated, and a selected engine is rebuilt, so
        the next ``run()`` sees the updated graph.  Every live
        :meth:`watch` receives its delta embeddings for the batch.

        Returns the ingest report (new version/fingerprint, batch sizes,
        per-watch delta counts).
        """
        with self._lock:
            streams = self._get_streams()
            return streams.ingest(
                additions, deletions, executor=self._get_executor()
            )

    def _get_streams(self) -> "ContinuousQueryManager":
        with self._lock:
            if self._labeled_graph is not None:
                raise ValueError(
                    "streaming ingest supports unlabeled graphs only"
                )
            if self._streams is None:
                from repro.streaming.continuous import ContinuousQueryManager

                self._streams = ContinuousQueryManager(
                    self._graph, on_rebind=self._on_stream_rebind
                )
            return self._streams

    def _on_stream_rebind(
        self, old: "GraphVersion", new: "GraphVersion"
    ) -> None:
        """Swap the session onto a freshly ingested graph snapshot."""
        with self._lock:
            self._graph = new.graph
            # The partition described the old snapshot; the executor is
            # graph-independent (pure-function workers) and survives.
            self._invalidate(partition=True, executor=False)
            if self._store is not None:
                # Stored sets are keyed by fingerprint; drop the old
                # snapshot's so a later revert can't serve stale pages.
                self._store.evict_graph(old.fingerprint)
            if self._engine_name is not None:
                self._engine = self._registry.create(
                    self._engine_name,
                    graph=self._graph,
                    **self._engine_kwargs,
                )

    # -- lifecycle -----------------------------------------------------
    def _get_executor(self) -> "Executor":
        with self._lock:
            if self._executor is None:
                self._executor = self._config.make_executor()
            return self._executor

    def _invalidate(self, *, partition: bool, executor: bool) -> None:
        with self._lock:
            if partition:
                self._partition = None
            if executor and self._executor is not None:
                self._executor.close()
                self._executor = None

    def close(self) -> None:
        """Release the process pool (idempotent; serial is a no-op)."""
        self._invalidate(partition=False, executor=True)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"graph={self._graph!r}",
            f"machines={self._config.machines}",
        ]
        if self._config.memory_mb is not None:
            parts.append(f"memory_mb={self._config.memory_mb}")
        if self._engine_name:
            parts.append(f"engine={self._engine_name!r}")
        if self._pattern is not None:
            parts.append(f"query={self._pattern.name!r}")
        return f"Session({', '.join(parts)})"
