"""Engine registry: the one place that knows every enumeration approach.

Historically the repo grew three divergent engine listings
(``engines.all_engines()``, ``engines.extended_engines()`` and an ad-hoc
dict in ``cli.py``) plus per-call-site construction hacks (Crystal's
prebuilt clique index, RADS's plan provider).  The registry replaces all
of them: each engine is registered once with a canonical name, aliases,
capability metadata and a factory, and every entry point (CLI, bench
harness, :class:`repro.api.session.Session`) resolves engines here.

Lookups are case-insensitive over canonical names and aliases::

    reg = default_registry()
    reg.resolve("rads").name          # "RADS"
    reg.create("crystal", index=idx)  # CrystalEngine with a prebuilt index
    reg.create_all(paper=True)        # the five engines of the paper's Sec. 7

Third-party engines plug in with the decorator::

    @register_engine("MyEngine", aliases=("mine",), description="...")
    class MyEngine(EnumerationEngine):
        ...
"""

from __future__ import annotations

import difflib
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engines.base import EnumerationEngine
    from repro.graph.graph import Graph

#: A factory builds one engine instance.  It is called with the data
#: ``graph`` as declarative context (may be ``None``) plus any per-engine
#: keyword arguments supplied by the caller.
EngineFactory = Callable[..., "EnumerationEngine"]


def suggest_names(name: str, known: "Iterable[str]") -> list[str]:
    """Close matches for a mistyped ``name`` (case-insensitive difflib)."""
    known = sorted(set(known))
    by_lower = {}
    for candidate in known:
        by_lower.setdefault(candidate.lower(), candidate)
    matches = difflib.get_close_matches(
        str(name).lower(), list(by_lower), n=3, cutoff=0.6
    )
    return [by_lower[match] for match in matches]


def _did_you_mean(suggestions: list[str]) -> str:
    if not suggestions:
        return ""
    return f" did you mean {' or '.join(map(repr, suggestions))}?"


class UnknownEngineError(KeyError):
    """An engine name that no registry entry (or alias) matches."""

    def __init__(self, name: str, registry: "EngineRegistry"):
        self.name = name
        self.choices = registry.describe()
        self.suggestions = suggest_names(name, registry.known_names())
        super().__init__(name)

    def __str__(self) -> str:
        return (
            f"unknown engine {self.name!r};{_did_you_mean(self.suggestions)}"
            f" choose from: {self.choices}"
        )


class CapabilityError(ValueError):
    """A resolved engine lacks a capability the request requires."""

    def __init__(self, spec: "EngineSpec", capability: str,
                 qualified: list[str]):
        self.spec = spec
        self.capability = capability
        self.qualified = qualified
        nice = {
            "supports_labels": "labeled queries",
            "needs_index": "a prebuilt index",
            "distributed": "distributed execution",
        }.get(capability, capability)
        super().__init__(
            f"engine {spec.name!r} does not support {nice} "
            f"({capability}); "
            + (
                f"engines that qualify: {', '.join(qualified)}"
                if qualified
                else "no registered engine qualifies"
            )
        )


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine: identity, capabilities and construction.

    ``paper`` marks the five approaches raced in the paper's Sec. 7;
    ``extension`` the Sec. 8 related-work engines.  ``needs_index``
    advertises that the engine can exploit a prebuilt offline index
    (Crystal's clique index) passed via factory kwargs; ``supports_labels``
    that it can serve the labeled-matching layer; ``distributed`` is False
    for single-machine oracles — those are rejected on the socket backend
    (``RunConfig(backend="socket")``) with a :class:`CapabilityError`
    naming the engines that qualify, enforced at resolution time by
    :class:`repro.api.session.Session` and
    :class:`repro.service.scheduler.QueryScheduler`.
    """

    name: str
    engine_cls: type
    factory: EngineFactory | None = None
    aliases: tuple[str, ...] = ()
    paper: bool = False
    extension: bool = False
    needs_index: bool = False
    supports_labels: bool = False
    distributed: bool = True
    description: str = ""

    def create(
        self, *, graph: "Graph | None" = None, **kwargs: Any
    ) -> "EnumerationEngine":
        """Build an engine instance.

        ``graph`` is passed through to custom factories as declarative
        context (e.g. so Crystal can build its clique index); engines
        registered without a factory are constructed as
        ``engine_cls(**kwargs)``.
        """
        if self.factory is not None:
            return self.factory(graph=graph, **kwargs)
        return self.engine_cls(**kwargs)

    def describe(self) -> str:
        """``Name (aliases: a, b)`` — the error/help listing form."""
        if not self.aliases:
            return self.name
        return f"{self.name} (aliases: {', '.join(self.aliases)})"


class EngineRegistry:
    """Case-insensitive name/alias -> :class:`EngineSpec` mapping.

    Safe for concurrent use: registration and every lookup/iteration
    path hold an internal lock (specs themselves are frozen dataclasses),
    so the query service's worker threads — and any other concurrent
    ``Session`` users — can resolve engines while a plugin registers.
    """

    def __init__(self) -> None:
        self._specs: dict[str, EngineSpec] = {}
        self._lookup: dict[str, str] = {}
        self._lock = threading.RLock()

    # -- registration --------------------------------------------------
    def register(self, spec: EngineSpec) -> EngineSpec:
        """Add ``spec``; canonical name and aliases must be unclaimed."""
        keys = [spec.name.lower(), *(a.lower() for a in spec.aliases)]
        with self._lock:
            for key in keys:
                if key in self._lookup:
                    raise ValueError(
                        f"engine name {key!r} already registered "
                        f"(by {self._lookup[key]!r})"
                    )
            self._specs[spec.name] = spec
            for key in keys:
                self._lookup[key] = spec.name
        return spec

    # -- lookup --------------------------------------------------------
    def resolve(self, name: str) -> EngineSpec:
        """Spec for ``name`` (canonical or alias, any case)."""
        with self._lock:
            canonical = self._lookup.get(str(name).lower())
            if canonical is None:
                raise UnknownEngineError(str(name), self)
            return self._specs[canonical]

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return str(name).lower() in self._lookup

    def __iter__(self) -> Iterator[EngineSpec]:
        # Iterate a snapshot so concurrent registration cannot blow up a
        # caller mid-loop (dict mutation during iteration).
        with self._lock:
            return iter(list(self._specs.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    def names(self) -> list[str]:
        """Canonical names in registration order."""
        with self._lock:
            return list(self._specs)

    def known_names(self) -> list[str]:
        """Every accepted lookup key (canonical names and aliases)."""
        names: list[str] = []
        with self._lock:
            for spec in self._specs.values():
                names.append(spec.name)
                names.extend(spec.aliases)
        return names

    def require(self, name: str, **capabilities: Any) -> EngineSpec:
        """Resolve ``name`` and check it carries every given capability.

        Raises :class:`CapabilityError` naming the engines that qualify —
        e.g. ``registry.require("rads", supports_labels=True)`` explains
        that only label-capable engines can serve labeled queries.
        """
        spec = self.resolve(name)
        for capability, want in capabilities.items():
            if getattr(spec, capability) != want:
                qualified = [
                    s.name for s in self.specs(**{capability: want})
                ]
                raise CapabilityError(spec, capability, qualified)
        return spec

    def specs(self, **capabilities: Any) -> list[EngineSpec]:
        """Specs whose attributes match every ``capabilities`` item.

        ``specs()`` lists everything; ``specs(paper=True)`` the five raced
        engines; ``specs(needs_index=True)`` the index-backed ones.
        """
        return [
            spec
            for spec in self
            if all(
                getattr(spec, key) == want
                for key, want in capabilities.items()
            )
        ]

    def describe(self) -> str:
        """All engines with their aliases, sorted, one comma-joined line."""
        return ", ".join(
            spec.describe() for spec in sorted(self, key=lambda s: s.name)
        )

    # -- construction --------------------------------------------------
    def create(
        self, name: str, *, graph: "Graph | None" = None, **kwargs: Any
    ) -> "EnumerationEngine":
        """Build one engine by name with declarative factory kwargs."""
        return self.resolve(name).create(graph=graph, **kwargs)

    def create_all(
        self,
        names: list[str] | None = None,
        *,
        graph: "Graph | None" = None,
        engine_kwargs: Mapping[str, Mapping[str, Any]] | None = None,
        **capabilities: Any,
    ) -> "dict[str, EnumerationEngine]":
        """Canonical name -> fresh instance for a set of engines.

        ``names`` selects explicitly (aliases fine); otherwise every spec
        matching ``capabilities`` is built (``paper=True`` for the Sec. 7
        grid).  ``engine_kwargs`` holds per-engine factory kwargs keyed by
        canonical name — e.g. ``{"Crystal": {"index": prebuilt}}`` — which
        is how formerly special-cased construction is now configured.
        """
        if names is not None:
            specs = [self.resolve(name) for name in names]
        else:
            specs = self.specs(**capabilities)
        # Keys resolve like engine names (any case, aliases); typos and
        # entries for unselected engines raise instead of silently
        # configuring nothing.
        selected = {spec.name for spec in specs}
        per_engine: dict[str, dict[str, Any]] = {}
        for key, kwargs in (engine_kwargs or {}).items():
            canonical = self.resolve(str(key)).name
            if canonical not in selected:
                raise ValueError(
                    f"engine_kwargs for {canonical!r} but that engine is "
                    f"not selected ({sorted(selected)})"
                )
            per_engine.setdefault(canonical, {}).update(dict(kwargs))
        return {
            spec.name: spec.create(
                graph=graph, **per_engine.get(spec.name, {})
            )
            for spec in specs
        }


# ----------------------------------------------------------------------
# The default registry and the plug-in decorator
# ----------------------------------------------------------------------
_default_registry: EngineRegistry | None = None
_default_registry_lock = threading.Lock()


def register_engine(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    paper: bool = False,
    extension: bool = False,
    needs_index: bool = False,
    supports_labels: bool = False,
    distributed: bool = True,
    description: str = "",
    engine_cls: type | None = None,
    registry: EngineRegistry | None = None,
):
    """Class/factory decorator registering an engine (default registry).

    Decorate an :class:`EnumerationEngine` subclass directly, or a factory
    function (then pass ``engine_cls`` so introspection and the
    ``all_engines``-style shims still see the class)::

        @register_engine("Crystal", needs_index=True, engine_cls=CrystalEngine)
        def _make_crystal(*, graph=None, index=None, ...):
            ...
    """

    def decorate(target):
        cls = engine_cls
        factory: EngineFactory | None
        if isinstance(target, type):
            cls, factory = target, None
        else:
            factory = target
            if cls is None:
                raise TypeError(
                    "register_engine on a factory function requires "
                    "engine_cls=..."
                )
        # NB: not `registry or ...` — an empty registry is len() == 0, falsy.
        target_registry = (
            registry if registry is not None else default_registry()
        )
        target_registry.register(
            EngineSpec(
                name=name,
                engine_cls=cls,
                factory=factory,
                aliases=tuple(aliases),
                paper=paper,
                extension=extension,
                needs_index=needs_index,
                supports_labels=supports_labels,
                distributed=distributed,
                description=description,
            )
        )
        return target

    return decorate


def _register_builtins(reg: EngineRegistry) -> None:
    """Populate ``reg`` with the repo's engines (paper + extensions).

    Imports happen here, not at module top, to keep the import graph
    acyclic (``repro.core`` imports ``repro.engines.base`` and vice versa).
    Registration order matches the historic ``all_engines`` /
    ``extended_engines`` dict order so tables keep their row order.
    """
    from repro.core.rads import RADSEngine
    from repro.engines.bigjoin import BigJoinEngine
    from repro.engines.crystal import CliqueIndex, CrystalEngine
    from repro.engines.multiway import MultiwayJoinEngine
    from repro.engines.psgl import PSgLEngine
    from repro.engines.replication import ReplicationEngine
    from repro.engines.seed import SEEDEngine
    from repro.engines.single import SingleMachineEngine
    from repro.engines.twintwig import TwinTwigEngine

    reg.register(EngineSpec(
        name="RADS",
        engine_cls=RADSEngine,
        aliases=("r-meef", "rmeef"),
        paper=True,
        description="Robust asynchronous distributed subgraph enumeration "
                    "(the paper's system; plan_provider/grouping kwargs).",
    ))
    reg.register(EngineSpec(
        name="PSgL",
        engine_cls=PSgLEngine,
        aliases=("pregel",),
        paper=True,
        description="Pregel-style vertex-expansion baseline (Shao et al.).",
    ))
    reg.register(EngineSpec(
        name="TwinTwig",
        engine_cls=TwinTwigEngine,
        aliases=("tt",),
        paper=True,
        description="Left-deep twin-twig join baseline (Lai et al.).",
    ))
    reg.register(EngineSpec(
        name="SEED",
        engine_cls=SEEDEngine,
        paper=True,
        description="Bushy join over stars and cliques (Lai et al.).",
    ))

    def _make_crystal(
        *,
        graph: "Graph | None" = None,
        index: "CliqueIndex | bool | None" = None,
        max_size: int = 4,
        **kwargs: Any,
    ) -> CrystalEngine:
        """Crystal with a declaratively configured clique index.

        ``index`` may be a prebuilt :class:`CliqueIndex`, ``True`` (build
        one from ``graph`` now, amortising it across this instance's runs)
        or ``None`` (the engine indexes lazily at run time, matching a bare
        ``CrystalEngine()``).
        """
        if index is True:
            if graph is None:
                raise ValueError(
                    "Crystal index=True needs a graph to index"
                )
            index = CliqueIndex(graph, max_size=max_size)
        return CrystalEngine(index=index or None, **kwargs)

    reg.register(EngineSpec(
        name="Crystal",
        engine_cls=CrystalEngine,
        factory=_make_crystal,
        aliases=("crystaljoin",),
        paper=True,
        needs_index=True,
        description="Core/crystal decomposition over a precomputed clique "
                    "index (Qiao et al.).",
    ))
    reg.register(EngineSpec(
        name="BigJoin",
        engine_cls=BigJoinEngine,
        aliases=("wcoj",),
        extension=True,
        description="Worst-case-optimal one-vertex-at-a-time join "
                    "(Ammar et al.).",
    ))
    reg.register(EngineSpec(
        name="Multiway",
        engine_cls=MultiwayJoinEngine,
        aliases=("shares", "afrati-ullman"),
        extension=True,
        description="Single-round hypercube shares join (Afrati-Ullman).",
    ))
    reg.register(EngineSpec(
        name="Replication",
        engine_cls=ReplicationEngine,
        aliases=("d-hop", "dhop"),
        extension=True,
        description="d-hop neighbourhood replication (Fan et al.).",
    ))
    reg.register(EngineSpec(
        name="Single",
        engine_cls=SingleMachineEngine,
        aliases=("oracle", "local"),
        distributed=False,
        supports_labels=True,
        description="Single-machine backtracking oracle (ground truth).",
    ))


def default_registry() -> EngineRegistry:
    """The process-wide registry, populated with built-ins on first use.

    First use may happen on any thread (e.g. a query-service worker), so
    creation is guarded: exactly one caller populates the built-ins and
    everyone else sees the finished registry.
    """
    global _default_registry
    if _default_registry is None:
        with _default_registry_lock:
            if _default_registry is None:
                reg = EngineRegistry()
                _register_builtins(reg)
                _default_registry = reg
    return _default_registry
