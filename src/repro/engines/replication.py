"""Replication-based parallelization baseline (Fan et al., SIGMOD 2017/18).

Covers the remaining approach from the paper's Sec. 8 related work: the
systems of [6] and [5] parallelize *serial* graph algorithms by giving
each machine enough of the data graph to work alone.  Before enumeration,
machine ``M_t`` copies from its peers every node and edge within distance
``d`` of its border vertices, where ``d`` is the query diameter; it then
runs a stock serial algorithm (VF2 here, as the paper suggests) over its
expanded fragment, with no further communication.

The paper's criticism is structural and reproduced faithfully: when the
query diameter is large or the data graph has a small diameter (social
networks), the d-hop ball around the border covers most of the neighbour
partitions, so the replication volume — charged to both the network and
the machines' memory — explodes.

Duplicate suppression: an embedding is counted by the machine owning the
data vertex matched to the *first* query vertex of the matching order.
With the d-hop ball replicated, every such embedding is fully visible on
that machine (any embedding vertex lies within ``span <= d`` of the start
vertex, along a path that crosses the border at a border vertex).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.runtime.executor import Executor
from repro.enumeration.backtracking import EnumerationStats
from repro.enumeration.vf2 import VF2Enumerator
from repro.query.pattern import Pattern

#: Result-buffer allocation granularity.
ALLOC_CHUNK = 4096


class ReplicationEngine(EnumerationEngine):
    """d-hop border replication + per-machine serial VF2."""

    name = "Replication"

    def __init__(self, hop_override: int | None = None):
        #: Replication radius override (defaults to the query diameter,
        #: which is what correctness requires; exposed for ablations).
        self._hop_override = hop_override
        self.last_replicated_vertices: int = 0
        self.last_replicated_bytes: int = 0

    # ------------------------------------------------------------------
    def _replicate(
        self, cluster: Cluster, machine_id: int, hops: int
    ) -> set[int]:
        """Fetch the d-hop ball around ``machine_id``'s border vertices.

        Returns the set of replicated foreign vertices.  The BFS runs over
        the *global* graph: each newly discovered foreign vertex's
        adjacency must be fetched before the frontier can grow through it,
        which is exactly the round-by-round neighbour expansion the
        original systems perform.
        """
        partition = cluster.partition
        local = partition.machine(machine_id)
        machine = cluster.machine(machine_id)
        graph = cluster.graph
        model = cluster.cost_model

        replicated: set[int] = set()
        dist: dict[int, int] = {}
        frontier: deque[int] = deque()
        for b in local.border_vertices:
            dist[int(b)] = 0
            frontier.append(int(b))
        ops = 0
        while frontier:
            v = frontier.popleft()
            dv = dist[v]
            if dv == hops:
                continue
            for w in graph.neighbors(v):
                w = int(w)
                ops += 1
                if w in dist:
                    continue
                dist[w] = dv + 1
                frontier.append(w)
                if not local.is_owned(w):
                    replicated.add(w)
        machine.charge_ops(ops, "replicate_bfs_ops")

        # Group fetches by owner: one bulk request per peer machine.
        by_owner: dict[int, list[int]] = {}
        for w in replicated:
            by_owner.setdefault(partition.owner_of(w), []).append(w)
        nbytes = 0
        for owner, vertices in sorted(by_owner.items()):
            response = sum(
                model.adjacency_bytes(graph.degree(w)) for w in vertices
            )
            cluster.network.rpc(
                requester=machine,
                responder=cluster.machine(owner),
                request_bytes=len(vertices) * model.bytes_per_vertex_id,
                response_bytes=response,
                service_ops=float(len(vertices)),
            )
            nbytes += response
        # The expanded fragment stays resident for the whole enumeration —
        # the memory burden the paper attributes to these systems.
        machine.allocate(nbytes, "replicated_bytes")
        self.last_replicated_vertices += len(replicated)
        self.last_replicated_bytes += nbytes
        return replicated

    # ------------------------------------------------------------------
    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        hops = (
            self._hop_override
            if self._hop_override is not None
            else pattern.diameter()
        )
        self.last_replicated_vertices = 0
        self.last_replicated_bytes = 0
        model = cluster.cost_model
        emb_bytes = model.embedding_bytes(pattern.num_vertices)
        results: list[tuple[int, ...]] = []
        count = 0
        empty = np.empty(0, dtype=np.int64)

        for t in range(cluster.num_machines):
            local = cluster.partition.machine(t)
            machine = cluster.machine(t)
            replicated = self._replicate(cluster, t, hops)
            visible = replicated  # owned vertices are always visible

            def adjacency(v: int) -> np.ndarray:
                if local.is_owned(v) or v in visible:
                    return cluster.graph.neighbors(v)
                return empty

            stats = EnumerationStats()
            enumerator = VF2Enumerator(
                pattern=pattern,
                adjacency=adjacency,
                constraints=constraints,
                allowed=lambda v: local.is_owned(v) or v in visible,
                stats=stats,
            )
            found = 0
            allocated = 0
            start_owned = (int(v) for v in local.owned_vertices)
            for embedding in enumerator.run(start_owned):
                found += 1
                if collect:
                    results.append(embedding)
                if found - allocated >= ALLOC_CHUNK:
                    machine.allocate(ALLOC_CHUNK * emb_bytes, "result_bytes")
                    allocated += ALLOC_CHUNK
            machine.allocate(
                max(0, found - allocated) * emb_bytes, "result_bytes"
            )
            machine.charge_ops(stats.total_ops, "vf2_ops")
            count += found
        self._count = count
        return results
