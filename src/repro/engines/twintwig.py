"""TwinTwig baseline (Lai et al., PVLDB 2015).

Decomposes the query into *TwinTwigs* — stars of at most two edges — and
evaluates them as a sequence of MapReduce left-deep joins.  Star instances
are cheap to produce locally (the centre's adjacency list suffices) but the
joined intermediate results explode on dense graphs, which is exactly the
failure mode the paper reports.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.engines.join_common import DistributedJoinRunner, JoinUnit
from repro.runtime.executor import Executor
from repro.query.pattern import Pattern


def twintwig_decomposition(pattern: Pattern) -> list[JoinUnit]:
    """Partition the pattern edges into connected stars of <= 2 edges.

    Greedy: among vertices already joined (after the first unit), pick the
    pivot with most uncovered incident edges; take up to two of them,
    preferring leaves that connect back to the covered part.
    """
    remaining: set[tuple[int, int]] = set(pattern.edges())
    units: list[JoinUnit] = []
    covered: set[int] = set()

    def uncovered_incident(v: int) -> list[tuple[int, int]]:
        return [
            e for e in remaining if v in e
        ]

    while remaining:
        if covered:
            candidates = [v for v in sorted(covered) if uncovered_incident(v)]
        else:
            candidates = sorted(pattern.vertices())
        if not candidates:
            # Disconnected leftover cannot happen for connected patterns,
            # but fall back to any endpoint just in case.
            candidates = sorted({v for e in remaining for v in e})
        pivot = max(candidates, key=lambda v: (len(uncovered_incident(v)), -v))
        incident = uncovered_incident(pivot)
        # Prefer closing edges into the covered region first.
        incident.sort(
            key=lambda e: (
                0 if (e[0] if e[1] == pivot else e[1]) in covered else 1,
                e,
            )
        )
        take = incident[:2]
        leaves = tuple(
            (a if b == pivot else b) for a, b in take
        )
        units.append(
            JoinUnit(
                vertices=(pivot, *leaves),
                covered_edges=tuple(take),
                kind="star",
            )
        )
        remaining -= set(take)
        covered |= {pivot, *leaves}
    assert not remaining
    return units


def cost_oriented_decomposition(
    pattern: Pattern, avg_degree: float
) -> list[JoinUnit]:
    """Cost-oriented TwinTwig decomposition (Lai et al., VLDB J. 2017).

    Same <=2-edge star units, but unit order and pivot choice minimise the
    estimated intermediate-result volume under an average-degree model:
    a k-leaf star from one vertex costs ~``avg_degree**k`` instances, so
    the search greedily prefers pivots whose star closes the most pattern
    edges against the already-joined part (each closed edge contributes an
    edge-selectivity filter instead of an expansion).
    """
    remaining: set[tuple[int, int]] = set(pattern.edges())
    units: list[JoinUnit] = []
    covered: set[int] = set()

    def star_cost(pivot: int, take: list[tuple[int, int]]) -> float:
        leaves = [(a if b == pivot else b) for a, b in take]
        expansion = float(avg_degree) ** sum(
            1 for leaf in leaves if leaf not in covered
        )
        closing = sum(1 for leaf in leaves if leaf in covered)
        return expansion / (1.0 + closing)

    while remaining:
        candidates = (
            sorted(covered) if covered else sorted(pattern.vertices())
        )
        best: tuple[float, int, list[tuple[int, int]]] | None = None
        for pivot in candidates:
            incident = sorted(e for e in remaining if pivot in e)
            if not incident:
                continue
            # Try 1- and 2-edge stars, preferring covered leaves first.
            incident.sort(
                key=lambda e: (e[0] if e[1] == pivot else e[1]) not in covered
            )
            for take in (incident[:1], incident[:2]):
                cost = star_cost(pivot, take)
                if best is None or cost < best[0]:
                    best = (cost, pivot, list(take))
        if best is None:
            # Disconnected leftovers cannot occur for connected patterns.
            pivot = next(iter(remaining))[0]
            best = (0.0, pivot, [e for e in remaining if pivot in e][:2])
        _, pivot, take = best
        leaves = tuple((a if b == pivot else b) for a, b in take)
        units.append(
            JoinUnit(
                vertices=(pivot, *leaves),
                covered_edges=tuple(sorted(take)),
                kind="star",
            )
        )
        remaining -= set(take)
        covered |= {pivot, *leaves}
    return units


class TwinTwigEngine(EnumerationEngine):
    """MapReduce joins over <=2-edge star decomposition units.

    With ``cost_oriented=True`` the decomposition follows the journal
    version's cost model instead of the simple greedy.
    """

    name = "TwinTwig"
    explain_note = (
        "left-deep MapReduce join over <=2-edge star units (the plan "
        "above is the paper's decomposition view; see extras for the "
        "twin-twig units actually joined)"
    )

    def __init__(self, cost_oriented: bool = False):
        self._cost_oriented = cost_oriented

    def _explain_extras(self, pattern: Pattern) -> dict:
        units = twintwig_decomposition(pattern)
        return {
            "join_units": [
                {"kind": u.kind, "vertices": list(u.vertices)}
                for u in units
            ],
            "cost_oriented": self._cost_oriented,
        }

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        if self._cost_oriented:
            units = cost_oriented_decomposition(
                pattern, cluster.graph.average_degree()
            )
        else:
            units = twintwig_decomposition(pattern)
        runner = DistributedJoinRunner(cluster, pattern, constraints, executor)
        results, count = runner.run_units(units, collect)
        self._count = count
        return results
