"""Single-machine reference engine (ground truth for all distributed runs).

Runs the generic backtracking enumerator over the whole data graph on
machine 0 — the oracle every distributed engine must agree with.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.runtime.executor import Executor
from repro.enumeration.backtracking import (
    BacktrackingEnumerator,
    EnumerationStats,
)
from repro.query.pattern import Pattern


class SingleMachineEngine(EnumerationEngine):
    """TurboIso-style sequential enumeration of the full graph."""

    name = "Single"

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        graph = cluster.graph
        stats = EnumerationStats()
        enumerator = BacktrackingEnumerator(
            pattern=pattern,
            adjacency=graph.neighbors,
            constraints=constraints,
            stats=stats,
        )
        start = enumerator.order[0]
        min_degree = pattern.degree(start)
        candidates = [
            v for v in graph.vertices() if graph.degree(v) >= min_degree
        ]
        embeddings = []
        count = 0
        for emb in enumerator.run(candidates):
            count += 1
            if collect:
                embeddings.append(emb)
        machine = cluster.machine(0)
        machine.charge_ops(stats.total_ops, "enum_ops")
        machine.allocate(
            count * cluster.cost_model.embedding_bytes(pattern.num_vertices),
            "result_bytes",
        )
        self._count = count
        return embeddings
