"""Single-machine reference engine (ground truth for all distributed runs).

Runs the generic backtracking enumerator over the whole data graph on
machine 0 — the oracle every distributed engine must agree with.  It is
also the one built-in engine registered with ``supports_labels=True``:
:meth:`SingleMachineEngine.run_labeled` serves labeled queries through
the TurboIso-style matcher in :mod:`repro.enumeration.labeled`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine, RunResult
from repro.runtime.executor import Executor
from repro.enumeration.backtracking import (
    BacktrackingEnumerator,
    EnumerationStats,
)
from repro.query.pattern import Pattern

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.enumeration.labeled import LabeledPattern
    from repro.graph.labeled import LabeledGraph


class SingleMachineEngine(EnumerationEngine):
    """TurboIso-style sequential enumeration of the full graph."""

    name = "Single"
    explain_note = (
        "single-machine oracle: sequential backtracking over the whole "
        "graph on machine 0, following the matching order above (labeled "
        "queries add TurboIso label/degree/NLF candidate filters)"
    )

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        graph = cluster.graph
        stats = EnumerationStats()
        enumerator = BacktrackingEnumerator(
            pattern=pattern,
            adjacency=graph.neighbors,
            constraints=constraints,
            stats=stats,
        )
        start = enumerator.order[0]
        min_degree = pattern.degree(start)
        candidates = [
            v for v in graph.vertices() if graph.degree(v) >= min_degree
        ]
        embeddings = []
        count = 0
        for emb in enumerator.run(candidates):
            count += 1
            if collect:
                embeddings.append(emb)
        machine = cluster.machine(0)
        machine.charge_ops(stats.total_ops, "enum_ops")
        machine.allocate(
            count * cluster.cost_model.embedding_bytes(pattern.num_vertices),
            "result_bytes",
        )
        self._count = count
        return embeddings

    # ------------------------------------------------------------------
    def run_labeled(
        self,
        cluster: Cluster,
        data: "LabeledGraph",
        query: "LabeledPattern",
        collect_embeddings: bool = True,
        limit: int | None = None,
    ) -> RunResult:
        """Labeled enumeration on machine 0 (TurboIso candidate filters).

        Counts match :func:`repro.enumeration.labeled.labeled_embeddings`
        exactly; stats (ops, result bytes) are charged to machine 0 the
        same way the unlabeled oracle charges them, and simulated OOM is
        reported as a failed RunResult (the same contract as
        :meth:`~repro.engines.base.EnumerationEngine.run`).  ``limit``
        truncates enumeration itself (not just the collected list), so it
        also caps the reported count.
        """
        from repro.cluster.machine import SimulatedMemoryError
        from repro.engines.base import _cluster_counters
        from repro.enumeration.labeled import LabeledEnumerator

        stats = EnumerationStats()
        enumerator = LabeledEnumerator(data=data, query=query, stats=stats)
        embeddings: list[tuple[int, ...]] = []
        count = 0
        try:
            for emb in enumerator.run(limit=limit):
                count += 1
                if collect_embeddings:
                    embeddings.append(emb)
            machine = cluster.machine(0)
            machine.charge_ops(stats.total_ops, "enum_ops")
            machine.allocate(
                count * cluster.cost_model.embedding_bytes(
                    query.pattern.num_vertices
                ),
                "result_bytes",
            )
        except SimulatedMemoryError as exc:
            return RunResult(
                engine=self.name,
                pattern_name=query.pattern.name,
                embedding_count=0,
                makespan=cluster.makespan(),
                total_comm_bytes=cluster.total_comm_bytes(),
                peak_memory=cluster.peak_memory(),
                per_machine_time=[m.finish_time for m in cluster.machines],
                failed=True,
                failure=str(exc),
                counters=_cluster_counters(cluster),
            )
        return RunResult(
            engine=self.name,
            pattern_name=query.pattern.name,
            embedding_count=count,
            makespan=cluster.makespan(),
            total_comm_bytes=cluster.total_comm_bytes(),
            peak_memory=cluster.peak_memory(),
            per_machine_time=[m.finish_time for m in cluster.machines],
            embeddings=embeddings if collect_embeddings else None,
            counters={
                "enum_ops": int(stats.total_ops),
                "candidates_scanned": int(stats.candidates_scanned),
                "recursive_calls": int(stats.recursive_calls),
            },
        )
