"""PSgL baseline (Shao et al., SIGMOD 2014) — Pregel-style exploration.

The query vertices are matched one per superstep.  Every partial match is
*shuffled* to the machine owning the candidate data vertex, where the
backward edges are verified against that vertex's local adjacency; surviving
partials are routed onward to the machine owning the next expansion anchor.
Faithful to the paper's characterisation (Sec. 8): no joins, but partial
matches are shuffled at every step, results are stored uncompressed, and
there is no memory control.

Each superstep's expansion and verification loops are independent
per-machine units of work submitted through the execution backend; the
shuffles between them stay on the coordinating thread.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.enumeration.backtracking import compute_matching_order
from repro.query.pattern import Pattern
from repro.query.symmetry import constraint_map
from repro.runtime.executor import Executor


def _seed_task(cluster: Cluster, args: tuple) -> tuple:
    """Superstep-0 seeding at one owner machine (independent task).

    Each seed routes to the owner of its own vertex — which is exactly
    where it is generated — so seeding is per-machine independent and
    runs on the active execution backend like the later supersteps.
    """
    t, start_degree = args
    local = cluster.partition.machine(t)
    machine = cluster.machine(t)
    seeds = [
        (int(v),)
        for v in local.owned_vertices
        if local.degree(int(v)) >= start_degree
    ]
    machine.charge_ops(len(local.owned_vertices), "seed_ops")
    machine.allocate(len(seeds) * 8, "partials_bytes")
    return t, seeds


def _expand_task(cluster: Cluster, args: tuple) -> tuple:
    """Superstep expansion at one anchor owner (independent task)."""
    t, partials_t, q, anchor = args
    graph = cluster.graph
    partition = cluster.partition
    model = cluster.cost_model
    machine = cluster.machine(t)
    tuple_bytes = model.embedding_bytes(q + 1)
    msgs: dict[int, list[tuple[tuple[int, ...], int]]] = defaultdict(list)
    row = np.zeros(cluster.num_machines, dtype=np.int64)
    ops = 0
    for partial in partials_t:
        anchor_value = partial[anchor]
        for v in graph.neighbors(anchor_value):
            v = int(v)
            ops += 1
            if v in partial:
                continue
            # No further pruning at the source: PSgL ships the raw
            # candidate expansion and verifies at the owner of the
            # candidate vertex (this lack of compression or early
            # filtering is exactly what the paper blames for PSgL's
            # traffic, Exp-2).
            dst = partition.owner_of(v)
            msgs[dst].append((partial, v))
            row[dst] += tuple_bytes
    machine.charge_ops(ops, "expand_ops")
    machine.free(len(partials_t) * model.embedding_bytes(q))
    return t, dict(msgs), row


def _verify_task(cluster: Cluster, args: tuple) -> tuple:
    """Superstep verification at one candidate owner (independent task)."""
    (
        t, msgs_t, q, n, min_degree, check_backs,
        lower_positions, upper_positions, anchor_next,
    ) = args
    graph = cluster.graph
    partition = cluster.partition
    model = cluster.cost_model
    machine = cluster.machine(t)
    tuple_bytes = model.embedding_bytes(q + 1)
    nxt: dict[int, list[tuple[int, ...]]] = defaultdict(list)
    row = np.zeros(cluster.num_machines, dtype=np.int64)
    ops = 0
    for partial, v in msgs_t:
        ops += 1
        adjacency = graph.neighbors(v)
        if len(adjacency) < min_degree:
            continue
        if any(partial[p] >= v for p in lower_positions):
            continue
        if any(partial[p] <= v for p in upper_positions):
            continue
        ok = True
        for back in check_backs:
            w = partial[back]
            idx = int(np.searchsorted(adjacency, w))
            ops += 1
            if idx >= len(adjacency) or int(adjacency[idx]) != w:
                ok = False
                break
        if not ok:
            continue
        extended = partial + (v,)
        if q + 1 < n:
            dst = partition.owner_of(extended[anchor_next])
            nxt[dst].append(extended)
            if dst != t:
                row[dst] += tuple_bytes
        else:
            nxt[t].append(extended)
    machine.charge_ops(ops, "verify_ops")
    machine.free(len(msgs_t) * tuple_bytes)
    return t, dict(nxt), row


class PSgLEngine(EnumerationEngine):
    """Parallel subgraph listing via per-superstep partial-match shuffling."""

    name = "PSgL"
    explain_note = (
        "Pregel-style: one superstep per query vertex in the expansion "
        "order (extras), shuffling partial matches to each candidate's "
        "owner machine"
    )

    def _explain_extras(self, pattern: Pattern) -> dict:
        return {"expansion_order": list(compute_matching_order(pattern))}

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        num_machines = cluster.num_machines
        order = compute_matching_order(pattern)
        position = {u: q for q, u in enumerate(order)}
        smaller, greater = constraint_map(constraints, pattern.num_vertices)
        n = pattern.num_vertices

        # Expansion anchor per position: the most recently matched pattern
        # neighbour (so the second routing hop is usually free).
        anchors = [0] * n
        backward: list[list[int]] = [[] for _ in range(n)]
        for q in range(1, n):
            u = order[q]
            backs = [position[w] for w in pattern.adj(u) if position[w] < q]
            backward[q] = sorted(backs)
            anchors[q] = max(backs)

        # Superstep 0: seed partials at the owners of candidate vertices —
        # one independent routing task per owner machine (the expansion of
        # position 1 happens at the anchor owner, which for seeds is the
        # seed vertex itself, so no bytes hit the wire here).
        start_degree = pattern.degree(order[0])
        partials: dict[int, list[tuple[int, ...]]] = defaultdict(list)
        for t, seeds in executor.run_tasks(
            cluster,
            _seed_task,
            [(t, start_degree) for t in range(num_machines)],
        ):
            partials[t] = seeds

        model = cluster.cost_model
        for q in range(1, n):
            tuple_bytes = model.embedding_bytes(q + 1)
            candidate_msgs: dict[int, list[tuple[tuple[int, ...], int]]] = (
                defaultdict(list)
            )
            shuffle_bytes = np.zeros((num_machines, num_machines), dtype=np.int64)
            # Expansion at the anchor owners.
            for t, msgs, row in executor.run_tasks(
                cluster,
                _expand_task,
                [
                    (t, partials[t], q, anchors[q])
                    for t in range(num_machines)
                ],
            ):
                for dst, items in msgs.items():
                    candidate_msgs[dst].extend(items)
                shuffle_bytes[t, :] = row
            # Receivers must hold the incoming candidate volume in memory
            # before verification (this is PSgL's memory Achilles heel).
            for t in range(num_machines):
                cluster.machine(t).allocate(
                    len(candidate_msgs[t]) * tuple_bytes, "partials_bytes"
                )
            cluster.network.shuffle(cluster.machines, shuffle_bytes)
            # Verification at the candidate owners, then routing onward.
            u = order[q]
            verify_args = [
                (
                    t, candidate_msgs[t], q, n, pattern.degree(u),
                    [b for b in backward[q] if b != anchors[q]],
                    [position[w] for w in greater[u] if position[w] < q],
                    [position[w] for w in smaller[u] if position[w] < q],
                    anchors[q + 1] if q + 1 < n else None,
                )
                for t in range(num_machines)
            ]
            next_partials: dict[int, list[tuple[int, ...]]] = defaultdict(list)
            forward_bytes = np.zeros((num_machines, num_machines), dtype=np.int64)
            for t, nxt, row in executor.run_tasks(
                cluster, _verify_task, verify_args
            ):
                for dst, items in nxt.items():
                    next_partials[dst].extend(items)
                forward_bytes[t, :] = row
            for t in range(num_machines):
                cluster.machine(t).allocate(
                    len(next_partials[t]) * model.embedding_bytes(q + 1),
                    "partials_bytes",
                )
            cluster.network.shuffle(cluster.machines, forward_bytes)
            partials = next_partials

        results: list[tuple[int, ...]] = []
        count = 0
        inverse = [0] * n
        for q, u in enumerate(order):
            inverse[u] = q
        for t in range(num_machines):
            count += len(partials[t])
            if collect:
                for partial in partials[t]:
                    results.append(tuple(partial[inverse[u]] for u in range(n)))
        self._count = count
        return results
