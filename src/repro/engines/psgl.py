"""PSgL baseline (Shao et al., SIGMOD 2014) — Pregel-style exploration.

The query vertices are matched one per superstep.  Every partial match is
*shuffled* to the machine owning the candidate data vertex, where the
backward edges are verified against that vertex's local adjacency; surviving
partials are routed onward to the machine owning the next expansion anchor.
Faithful to the paper's characterisation (Sec. 8): no joins, but partial
matches are shuffled at every step, results are stored uncompressed, and
there is no memory control.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.enumeration.backtracking import compute_matching_order
from repro.query.pattern import Pattern
from repro.query.symmetry import constraint_map


class PSgLEngine(EnumerationEngine):
    """Parallel subgraph listing via per-superstep partial-match shuffling."""

    name = "PSgL"

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
    ) -> list[tuple[int, ...]]:
        graph = cluster.graph
        partition = cluster.partition
        model = cluster.cost_model
        num_machines = cluster.num_machines
        order = compute_matching_order(pattern)
        position = {u: q for q, u in enumerate(order)}
        smaller, greater = constraint_map(constraints, pattern.num_vertices)
        n = pattern.num_vertices

        # Expansion anchor per position: the most recently matched pattern
        # neighbour (so the second routing hop is usually free).
        anchors = [0] * n
        backward: list[list[int]] = [[] for _ in range(n)]
        for q in range(1, n):
            u = order[q]
            backs = [position[w] for w in pattern.adj(u) if position[w] < q]
            backward[q] = sorted(backs)
            anchors[q] = max(backs)

        def bounds_ok(q: int, v: int, partial: tuple[int, ...]) -> bool:
            u = order[q]
            for w in greater[u]:
                pw = position[w]
                if pw < q and partial[pw] >= v:
                    return False
            for w in smaller[u]:
                pw = position[w]
                if pw < q and partial[pw] <= v:
                    return False
            return True

        # Superstep 0: seed partials at the owners of candidate vertices.
        start_degree = pattern.degree(order[0])
        partials: dict[int, list[tuple[int, ...]]] = defaultdict(list)
        for t in range(num_machines):
            local = partition.machine(t)
            machine = cluster.machine(t)
            seeds = [
                (int(v),)
                for v in local.owned_vertices
                if local.degree(int(v)) >= start_degree
            ]
            machine.charge_ops(len(local.owned_vertices), "seed_ops")
            machine.allocate(len(seeds) * 8, "partials_bytes")
            # Route each seed to the owner of its own vertex = already here;
            # but the *expansion* of position 1 happens at the anchor owner,
            # which for seeds is the seed vertex itself.
            partials[t] = seeds

        for q in range(1, n):
            tuple_bytes = model.embedding_bytes(q + 1)
            candidate_msgs: dict[int, list[tuple[tuple[int, ...], int]]] = (
                defaultdict(list)
            )
            shuffle_bytes = np.zeros((num_machines, num_machines), dtype=np.int64)
            # Expansion at the anchor owner.
            for t in range(num_machines):
                machine = cluster.machine(t)
                ops = 0
                for partial in partials[t]:
                    anchor_value = partial[anchors[q]]
                    for v in graph.neighbors(anchor_value):
                        v = int(v)
                        ops += 1
                        if v in partial:
                            continue
                        # No further pruning at the source: PSgL ships the
                        # raw candidate expansion and verifies at the owner
                        # of the candidate vertex (this lack of compression
                        # or early filtering is exactly what the paper
                        # blames for PSgL's traffic, Exp-2).
                        dst = partition.owner_of(v)
                        candidate_msgs[dst].append((partial, v))
                        shuffle_bytes[t, dst] += tuple_bytes
                machine.charge_ops(ops, "expand_ops")
                machine.free(len(partials[t]) * model.embedding_bytes(q))
            # Receivers must hold the incoming candidate volume in memory
            # before verification (this is PSgL's memory Achilles heel).
            for t in range(num_machines):
                cluster.machine(t).allocate(
                    len(candidate_msgs[t]) * tuple_bytes, "partials_bytes"
                )
            cluster.network.shuffle(cluster.machines, shuffle_bytes)
            # Verification at the candidate owner, then routing onward.
            next_partials: dict[int, list[tuple[int, ...]]] = defaultdict(list)
            forward_bytes = np.zeros((num_machines, num_machines), dtype=np.int64)
            for t in range(num_machines):
                machine = cluster.machine(t)
                ops = 0
                survivors = 0
                for partial, v in candidate_msgs[t]:
                    ops += 1
                    adjacency = graph.neighbors(v)
                    if len(adjacency) < pattern.degree(order[q]):
                        continue
                    if not bounds_ok(q, v, partial):
                        continue
                    ok = True
                    for back in backward[q]:
                        if back == anchors[q]:
                            continue
                        w = partial[back]
                        idx = int(np.searchsorted(adjacency, w))
                        ops += 1
                        if idx >= len(adjacency) or int(adjacency[idx]) != w:
                            ok = False
                            break
                    if not ok:
                        continue
                    extended = partial + (v,)
                    survivors += 1
                    if q + 1 < n:
                        dst = partition.owner_of(extended[anchors[q + 1]])
                        next_partials[dst].append(extended)
                        if dst != t:
                            forward_bytes[t, dst] += model.embedding_bytes(q + 1)
                    else:
                        next_partials[t].append(extended)
                machine.charge_ops(ops, "verify_ops")
                machine.free(len(candidate_msgs[t]) * tuple_bytes)
            for t in range(num_machines):
                cluster.machine(t).allocate(
                    len(next_partials[t]) * model.embedding_bytes(q + 1),
                    "partials_bytes",
                )
            cluster.network.shuffle(cluster.machines, forward_bytes)
            partials = next_partials

        results: list[tuple[int, ...]] = []
        count = 0
        inverse = [0] * n
        for q, u in enumerate(order):
            inverse[u] = q
        for t in range(num_machines):
            count += len(partials[t])
            if collect:
                for partial in partials[t]:
                    results.append(tuple(partial[inverse[u]] for u in range(n)))
        self._count = count
        return results
