"""Crystal baseline (Qiao et al., PVLDB 2017).

Crystal decomposes the query into a *core* (a vertex cover) plus *crystals*
(independent bud vertices attached to core subsets), pre-builds an index of
all data-graph cliques, and assembles results in compressed (VCBC) form:

- bud vertices whose attachment is a clique are resolved by a cheap clique
  *index lookup* (the paper: "the triangle crystal can be directly loaded
  from index without any computation");
- everything else falls back to adjacency intersections, where Crystal loses
  its advantage (triangle-free queries q1, q3, q6-q8).

The index is many times larger than the graph (Table 2) and is charged to
simulated disk I/O; intermediate results are charged in compressed form
(core embeddings + bud candidate sets), which is why Crystal holds up on
dense graphs until the core itself explodes.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.engines.join_common import ConstraintChecker
from repro.enumeration.backtracking import (
    BacktrackingEnumerator,
    EnumerationStats,
    compute_matching_order,
)
from repro.graph.cliques import maximal_cliques
from repro.graph.graph import Graph
from repro.query.pattern import Pattern
from repro.runtime.executor import Executor


def _core_general_task(cluster: Cluster, args: tuple) -> tuple:
    """Enumerate one machine's core embeddings via backtracking
    (the general, index-free path — independent per machine)."""
    (
        t, sub_pattern, sub_constraints, order, core_list, remap,
        start_degree,
    ) = args
    graph = cluster.graph
    local = cluster.partition.machine(t)
    machine = cluster.machine(t)
    model = cluster.cost_model
    stats = EnumerationStats()
    enumerator = BacktrackingEnumerator(
        pattern=sub_pattern,
        adjacency=graph.neighbors,
        constraints=sub_constraints,
        order=order,
        stats=stats,
    )
    starts = [
        int(v)
        for v in local.owned_vertices
        if local.degree(int(v)) >= start_degree
    ]
    seen: set[tuple[int, ...]] = set()
    found: list[dict[int, int]] = []
    for emb in enumerator.run(starts):
        key = tuple(emb[remap[u]] for u in core_list)
        if key in seen:
            continue
        seen.add(key)
        found.append(dict(zip(core_list, key)))
    machine.charge_ops(stats.total_ops, "core_ops")
    machine.allocate(len(found) * len(core_list) * 8, "core_bytes")
    # Reading adjacency beyond owned vertices is an index/HDFS scan.
    machine.advance(model.disk_time(stats.candidates_scanned * 8))
    return t, found


def _bud_combine_task(cluster: Cluster, args: tuple) -> tuple:
    """Attach bud candidates to one machine's core embeddings and
    decompress into full embeddings (independent per machine)."""
    (
        t, core_embs_t, bud_order, att_lists, clique_flags, bud_degrees,
        all_pairs, num_vertices, collect,
    ) = args
    graph = cluster.graph
    model = cluster.cost_model
    machine = cluster.machine(t)
    results: list[tuple[int, ...]] = []
    count = 0
    ops = 0
    disk_bytes = 0
    cand_bytes = 0
    for core_emb in core_embs_t:
        bud_cands: list[np.ndarray] = []
        dead = False
        for i, u in enumerate(bud_order):
            att = att_lists[i]
            arrays = sorted(
                (graph.neighbors(core_emb[w]) for w in att), key=len
            )
            cands = arrays[0]
            for arr in arrays[1:]:
                cands = np.intersect1d(cands, arr, assume_unique=True)
            if clique_flags[i]:
                # Index lookup: pay only for streaming the entry.
                disk_bytes += (len(cands) + len(att)) * 8
                ops += len(cands) // 8 + 1
            else:
                ops += sum(len(a) for a in arrays)
            degree_u = bud_degrees[i]
            cands = cands[
                np.fromiter(
                    (graph.degree(int(v)) >= degree_u for v in cands),
                    dtype=bool,
                    count=len(cands),
                )
            ] if len(cands) else cands
            if len(cands) == 0:
                dead = True
                break
            bud_cands.append(cands)
            cand_bytes += len(cands) * 8
        if dead:
            continue
        # Combine buds (decompression): injectivity + constraints.
        base = [0] * num_vertices
        for u, v in core_emb.items():
            base[u] = v
        core_values = set(core_emb.values())

        def combine(idx: int) -> None:
            nonlocal count, ops
            if idx == len(bud_order):
                tup = tuple(base)
                if ConstraintChecker.ok_tuple(tup, all_pairs):
                    count += 1
                    if collect:
                        results.append(tup)
                return
            u = bud_order[idx]
            for v in bud_cands[idx]:
                v = int(v)
                ops += 1
                if v in core_values:
                    continue
                if any(base[w] == v for w in bud_order[:idx]):
                    continue
                base[u] = v
                combine(idx + 1)
            base[u] = 0

        combine(0)
    machine.charge_ops(ops, "crystal_ops")
    machine.advance(model.disk_time(disk_bytes))
    machine.allocate(cand_bytes, "candidate_bytes")
    machine.free(cand_bytes)
    return t, count, results


#: Per-entry on-disk overhead of the index: besides the member ids, Crystal
#: stores instance codes, bud-candidate postings and pointers for each
#: indexed clique, which is what makes the index files many times larger
#: than the data graph (paper Table 2).
INDEX_ENTRY_OVERHEAD = 64


class CliqueIndex:
    """Offline index of all data-graph cliques up to ``max_size``."""

    def __init__(self, graph: Graph, max_size: int = 4,
                 max_entries: int = 5_000_000):
        self._graph = graph
        self.max_size = max_size
        self._by_size: dict[int, list[tuple[int, ...]]] = {
            2: [tuple(e) for e in graph.edges()]
        }
        if max_size >= 3:
            seen: dict[int, set[tuple[int, ...]]] = {
                k: set() for k in range(3, max_size + 1)
            }
            total = 0
            for clique in maximal_cliques(graph):
                for k in range(3, min(max_size, len(clique)) + 1):
                    for sub in combinations(clique, k):
                        if sub not in seen[k]:
                            seen[k].add(sub)
                            total += 1
                            if total >= max_entries:
                                break
                    if total >= max_entries:
                        break
                if total >= max_entries:
                    break
            for k in range(3, max_size + 1):
                self._by_size[k] = sorted(seen[k])

    @property
    def graph(self) -> Graph:
        """The indexed data graph."""
        return self._graph

    def cliques(self, size: int) -> list[tuple[int, ...]]:
        """All cliques of exactly ``size`` vertices."""
        return self._by_size.get(size, [])

    def count(self, size: int) -> int:
        """Number of indexed cliques of ``size``."""
        return len(self._by_size.get(size, []))

    def size_bytes(self) -> int:
        """Simulated on-disk footprint of the index (ids + postings)."""
        return sum(
            len(cliques) * (size * 8 + INDEX_ENTRY_OVERHEAD)
            for size, cliques in self._by_size.items()
        )


def minimum_vertex_covers(pattern: Pattern, size: int) -> list[frozenset[int]]:
    """All vertex covers of exactly ``size`` vertices."""
    covers = []
    for combo in combinations(pattern.vertices(), size):
        cover = frozenset(combo)
        if all(a in cover or b in cover for a, b in pattern.edges()):
            covers.append(cover)
    return covers


def choose_core(pattern: Pattern) -> tuple[frozenset[int], list[int]]:
    """Pick a core (vertex cover) plus the bud list, Crystal-style.

    Among covers of minimum and minimum+1 size, prefer the one with the most
    buds attached to a clique (those get index lookups), then connected
    cores, then small cores.
    """
    for mvc_size in range(1, pattern.num_vertices + 1):
        if minimum_vertex_covers(pattern, mvc_size):
            break
    candidates: list[frozenset[int]] = []
    for size in (mvc_size, min(mvc_size + 1, pattern.num_vertices)):
        candidates.extend(minimum_vertex_covers(pattern, size))

    def is_clique(subset: frozenset[int]) -> bool:
        return all(
            pattern.has_edge(a, b) for a, b in combinations(sorted(subset), 2)
        )

    def connected(subset: frozenset[int]) -> bool:
        members = sorted(subset)
        if not members:
            return False
        seen = {members[0]}
        stack = [members[0]]
        while stack:
            v = stack.pop()
            for w in pattern.adj(v):
                if w in subset and w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == len(subset)

    def score(cover: frozenset[int]) -> tuple:
        buds = [u for u in pattern.vertices() if u not in cover]
        clique_buds = sum(
            1 for u in buds if is_clique(pattern.adj(u) & cover)
        )
        return (clique_buds, connected(cover), -len(cover), tuple(sorted(cover)))

    core = max(candidates, key=score)
    buds = [u for u in pattern.vertices() if u not in core]
    return core, buds


class CrystalEngine(EnumerationEngine):
    """Core + crystals with a precomputed clique index.

    Pass a prebuilt :class:`CliqueIndex` to amortise the (expensive) offline
    index construction across queries, as the paper does.
    """

    name = "Crystal"
    explain_note = (
        "enumerates the core (a vertex cover, see extras) distributedly, "
        "then attaches each bud's candidate set from the precomputed "
        "clique index without materialising the cross product"
    )

    def __init__(self, index: CliqueIndex | None = None):
        self._index = index

    def _explain_extras(self, pattern: Pattern) -> dict:
        core, buds = choose_core(pattern)
        return {
            "core": sorted(core),
            "buds": list(buds),
            "index_prebuilt": self._index is not None,
        }

    # ------------------------------------------------------------------
    def _core_embeddings(
        self,
        cluster: Cluster,
        pattern: Pattern,
        core: frozenset[int],
        checker: ConstraintChecker,
        index: CliqueIndex,
        executor: Executor,
    ) -> dict[int, list[dict[int, int]]]:
        """Distinct core embeddings per machine (keyed by anchor owner)."""
        graph = cluster.graph
        partition = cluster.partition
        model = cluster.cost_model
        core_list = sorted(core)
        pairs = checker.pairs(tuple(core_list))

        def is_clique_core() -> bool:
            return all(
                pattern.has_edge(a, b) for a, b in combinations(core_list, 2)
            )

        per_machine: dict[int, list[dict[int, int]]] = {
            t: [] for t in range(cluster.num_machines)
        }
        if len(core_list) == 1:
            u = core_list[0]
            min_degree = pattern.degree(u)
            for t in range(cluster.num_machines):
                local = partition.machine(t)
                machine = cluster.machine(t)
                found = [
                    {u: int(v)}
                    for v in local.owned_vertices
                    if local.degree(int(v)) >= min_degree
                ]
                machine.charge_ops(len(local.owned_vertices), "core_ops")
                machine.allocate(len(found) * 8, "core_bytes")
                per_machine[t] = found
            return per_machine
        if is_clique_core() and len(core_list) <= index.max_size:
            # Fast path: core instances come straight off the clique index.
            instances = index.cliques(len(core_list))
            load_bytes = len(instances) * len(core_list) * 8
            degrees = [pattern.degree(u) for u in core_list]
            buckets: dict[int, list[tuple[int, ...]]] = {
                t: [] for t in range(cluster.num_machines)
            }
            for inst in instances:
                buckets[partition.owner_of(min(inst))].append(inst)
            for t in range(cluster.num_machines):
                machine = cluster.machine(t)
                machine.advance(model.disk_time(load_bytes / cluster.num_machines))
                ops = 0
                found = []
                for inst in buckets[t]:
                    for perm in _permutations(inst):
                        ops += 1
                        if any(
                            graph.degree(perm[i]) < degrees[i]
                            for i in range(len(core_list))
                        ):
                            continue
                        if checker.ok_tuple(perm, pairs):
                            found.append(dict(zip(core_list, perm)))
                machine.charge_ops(ops, "core_ops")
                machine.allocate(len(found) * len(core_list) * 8, "core_bytes")
                per_machine[t] = found
            return per_machine
        # General path: enumerate a connected superset S of the core with
        # plain backtracking, project to the core, deduplicate.
        s_vertices = _connecting_superset(pattern, core)
        sub_pattern, remap = _induced_pattern(pattern, s_vertices)
        # pairs() returns positional pairs over the sorted vertex tuple;
        # positions in a sorted list coincide with the dense relabelling.
        sorted_s = sorted(s_vertices)
        sub_constraints = [
            (remap[sorted_s[i]], remap[sorted_s[j]])
            for i, j in checker.pairs(tuple(sorted_s))
        ]
        core_start = max(
            (remap[u] for u in core_list),
            key=lambda u: sub_pattern.degree(u),
        )
        order = compute_matching_order(sub_pattern, start=core_start)
        for t, found in executor.run_tasks(
            cluster,
            _core_general_task,
            [
                (
                    t, sub_pattern, sub_constraints, order, core_list,
                    remap, sub_pattern.degree(core_start),
                )
                for t in range(cluster.num_machines)
            ],
        ):
            per_machine[t] = found
        return per_machine

    # ------------------------------------------------------------------
    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        graph = cluster.graph
        index = self._index
        if index is None or index.graph is not graph:
            index = CliqueIndex(
                graph, max_size=max(2, min(4, pattern.max_clique_size()))
            )
        checker = ConstraintChecker(pattern, constraints)
        core, buds = choose_core(pattern)
        core_embs = self._core_embeddings(
            cluster, pattern, core, checker, index, executor
        )
        cluster.barrier()

        # Order buds: clique-attached first (cheap index lookups prune most).
        def attachment(u: int) -> list[int]:
            return sorted(pattern.adj(u) & core)

        def is_clique_attachment(u: int) -> bool:
            att = attachment(u)
            return len(att) >= 2 and all(
                pattern.has_edge(a, b) for a, b in combinations(att, 2)
            )

        bud_order = sorted(
            buds, key=lambda u: (not is_clique_attachment(u), -len(attachment(u)))
        )
        # Bud-bud pattern edges cannot exist (buds are an independent set).
        all_pairs = checker.pairs(tuple(range(pattern.num_vertices)))
        results: list[tuple[int, ...]] = []
        count = 0
        for t, machine_count, found in executor.run_tasks(
            cluster,
            _bud_combine_task,
            [
                (
                    t, core_embs[t], bud_order,
                    [attachment(u) for u in bud_order],
                    [is_clique_attachment(u) for u in bud_order],
                    [pattern.degree(u) for u in bud_order],
                    all_pairs, pattern.num_vertices, collect,
                )
                for t in range(cluster.num_machines)
            ],
        ):
            count += machine_count
            results.extend(found)
        # One MapReduce round shuffles the compressed representation when
        # assembling final output (core embeddings + candidate sets).
        payload = np.zeros(
            (cluster.num_machines, cluster.num_machines), dtype=np.int64
        )
        for t in range(cluster.num_machines):
            nbytes = len(core_embs[t]) * len(core) * 8
            dst = (t + 1) % cluster.num_machines
            if dst != t:
                payload[t, dst] = nbytes
        cluster.network.shuffle(cluster.machines, payload)
        self._count = count
        return results


def _permutations(values: tuple[int, ...]):
    """itertools.permutations, localised for the hot loop."""
    from itertools import permutations as _perms

    return _perms(values)


def _connecting_superset(pattern: Pattern, core: frozenset[int]) -> set[int]:
    """Core plus the fewest buds needed to make the set connected."""
    s = set(core)

    def components(subset: set[int]) -> int:
        seen: set[int] = set()
        parts = 0
        for v in sorted(subset):
            if v in seen:
                continue
            parts += 1
            stack = [v]
            seen.add(v)
            while stack:
                x = stack.pop()
                for w in pattern.adj(x):
                    if w in subset and w not in seen:
                        seen.add(w)
                        stack.append(w)
        return parts

    while components(s) > 1:
        outside = [u for u in pattern.vertices() if u not in s]
        best = max(
            outside,
            key=lambda u: (len(pattern.adj(u) & s), pattern.degree(u), -u),
        )
        s.add(best)
    return s


def _induced_pattern(
    pattern: Pattern, vertices: set[int]
) -> tuple[Pattern, dict[int, int]]:
    """Induced subpattern with a dense relabelling."""
    ordered = sorted(vertices)
    remap = {v: i for i, v in enumerate(ordered)}
    edges = [
        (remap[a], remap[b])
        for a, b in pattern.edges()
        if a in vertices and b in vertices
    ]
    return Pattern(len(ordered), edges, name="core"), remap
