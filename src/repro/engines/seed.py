"""SEED baseline (Lai et al., PVLDB 2016).

An upgraded TwinTwig: decomposition units may be *cliques* as well as stars
(SEED's star-clique-preserved storage lets every machine list the cliques
around its owned vertices locally), and stars are not limited to two edges.
Clique units shrink both the number of join rounds and the intermediate
result volume on triangle-rich queries.

Simplification vs. the original: joins are left-deep rather than bushy; the
benefit SEED derives from clique units (fewer, more selective units) is
preserved, which is what the paper's comparison exercises.
"""

from __future__ import annotations

from itertools import combinations

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.engines.join_common import DistributedJoinRunner, JoinUnit
from repro.runtime.executor import Executor
from repro.query.pattern import Pattern


def _pattern_cliques(pattern: Pattern, min_size: int = 3) -> list[tuple[int, ...]]:
    """All cliques of the (tiny) pattern with at least ``min_size`` vertices."""
    cliques: list[tuple[int, ...]] = []
    vertices = list(pattern.vertices())
    for size in range(min_size, pattern.num_vertices + 1):
        for combo in combinations(vertices, size):
            if all(
                pattern.has_edge(a, b) for a, b in combinations(combo, 2)
            ):
                cliques.append(combo)
    return cliques


def seed_decomposition(pattern: Pattern) -> list[JoinUnit]:
    """Greedy cover of the pattern edges by clique units, then stars.

    Cliques are chosen largest-first while they cover >= 3 uncovered edges;
    leftover edges are grouped into unbounded stars.  Units are ordered so
    every unit after the first shares a vertex with the already-joined part.
    """
    remaining: set[tuple[int, int]] = set(pattern.edges())
    units: list[JoinUnit] = []
    for clique in sorted(
        _pattern_cliques(pattern), key=lambda c: -len(c)
    ):
        edges = {
            (min(a, b), max(a, b)) for a, b in combinations(clique, 2)
        }
        if edges <= remaining:
            units.append(
                JoinUnit(
                    vertices=clique,
                    covered_edges=tuple(sorted(edges)),
                    kind="clique",
                )
            )
            remaining -= edges
    # Remaining edges become unbounded stars.
    while remaining:
        counts: dict[int, list[tuple[int, int]]] = {}
        for e in remaining:
            for v in e:
                counts.setdefault(v, []).append(e)
        pivot = max(sorted(counts), key=lambda v: len(counts[v]))
        take = sorted(counts[pivot])
        leaves = tuple((a if b == pivot else b) for a, b in take)
        units.append(
            JoinUnit(
                vertices=(pivot, *leaves),
                covered_edges=tuple(take),
                kind="star",
            )
        )
        remaining -= set(take)
    # Order for join connectivity: first the largest unit, then any unit
    # sharing a vertex with what is already joined.
    ordered: list[JoinUnit] = []
    pending = list(units)
    pending.sort(key=lambda u: (-len(u.covered_edges), u.vertices))
    ordered.append(pending.pop(0))
    placed = set(ordered[0].vertices)
    while pending:
        for i, unit in enumerate(pending):
            if placed & set(unit.vertices):
                ordered.append(pending.pop(i))
                placed |= set(unit.vertices)
                break
        else:  # pragma: no cover - impossible for connected patterns
            ordered.append(pending.pop(0))
            placed |= set(ordered[-1].vertices)
    return ordered


class SEEDEngine(EnumerationEngine):
    """MapReduce joins over star + clique decomposition units."""

    name = "SEED"
    explain_note = (
        "bushy MapReduce join over star and clique units (see extras for "
        "the SEED units actually joined)"
    )

    def _explain_extras(self, pattern: Pattern) -> dict:
        return {
            "join_units": [
                {"kind": u.kind, "vertices": list(u.vertices)}
                for u in seed_decomposition(pattern)
            ],
        }

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        units = seed_decomposition(pattern)
        runner = DistributedJoinRunner(cluster, pattern, constraints, executor)
        results, count = runner.run_units(units, collect)
        self._count = count
        return results
