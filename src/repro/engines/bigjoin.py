"""BigJoin baseline (Ammar et al., PVLDB 2018) — extension beyond the
paper's evaluated set (discussed in its Sec. 8 related work).

BigJoin treats the query as a multiway join of binary edge relations and
extends partial embeddings one query vertex at a time, achieving
worst-case-optimal intermediate sizes: the candidate set for the next
vertex is the *intersection* of the adjacency of all matched pattern
neighbours.  Distribution follows the dataflow formulation: a prefix visits
the owner of each matched neighbour in turn, narrowing its candidate set
locally, so prefixes (plus their shrinking candidate sets) are shuffled at
every hop — like the paper says: "it still needs to shuffle and exchange
intermediate results, and therefore synchronization before that".
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.enumeration.backtracking import compute_matching_order
from repro.query.pattern import Pattern
from repro.query.symmetry import constraint_map


class BigJoinEngine(EnumerationEngine):
    """Worst-case-optimal vertex-at-a-time distributed join."""

    name = "BigJoin"

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
    ) -> list[tuple[int, ...]]:
        graph = cluster.graph
        partition = cluster.partition
        model = cluster.cost_model
        num_machines = cluster.num_machines
        order = compute_matching_order(pattern)
        position = {u: q for q, u in enumerate(order)}
        smaller, greater = constraint_map(constraints, pattern.num_vertices)
        n = pattern.num_vertices
        backward: list[list[int]] = [
            sorted(
                position[w] for w in pattern.adj(order[q])
                if position[w] < q
            )
            for q in range(n)
        ]

        def bounds(q: int, partial: tuple[int, ...]) -> tuple[int, int | None]:
            u = order[q]
            lo, hi = -1, None
            for w in greater[u]:
                pw = position[w]
                if pw < q:
                    lo = max(lo, partial[pw])
            for w in smaller[u]:
                pw = position[w]
                if pw < q:
                    hi = partial[pw] if hi is None else min(hi, partial[pw])
            return lo, hi

        # Seed prefixes at the owners of candidate first vertices.
        start_degree = pattern.degree(order[0])
        prefixes: dict[int, list[tuple[int, ...]]] = defaultdict(list)
        for t in range(num_machines):
            local = partition.machine(t)
            machine = cluster.machine(t)
            seeds = [
                (int(v),)
                for v in local.owned_vertices
                if local.degree(int(v)) >= start_degree
            ]
            machine.charge_ops(len(local.owned_vertices), "seed_ops")
            machine.allocate(len(seeds) * 8, "prefix_bytes")
            prefixes[t] = seeds

        for q in range(1, n):
            hops = backward[q]
            # Items in flight: (prefix, candidate array or None).
            inflight: dict[int, list[tuple[tuple[int, ...], np.ndarray | None]]]
            inflight = {
                t: [(p, None) for p in prefixes[t]] for t in range(num_machines)
            }
            for t in range(num_machines):
                cluster.machine(t).free(
                    len(prefixes[t]) * model.embedding_bytes(q)
                )
            for hop_index, hop in enumerate(hops):
                routed: dict[int, list[tuple[tuple[int, ...], np.ndarray | None]]]
                routed = defaultdict(list)
                payload = np.zeros(
                    (num_machines, num_machines), dtype=np.int64
                )
                prefix_bytes = model.embedding_bytes(q)
                for t in range(num_machines):
                    for prefix, cands in inflight[t]:
                        dst = partition.owner_of(prefix[hop])
                        routed[dst].append((prefix, cands))
                        if dst != t:
                            extra = 0 if cands is None else len(cands) * 8
                            payload[t, dst] += prefix_bytes + extra
                cluster.network.shuffle(cluster.machines, payload)
                # Intersect locally at the owner of this hop's vertex.
                for t in range(num_machines):
                    machine = cluster.machine(t)
                    ops = 0
                    narrowed = []
                    for prefix, cands in routed[t]:
                        adjacency = graph.neighbors(prefix[hop])
                        if cands is None:
                            cands = adjacency
                        else:
                            ops += min(len(cands), len(adjacency))
                            cands = np.intersect1d(
                                cands, adjacency, assume_unique=True
                            )
                        if len(cands):
                            narrowed.append((prefix, cands))
                    machine.charge_ops(ops, "intersect_ops")
                    inflight[t] = narrowed
                    machine.allocate(
                        sum(len(c) * 8 for _, c in narrowed)
                        + len(narrowed) * prefix_bytes,
                        "prefix_bytes",
                    )
                    machine.free(
                        sum(
                            0 if c is None else len(c) * 8
                            for _, c in routed[t]
                        )
                        + len(routed[t]) * prefix_bytes
                    )
            # Materialise extensions.
            next_prefixes: dict[int, list[tuple[int, ...]]] = defaultdict(list)
            min_degree = pattern.degree(order[q])
            for t in range(num_machines):
                machine = cluster.machine(t)
                ops = 0
                for prefix, cands in inflight[t]:
                    lo, hi = bounds(q, prefix)
                    if lo >= 0:
                        cands = cands[np.searchsorted(cands, lo + 1):]
                    if hi is not None:
                        cands = cands[: np.searchsorted(cands, hi)]
                    for v in cands:
                        v = int(v)
                        ops += 1
                        if v in prefix:
                            continue
                        if graph.degree(v) < min_degree:
                            continue
                        next_prefixes[t].append(prefix + (v,))
                machine.charge_ops(ops, "extend_ops")
                machine.free(
                    sum(len(c) * 8 for _, c in inflight[t])
                    + len(inflight[t]) * model.embedding_bytes(q)
                )
                machine.allocate(
                    len(next_prefixes[t]) * model.embedding_bytes(q + 1),
                    "prefix_bytes",
                )
            cluster.barrier()
            prefixes = next_prefixes

        inverse = [0] * n
        for q, u in enumerate(order):
            inverse[u] = q
        results: list[tuple[int, ...]] = []
        count = 0
        for t in range(num_machines):
            count += len(prefixes[t])
            if collect:
                results.extend(
                    tuple(p[inverse[u]] for u in range(n))
                    for p in prefixes[t]
                )
        self._count = count
        return results
