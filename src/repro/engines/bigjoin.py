"""BigJoin baseline (Ammar et al., PVLDB 2018) — extension beyond the
paper's evaluated set (discussed in its Sec. 8 related work).

BigJoin treats the query as a multiway join of binary edge relations and
extends partial embeddings one query vertex at a time, achieving
worst-case-optimal intermediate sizes: the candidate set for the next
vertex is the *intersection* of the adjacency of all matched pattern
neighbours.  Distribution follows the dataflow formulation: a prefix visits
the owner of each matched neighbour in turn, narrowing its candidate set
locally, so prefixes (plus their shrinking candidate sets) are shuffled at
every hop — like the paper says: "it still needs to shuffle and exchange
intermediate results, and therefore synchronization before that".
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.enumeration.backtracking import compute_matching_order
from repro.query.pattern import Pattern
from repro.query.symmetry import constraint_map
from repro.runtime.executor import Executor


def _intersect_task(cluster: Cluster, args: tuple) -> tuple:
    """Narrow candidate sets at one hop owner (independent task)."""
    t, routed_t, hop, prefix_width = args
    graph = cluster.graph
    model = cluster.cost_model
    machine = cluster.machine(t)
    prefix_bytes = model.embedding_bytes(prefix_width)
    ops = 0
    narrowed = []
    for prefix, cands in routed_t:
        adjacency = graph.neighbors(prefix[hop])
        if cands is None:
            cands = adjacency
        else:
            ops += min(len(cands), len(adjacency))
            cands = np.intersect1d(cands, adjacency, assume_unique=True)
        if len(cands):
            narrowed.append((prefix, cands))
    machine.charge_ops(ops, "intersect_ops")
    machine.allocate(
        sum(len(c) * 8 for _, c in narrowed)
        + len(narrowed) * prefix_bytes,
        "prefix_bytes",
    )
    machine.free(
        sum(0 if c is None else len(c) * 8 for _, c in routed_t)
        + len(routed_t) * prefix_bytes
    )
    return t, narrowed


def _extend_task(cluster: Cluster, args: tuple) -> tuple:
    """Materialise extensions at one machine (independent task)."""
    (
        t, inflight_t, q, min_degree, lower_positions, upper_positions,
    ) = args
    graph = cluster.graph
    model = cluster.cost_model
    machine = cluster.machine(t)
    ops = 0
    extended: list[tuple[int, ...]] = []
    for prefix, cands in inflight_t:
        lo, hi = -1, None
        for p in lower_positions:
            lo = max(lo, prefix[p])
        for p in upper_positions:
            hi = prefix[p] if hi is None else min(hi, prefix[p])
        if lo >= 0:
            cands = cands[np.searchsorted(cands, lo + 1):]
        if hi is not None:
            cands = cands[: np.searchsorted(cands, hi)]
        for v in cands:
            v = int(v)
            ops += 1
            if v in prefix:
                continue
            if graph.degree(v) < min_degree:
                continue
            extended.append(prefix + (v,))
    machine.charge_ops(ops, "extend_ops")
    machine.free(
        sum(len(c) * 8 for _, c in inflight_t)
        + len(inflight_t) * model.embedding_bytes(q)
    )
    machine.allocate(
        len(extended) * model.embedding_bytes(q + 1), "prefix_bytes"
    )
    return t, extended


class BigJoinEngine(EnumerationEngine):
    """Worst-case-optimal vertex-at-a-time distributed join."""

    name = "BigJoin"
    explain_note = (
        "worst-case-optimal join: one distributed extension round per "
        "query vertex in the extension order (extras), intersecting the "
        "matched neighbours' adjacency lists"
    )

    def _explain_extras(self, pattern: Pattern) -> dict:
        return {"extension_order": list(compute_matching_order(pattern))}

    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        partition = cluster.partition
        model = cluster.cost_model
        num_machines = cluster.num_machines
        order = compute_matching_order(pattern)
        position = {u: q for q, u in enumerate(order)}
        smaller, greater = constraint_map(constraints, pattern.num_vertices)
        n = pattern.num_vertices
        backward: list[list[int]] = [
            sorted(
                position[w] for w in pattern.adj(order[q])
                if position[w] < q
            )
            for q in range(n)
        ]

        # Seed prefixes at the owners of candidate first vertices.
        start_degree = pattern.degree(order[0])
        prefixes: dict[int, list[tuple[int, ...]]] = defaultdict(list)
        for t in range(num_machines):
            local = partition.machine(t)
            machine = cluster.machine(t)
            seeds = [
                (int(v),)
                for v in local.owned_vertices
                if local.degree(int(v)) >= start_degree
            ]
            machine.charge_ops(len(local.owned_vertices), "seed_ops")
            machine.allocate(len(seeds) * 8, "prefix_bytes")
            prefixes[t] = seeds

        for q in range(1, n):
            hops = backward[q]
            # Items in flight: (prefix, candidate array or None).
            inflight: dict[int, list[tuple[tuple[int, ...], np.ndarray | None]]]
            inflight = {
                t: [(p, None) for p in prefixes[t]] for t in range(num_machines)
            }
            for t in range(num_machines):
                cluster.machine(t).free(
                    len(prefixes[t]) * model.embedding_bytes(q)
                )
            for hop_index, hop in enumerate(hops):
                routed: dict[int, list[tuple[tuple[int, ...], np.ndarray | None]]]
                routed = defaultdict(list)
                payload = np.zeros(
                    (num_machines, num_machines), dtype=np.int64
                )
                prefix_bytes = model.embedding_bytes(q)
                for t in range(num_machines):
                    for prefix, cands in inflight[t]:
                        dst = partition.owner_of(prefix[hop])
                        routed[dst].append((prefix, cands))
                        if dst != t:
                            extra = 0 if cands is None else len(cands) * 8
                            payload[t, dst] += prefix_bytes + extra
                cluster.network.shuffle(cluster.machines, payload)
                # Intersect locally at the owners of this hop's vertex —
                # one independent task per machine.
                for t, narrowed in executor.run_tasks(
                    cluster,
                    _intersect_task,
                    [(t, routed[t], hop, q) for t in range(num_machines)],
                ):
                    inflight[t] = narrowed
            # Materialise extensions, one independent task per machine.
            u = order[q]
            extend_args = [
                (
                    t, inflight[t], q, pattern.degree(u),
                    [position[w] for w in greater[u] if position[w] < q],
                    [position[w] for w in smaller[u] if position[w] < q],
                )
                for t in range(num_machines)
            ]
            next_prefixes: dict[int, list[tuple[int, ...]]] = defaultdict(list)
            for t, extended in executor.run_tasks(
                cluster, _extend_task, extend_args
            ):
                next_prefixes[t] = extended
            cluster.barrier()
            prefixes = next_prefixes

        inverse = [0] * n
        for q, u in enumerate(order):
            inverse[u] = q
        results: list[tuple[int, ...]] = []
        count = 0
        for t in range(num_machines):
            count += len(prefixes[t])
            if collect:
                results.extend(
                    tuple(p[inverse[u]] for u in range(n))
                    for p in prefixes[t]
                )
        self._count = count
        return results
