"""Single-round multiway join baseline (Afrati & Ullman, ICDE 2013).

An extension beyond the paper's evaluated set, covering the remaining
approach from its Sec. 8 related work: the query pattern is treated as a
conjunctive query joining ``|E_P|`` binary edge relations, evaluated in a
*single* round of map and reduce over a hypercube ("Shares") reducer grid.

Every query vertex ``u`` is given a share ``b_u`` with ``prod(b_u) <= m``;
a reducer is a point of the grid ``[b_0] x ... x [b_{k-1}]``.  A data edge
``(v, w)`` standing in for the query edge ``(a, b)`` is replicated to every
reducer whose ``a``-coordinate is ``h(v) mod b_a`` and ``b``-coordinate is
``h(w) mod b_b`` — one copy per combination of the *other* coordinates.
This is the duplication the paper points at: "most edges have to be
duplicated over several machines in the map phase, hence there is a
scalability problem when the query pattern is complex".

Each potential embedding is assembled at exactly one reducer (the point
whose coordinates are the hashes of all its data vertices), so the global
result needs no deduplication.
"""

from __future__ import annotations

import itertools
from collections import defaultdict

import numpy as np

from repro.cluster.cluster import Cluster
from repro.engines.base import EnumerationEngine
from repro.runtime.executor import Executor
from repro.enumeration.backtracking import compute_matching_order
from repro.query.pattern import Pattern
from repro.query.symmetry import constraint_map

#: Mixing constant (Knuth multiplicative hashing) so vertex ids spread
#: evenly over the tiny share moduli.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = (1 << 32) - 1

#: Allocation granularity for reducer-side results.
ALLOC_CHUNK = 4096


def _mix(v: int) -> int:
    """Deterministic 32-bit hash of a vertex id."""
    return (v * _HASH_MULTIPLIER) & _HASH_MASK


def compute_shares(pattern: Pattern, num_reducers: int) -> tuple[int, ...]:
    """Optimal share vector for the hypercube reducer grid.

    Following Afrati & Ullman, the reducer count is a resource to use, not
    to economise: the grid is chosen to occupy as many of the available
    reducers as integer shares allow (fewer reducers would always shrink
    replication — by forfeiting parallelism).  Among the maximal grids, the
    vector minimising the number of edge copies
    ``sum over query edges (a,b) of prod of b_u for u not in {a, b}``
    wins.  Patterns are tiny, so exhaustive search over integer share
    vectors is exact and cheap.
    """
    if num_reducers < 1:
        raise ValueError("need at least one reducer")
    k = pattern.num_vertices
    edges = list(pattern.edges())
    best: tuple[int, ...] | None = None
    best_key: tuple[float, int] | None = None

    def replication(shares: tuple[int, ...]) -> int:
        total = int(np.prod(shares))
        return sum(total // (shares[a] * shares[b]) for a, b in edges)

    def descend(index: int, shares: list[int], product: int) -> None:
        nonlocal best, best_key
        if index == k:
            vec = tuple(shares)
            key = (-product, replication(vec))
            if best_key is None or key < best_key:
                best_key = key
                best = vec
            return
        limit = num_reducers // product
        for b in range(1, limit + 1):
            shares.append(b)
            descend(index + 1, shares, product * b)
            shares.pop()

    descend(0, [], 1)
    assert best is not None
    return best


class _ReducerState:
    """Relations delivered to one reducer point."""

    __slots__ = ("adjacency", "tuples")

    def __init__(self) -> None:
        # Directed lookup: (a, b) -> v -> partners w with R_ab(v, w).
        self.adjacency: dict[tuple[int, int], dict[int, set[int]]] = (
            defaultdict(lambda: defaultdict(set))
        )
        self.tuples = 0

    def add(self, qa: int, qb: int, v: int, w: int) -> None:
        """Record the delivered tuple ``R_{qa,qb}(v, w)``."""
        self.adjacency[(qa, qb)][v].add(w)
        self.adjacency[(qb, qa)][w].add(v)
        self.tuples += 1


class MultiwayJoinEngine(EnumerationEngine):
    """Afrati-Ullman single-round hypercube multiway join."""

    name = "Multiway"

    def __init__(self, shares: tuple[int, ...] | None = None):
        self._fixed_shares = shares
        self.last_shares: tuple[int, ...] | None = None
        self.last_replicated_tuples: int = 0

    # ------------------------------------------------------------------
    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        num_machines = cluster.num_machines
        shares = self._fixed_shares or compute_shares(pattern, num_machines)
        if len(shares) != pattern.num_vertices:
            raise ValueError("share vector length must match pattern size")
        self.last_shares = shares
        reducers = self._map_phase(cluster, pattern, shares)
        return self._reduce_phase(
            cluster, pattern, constraints, reducers, collect
        )

    # ------------------------------------------------------------------
    # Map phase
    # ------------------------------------------------------------------
    def _map_phase(
        self,
        cluster: Cluster,
        pattern: Pattern,
        shares: tuple[int, ...],
    ) -> dict[int, _ReducerState]:
        """Replicate data edges to reducer points; returns reducer states.

        Reducer point ``p`` (row-major index over the share grid) runs on
        machine ``p % num_machines``.  Each undirected data edge is mapped
        exactly once, from the machine owning its smaller endpoint.
        """
        partition = cluster.partition
        model = cluster.cost_model
        num_machines = cluster.num_machines
        grid = list(itertools.product(*(range(b) for b in shares)))
        point_index = {coords: i for i, coords in enumerate(grid)}
        query_edges = list(pattern.edges())
        k = pattern.num_vertices
        tuple_bytes = 2 * model.bytes_per_vertex_id + 2  # pair + relation tag

        free_dims: dict[tuple[int, int], list[int]] = {
            (a, b): [u for u in range(k) if u not in (a, b)]
            for a, b in query_edges
        }

        reducers: dict[int, _ReducerState] = defaultdict(_ReducerState)
        payload = np.zeros((num_machines, num_machines), dtype=np.int64)
        received: np.ndarray = np.zeros(num_machines, dtype=np.int64)
        replicated = 0

        for t in range(num_machines):
            local = partition.machine(t)
            machine = cluster.machine(t)
            ops = 0
            for v in local.owned_vertices:
                v = int(v)
                for w in local.neighbors(v):
                    w = int(w)
                    ops += 1
                    if w < v:
                        # Each undirected edge is mapped exactly once, by
                        # the machine owning its smaller endpoint (an edge
                        # can reside on two machines).
                        continue
                    for a, b in query_edges:
                        for qa, qb, x, y in ((a, b, v, w), (a, b, w, v)):
                            ca = _mix(x) % shares[qa]
                            cb = _mix(y) % shares[qb]
                            for rest in itertools.product(
                                *(range(shares[u]) for u in free_dims[(a, b)])
                            ):
                                coords = [0] * k
                                coords[qa] = ca
                                coords[qb] = cb
                                for u, c in zip(free_dims[(a, b)], rest):
                                    coords[u] = c
                                point = point_index[tuple(coords)]
                                dst = point % num_machines
                                reducers[point].add(qa, qb, x, y)
                                replicated += 1
                                ops += 1
                                payload[t, dst] += tuple_bytes
                                received[dst] += tuple_bytes
            machine.charge_ops(ops, "map_ops")
        # Reducer inputs are materialised at their host machines; the
        # blow-up with complex patterns is exactly what OOMs here.
        for dst in range(num_machines):
            cluster.machine(dst).allocate(int(received[dst]), "relation_bytes")
        cluster.network.shuffle(cluster.machines, payload)
        self.last_replicated_tuples = replicated
        return reducers

    # ------------------------------------------------------------------
    # Reduce phase
    # ------------------------------------------------------------------
    def _reduce_phase(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        reducers: dict[int, _ReducerState],
        collect: bool,
    ) -> list[tuple[int, ...]]:
        """Enumerate embeddings inside each reducer's delivered relations."""
        num_machines = cluster.num_machines
        model = cluster.cost_model
        order = compute_matching_order(pattern)
        position = {u: q for q, u in enumerate(order)}
        n = pattern.num_vertices
        smaller, greater = constraint_map(constraints, n)
        backward: list[list[int]] = [
            [w for w in pattern.adj(order[q]) if position[w] < q]
            for q in range(n)
        ]
        start = order[0]
        start_edge = (start, min(pattern.adj(start)))
        emb_bytes = model.embedding_bytes(n)

        results: list[tuple[int, ...]] = []
        count = 0
        for point, state in sorted(reducers.items()):
            t = point % num_machines
            machine = cluster.machine(t)
            ops = 0
            found: list[tuple[int, ...]] = []
            allocated = 0
            mapping: dict[int, int] = {}
            used: set[int] = set()

            def bounds_ok(u: int, v: int) -> bool:
                for w in greater[u]:
                    if w in mapping and mapping[w] >= v:
                        return False
                for w in smaller[u]:
                    if w in mapping and mapping[w] <= v:
                        return False
                return True

            def extend(q: int) -> None:
                nonlocal ops, count, allocated
                u = order[q]
                partners = [
                    state.adjacency[(w, u)].get(mapping[w], _EMPTY)
                    for w in backward[q]
                ]
                cands = min(partners, key=len)
                for v in cands:
                    ops += 1
                    if v in used:
                        continue
                    if any(v not in p for p in partners):
                        continue
                    if not bounds_ok(u, v):
                        continue
                    mapping[u] = v
                    used.add(v)
                    if q + 1 == n:
                        count += 1
                        found.append(tuple(mapping[x] for x in range(n)))
                        if len(found) - allocated >= ALLOC_CHUNK:
                            machine.allocate(
                                ALLOC_CHUNK * emb_bytes, "result_bytes"
                            )
                            allocated += ALLOC_CHUNK
                    else:
                        extend(q + 1)
                    used.discard(v)
                    del mapping[u]

            start_candidates = state.adjacency.get(start_edge, {})
            for v0 in sorted(start_candidates):
                ops += 1
                if not bounds_ok(start, v0):
                    continue
                mapping[start] = v0
                used.add(v0)
                extend(1)
                used.discard(v0)
                del mapping[start]
            machine.allocate(
                max(0, len(found) - allocated) * emb_bytes, "result_bytes"
            )
            machine.charge_ops(ops, "reduce_ops")
            if collect:
                results.extend(found)
        cluster.barrier()
        self._count = count
        return results


_EMPTY: frozenset[int] = frozenset()
