"""Engine interface and result record shared by all five approaches."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.machine import SimulatedMemoryError
from repro.query.pattern import Pattern
from repro.query.symmetry import symmetry_breaking_constraints
from repro.runtime.executor import Executor, SerialExecutor


@dataclass
class RunResult:
    """Outcome of one enumeration run on a simulated cluster.

    ``makespan`` and ``total_comm_bytes`` are the quantities plotted in the
    paper's Figs. 8-11; ``failed`` marks simulated out-of-memory runs (the
    paper's empty bars).
    """

    engine: str
    pattern_name: str
    embedding_count: int
    makespan: float
    total_comm_bytes: int
    peak_memory: int
    per_machine_time: list[float]
    embeddings: list[tuple[int, ...]] | None = None
    failed: bool = False
    failure: str | None = None
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def comm_mb(self) -> float:
        """Communication volume in megabytes."""
        return self.total_comm_bytes / 1e6

    def summary(self) -> str:
        """One-line, paper-table-style summary."""
        if self.failed:
            return (
                f"{self.engine:>9} {self.pattern_name:>6}  OOM "
                f"({self.failure})"
            )
        return (
            f"{self.engine:>9} {self.pattern_name:>6}  "
            f"time={self.makespan:10.3f}s  comm={self.comm_mb:9.3f}MB  "
            f"peak={self.peak_memory / 1e6:8.2f}MB  "
            f"emb={self.embedding_count}"
        )


class EnumerationEngine(ABC):
    """A distributed subgraph-enumeration approach."""

    name: str = "engine"

    @abstractmethod
    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        """Run the algorithm; return embeddings (empty list when not collecting,
        in which case ``self._count`` must be set).

        ``executor`` is the execution backend for independent per-machine /
        per-region-group units of work; engines that are inherently
        sequential may ignore it.
        """

    def run(
        self,
        cluster: Cluster,
        pattern: Pattern,
        collect_embeddings: bool = True,
        executor: Executor | None = None,
    ) -> RunResult:
        """Execute on ``cluster`` and package stats into a RunResult.

        Simulated OOM is caught and reported as a failed run rather than an
        exception, matching how the paper reports crashed competitors.

        ``executor`` selects the execution backend (default: serial).  The
        embedding counts — and, for schedule-free engines, every reported
        statistic — are independent of the backend and its worker count.
        """
        constraints = symmetry_breaking_constraints(pattern)
        self._count = 0
        try:
            embeddings = self._execute(
                cluster, pattern, constraints, collect_embeddings,
                executor or SerialExecutor(),
            )
        except SimulatedMemoryError as exc:
            return RunResult(
                engine=self.name,
                pattern_name=pattern.name,
                embedding_count=0,
                makespan=cluster.makespan(),
                total_comm_bytes=cluster.total_comm_bytes(),
                peak_memory=cluster.peak_memory(),
                per_machine_time=[m.finish_time for m in cluster.machines],
                failed=True,
                failure=str(exc),
            )
        count = len(embeddings) if collect_embeddings else self._count
        return RunResult(
            engine=self.name,
            pattern_name=pattern.name,
            embedding_count=count,
            makespan=cluster.makespan(),
            total_comm_bytes=cluster.total_comm_bytes(),
            peak_memory=cluster.peak_memory(),
            per_machine_time=[m.finish_time for m in cluster.machines],
            embeddings=embeddings if collect_embeddings else None,
            counters=dict(
                sum((m.counters for m in cluster.machines), start=type(cluster.machines[0].counters)())
            ),
        )
