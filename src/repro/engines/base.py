"""Engine interface and result record shared by all five approaches."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cluster.cluster import Cluster
from repro.cluster.machine import SimulatedMemoryError
from repro.obs.trace import span as _obs_span
from repro.query.pattern import Pattern
from repro.query.symmetry import symmetry_breaking_constraints
from repro.runtime.executor import Executor, SerialExecutor

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.query.explain import QueryExplanation


@dataclass
class RunResult:
    """Outcome of one enumeration run on a simulated cluster.

    ``makespan`` and ``total_comm_bytes`` are the quantities plotted in the
    paper's Figs. 8-11; ``failed`` marks simulated out-of-memory runs (the
    paper's empty bars).

    ``trace`` is the nested span tree of a traced run (see
    :mod:`repro.obs.trace`) — ``None`` unless the caller asked for
    tracing — and ``profile`` is the resource profile of a profiled run
    (see :mod:`repro.obs.profile`).  Both are per-request diagnostics,
    not part of the result identity: cached and stored copies are
    persisted with them stripped.
    """

    engine: str
    pattern_name: str
    embedding_count: int
    makespan: float
    total_comm_bytes: int
    peak_memory: int
    per_machine_time: list[float]
    embeddings: list[tuple[int, ...]] | None = None
    failed: bool = False
    failure: str | None = None
    counters: dict[str, int] = field(default_factory=dict)
    trace: dict[str, Any] | None = None
    profile: dict[str, Any] | None = None

    @property
    def comm_mb(self) -> float:
        """Communication volume in megabytes."""
        return self.total_comm_bytes / 1e6

    def summary(self) -> str:
        """One-line, paper-table-style summary."""
        if self.failed:
            return (
                f"{self.engine:>9} {self.pattern_name:>6}  OOM "
                f"({self.failure})"
            )
        return (
            f"{self.engine:>9} {self.pattern_name:>6}  "
            f"time={self.makespan:10.3f}s  comm={self.comm_mb:9.3f}MB  "
            f"peak={self.peak_memory / 1e6:8.2f}MB  "
            f"emb={self.embedding_count}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict form (tuples become lists; inverse: from_dict)."""
        data = {
            "engine": self.engine,
            "pattern_name": self.pattern_name,
            "embedding_count": self.embedding_count,
            "makespan": self.makespan,
            "total_comm_bytes": self.total_comm_bytes,
            "peak_memory": self.peak_memory,
            "per_machine_time": [float(t) for t in self.per_machine_time],
            "embeddings": (
                None if self.embeddings is None
                else [list(emb) for emb in self.embeddings]
            ),
            "failed": self.failed,
            "failure": self.failure,
            "counters": {str(k): int(v) for k, v in self.counters.items()},
        }
        if self.trace is not None:
            # Untraced records keep the exact pre-tracing shape, so
            # persisted request logs and cache files stay byte-stable.
            data["trace"] = self.trace
        if self.profile is not None:
            data["profile"] = self.profile
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunResult":
        """Rebuild a RunResult from :meth:`to_dict` output."""
        embeddings = data.get("embeddings")
        return cls(
            engine=data["engine"],
            pattern_name=data["pattern_name"],
            embedding_count=int(data["embedding_count"]),
            makespan=float(data["makespan"]),
            total_comm_bytes=int(data["total_comm_bytes"]),
            peak_memory=int(data["peak_memory"]),
            per_machine_time=[float(t) for t in data["per_machine_time"]],
            embeddings=(
                None if embeddings is None
                else [tuple(int(v) for v in emb) for emb in embeddings]
            ),
            failed=bool(data.get("failed", False)),
            failure=data.get("failure"),
            counters={
                str(k): int(v)
                for k, v in (data.get("counters") or {}).items()
            },
            trace=data.get("trace"),
            profile=data.get("profile"),
        )


class EnumerationEngine(ABC):
    """A distributed subgraph-enumeration approach."""

    name: str = "engine"

    #: One-line execution-strategy note included in :meth:`explain` output.
    explain_note: str = ""

    @abstractmethod
    def _execute(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        collect: bool,
        executor: Executor,
    ) -> list[tuple[int, ...]]:
        """Run the algorithm; return embeddings (empty list when not collecting,
        in which case ``self._count`` must be set).

        ``executor`` is the execution backend for independent per-machine /
        per-region-group units of work; engines that are inherently
        sequential may ignore it.
        """

    # -- observability -------------------------------------------------
    def round_span(self, name: str, **attributes: Any):
        """A per-round tracing span, ``round.<name>`` (no-op untraced).

        Engines wrap each execution round (SM-E split, an R-Meef unit,
        a join round …) in ``with self.round_span("r-meef", unit=2):`` —
        when the run was started under a root span
        (``Session.run(trace=True)`` or a traced ``submit``) the round
        becomes a child span; otherwise this is a single context-variable
        read returning a shared no-op.  Spans observe, never perturb:
        nothing in the simulated cost model reads them.
        """
        return _obs_span(f"round.{name}", engine=self.name, **attributes)

    # -- inspection ----------------------------------------------------
    def execution_plan(self, pattern: Pattern):
        """The decomposition this engine would run ``pattern`` with.

        The default is the paper's three-heuristic choice
        (:func:`repro.query.plan.best_execution_plan`); engines with their
        own planner (RADS's ``plan_provider``) override this so
        :meth:`explain` reports the plan they would actually execute.
        """
        from repro.query.plan import best_execution_plan

        return best_execution_plan(pattern)

    def _explain_extras(self, pattern: Pattern) -> dict[str, Any]:
        """Engine-specific structure surfaced in :meth:`explain`."""
        return {}

    def explain(self, query, *, graph=None) -> "QueryExplanation":
        """A serializable :class:`~repro.query.explain.QueryExplanation`.

        ``query`` is a :class:`Pattern` or
        :class:`~repro.enumeration.labeled.LabeledPattern`; pass the data
        ``graph`` to include per-round cost-model estimates.  The record
        mirrors :class:`RunResult`: ``to_dict()``/``from_dict()`` round-trip
        through JSON and ``str()`` pretty-prints the plan.
        """
        from repro.query.explain import explain_query

        pattern = getattr(query, "pattern", query)
        return explain_query(
            query,
            engine=self.name,
            graph=graph,
            plan=self.execution_plan(pattern),
            extras=self._explain_extras(pattern),
            notes=self.explain_note,
        )

    def run_labeled(
        self,
        cluster: Cluster,
        data,
        query,
        collect_embeddings: bool = True,
        limit: int | None = None,
    ) -> RunResult:
        """Run a labeled query (``LabeledGraph`` + ``LabeledPattern``).

        Only engines registered with ``supports_labels=True`` implement
        this; the session facade checks the capability before calling.
        """
        raise NotImplementedError(
            f"{self.name} does not support labeled queries"
        )

    def run(
        self,
        cluster: Cluster,
        pattern: Pattern,
        collect_embeddings: bool = True,
        executor: Executor | None = None,
    ) -> RunResult:
        """Execute on ``cluster`` and package stats into a RunResult.

        Simulated OOM is caught and reported as a failed run rather than an
        exception, matching how the paper reports crashed competitors.

        ``executor`` selects the execution backend (default: serial).  The
        embedding counts — and, for schedule-free engines, every reported
        statistic — are independent of the backend and its worker count.
        """
        constraints = symmetry_breaking_constraints(pattern)
        self._count = 0
        try:
            embeddings = self._execute(
                cluster, pattern, constraints, collect_embeddings,
                executor or SerialExecutor(),
            )
        except SimulatedMemoryError as exc:
            # The failure path keeps the per-machine counters accumulated
            # up to the OOM: the paper's "crashed competitor" bars still
            # report how much work (and communication) the run burned.
            return RunResult(
                engine=self.name,
                pattern_name=pattern.name,
                embedding_count=0,
                makespan=cluster.makespan(),
                total_comm_bytes=cluster.total_comm_bytes(),
                peak_memory=cluster.peak_memory(),
                per_machine_time=[m.finish_time for m in cluster.machines],
                failed=True,
                failure=str(exc),
                counters=_cluster_counters(cluster),
            )
        count = len(embeddings) if collect_embeddings else self._count
        return RunResult(
            engine=self.name,
            pattern_name=pattern.name,
            embedding_count=count,
            makespan=cluster.makespan(),
            total_comm_bytes=cluster.total_comm_bytes(),
            peak_memory=cluster.peak_memory(),
            per_machine_time=[m.finish_time for m in cluster.machines],
            embeddings=embeddings if collect_embeddings else None,
            counters=_cluster_counters(cluster),
        )


def _cluster_counters(cluster: Cluster) -> dict[str, int]:
    """Per-machine operation counters merged across the cluster."""
    merged: Counter[str] = Counter()
    for machine in cluster.machines:
        merged.update(machine.counters)
    return dict(merged)
