"""Shared machinery for the join-based baselines (TwinTwig, SEED).

Both engines follow the same MapReduce skeleton: compute per-machine
instances of each decomposition unit locally, then run multi-round hash
joins where *both* join sides are shuffled by join key — the intermediate
result explosion and synchronisation delay the paper attributes to them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.obs.trace import span as _obs_span
from repro.query.pattern import Pattern
from repro.query.symmetry import constraint_map
from repro.runtime.executor import Executor, SerialExecutor

#: Allocation granularity while materialising tuples: memory is claimed in
#: chunks so an over-capacity run fails fast instead of materialising
#: everything first.
ALLOC_CHUNK = 4096


def _instances_task(cluster: Cluster, args: tuple) -> list[tuple[int, ...]]:
    """Generate one machine's instances of one unit (independent task)."""
    t, unit, pattern, constraints = args
    runner = DistributedJoinRunner(cluster, pattern, constraints)
    if unit.kind == "clique" and len(unit.vertices) > 2:
        return runner.clique_instances(t, unit)
    return runner.star_instances(t, unit)


def _shuffle_map_task(cluster: Cluster, args: tuple) -> tuple:
    """Group one source machine's tuples by join key (independent task).

    The map side of the shuffle: both sides' tuples are grouped by hash
    of the join key per destination machine, and the per-destination
    payload bytes are metered (grouped once per distinct key, the paper's
    Exp-1 compression).  Each task reads only source machine ``t``'s
    tuples and charges only machine ``t`` (single-writer discipline), so
    the map loops run on any execution backend.
    """
    (
        t, left_t, right_t, left_vertices, right_vertices, shared,
        star_compressed, num_machines,
    ) = args
    model = cluster.cost_model
    machine = cluster.machine(t)
    left_pos = {u: i for i, u in enumerate(left_vertices)}
    right_pos = {u: i for i, u in enumerate(right_vertices)}
    key_bytes = model.embedding_bytes(len(shared))
    lpayload = model.embedding_bytes(len(left_vertices) - len(shared))
    rpayload = model.embedding_bytes(len(right_vertices) - len(shared))
    lbytes = model.embedding_bytes(len(left_vertices))
    rbytes = model.embedding_bytes(len(right_vertices))

    def key_of(tup: tuple[int, ...], pos: dict[int, int]) -> tuple[int, ...]:
        return tuple(tup[pos[u]] for u in shared)

    grouped_left: dict[int, dict[tuple, list[tuple[int, ...]]]] = (
        defaultdict(lambda: defaultdict(list))
    )
    grouped_right: dict[int, dict[tuple, list[tuple[int, ...]]]] = (
        defaultdict(lambda: defaultdict(list))
    )
    row = np.zeros(num_machines, dtype=np.int64)
    sent_keys: set[tuple[tuple, int]] = set()
    for tup in left_t:
        key = key_of(tup, left_pos)
        dst = hash(key) % num_machines
        grouped_left[dst][key].append(tup)
        row[dst] += lpayload
        if (key, dst) not in sent_keys:
            sent_keys.add((key, dst))
            row[dst] += key_bytes
    for tup in right_t:
        key = key_of(tup, right_pos)
        dst = hash(key) % num_machines
        grouped_right[dst][key].append(tup)
        if not star_compressed:
            row[dst] += rpayload
        if (key, dst) not in sent_keys:
            sent_keys.add((key, dst))
            row[dst] += key_bytes
            if star_compressed:
                # A star side joined on its pivot ships in *compressed*
                # form: one adjacency list per centre instead of deg^2
                # materialised tuples.
                centre = tup[0]
                row[dst] += model.adjacency_bytes(
                    cluster.graph.degree(centre)
                )
    machine.charge_ops(len(left_t) + len(right_t), "shuffle_ops")
    machine.free(len(left_t) * lbytes + len(right_t) * rbytes)
    return (
        t,
        {dst: dict(groups) for dst, groups in grouped_left.items()},
        {dst: dict(groups) for dst, groups in grouped_right.items()},
        row,
    )


def _join_reduce_task(cluster: Cluster, args: tuple) -> list[tuple[int, ...]]:
    """Local hash join at one reducer (independent task)."""
    (
        t, lefts_by_key, rights_by_key, left_width, right_width,
        new_right, right_pos, out_pairs, out_width,
    ) = args
    model = cluster.cost_model
    machine = cluster.machine(t)
    out_bytes = model.embedding_bytes(out_width)
    joined: list[tuple[int, ...]] = []
    ops = 0
    allocated = 0
    for key, lefts in lefts_by_key.items():
        rights = rights_by_key.get(key)
        if not rights:
            continue
        for ltup in lefts:
            lset = set(ltup)
            for rtup in rights:
                ops += 1
                extension: list[int] = []
                ok = True
                for u in new_right:
                    value = rtup[right_pos[u]]
                    if value in lset or value in extension:
                        ok = False
                        break
                    extension.append(value)
                if not ok:
                    continue
                candidate = ltup + tuple(extension)
                if not ConstraintChecker.ok_tuple(candidate, out_pairs):
                    continue
                joined.append(candidate)
                if len(joined) - allocated >= ALLOC_CHUNK:
                    machine.allocate(ALLOC_CHUNK * out_bytes, "joined_bytes")
                    allocated += ALLOC_CHUNK
    machine.allocate((len(joined) - allocated) * out_bytes, "joined_bytes")
    machine.charge_ops(ops, "join_ops")
    # Inputs grouped at this reducer are released after the join.
    grouped = (
        sum(len(v) for v in lefts_by_key.values())
        * model.embedding_bytes(left_width)
        + sum(len(v) for v in rights_by_key.values())
        * model.embedding_bytes(right_width)
    )
    machine.free(grouped)
    return joined


@dataclass
class JoinUnit:
    """One decomposition unit: ordered query vertices + the edges it covers."""

    vertices: tuple[int, ...]
    covered_edges: tuple[tuple[int, int], ...]
    kind: str  # "star" or "clique"

    @property
    def pivot(self) -> int:
        """First vertex (the star centre / clique anchor)."""
        return self.vertices[0]


class ConstraintChecker:
    """Symmetry-breaking checks compiled to positional pairs per schema."""

    def __init__(self, pattern: Pattern, constraints: list[tuple[int, int]]):
        self._constraints = constraints
        self._smaller, self._greater = constraint_map(
            constraints, pattern.num_vertices
        )
        self._pair_cache: dict[tuple[int, ...], list[tuple[int, int]]] = {}

    def pairs(self, vertices: tuple[int, ...]) -> list[tuple[int, int]]:
        """Positional pairs ``(i, j)`` requiring ``tup[i] < tup[j]``."""
        cached = self._pair_cache.get(vertices)
        if cached is None:
            pos = {u: i for i, u in enumerate(vertices)}
            cached = [
                (pos[u], pos[v])
                for u, v in self._constraints
                if u in pos and v in pos
            ]
            self._pair_cache[vertices] = cached
        return cached

    @staticmethod
    def ok_tuple(tup: tuple[int, ...], pairs: list[tuple[int, int]]) -> bool:
        """Check the compiled pairs against a concrete tuple."""
        for i, j in pairs:
            if tup[i] >= tup[j]:
                return False
        return True


class DistributedJoinRunner:
    """Executes a unit sequence as synchronised hash-join rounds."""

    def __init__(
        self,
        cluster: Cluster,
        pattern: Pattern,
        constraints: list[tuple[int, int]],
        executor: Executor | None = None,
    ):
        self.cluster = cluster
        self.pattern = pattern
        self.checker = ConstraintChecker(pattern, constraints)
        self.executor = executor or SerialExecutor()
        self._constraints = constraints
        self._model = cluster.cost_model

    # ------------------------------------------------------------------
    # Unit instance generation
    # ------------------------------------------------------------------
    def star_instances(
        self, machine_id: int, star: JoinUnit
    ) -> list[tuple[int, ...]]:
        """Instances of a star unit from this machine's owned vertices.

        The star centre is matched to owned vertices; leaves come from the
        (local) adjacency list.  Memory is allocated in chunks so that an
        explosion hits the simulated capacity quickly.
        """
        local = self.cluster.partition.machine(machine_id)
        machine = self.cluster.machine(machine_id)
        pivot, leaves = star.vertices[0], star.vertices[1:]
        tuple_bytes = self._model.embedding_bytes(len(star.vertices))
        min_degree = self.pattern.degree(pivot)
        pairs = self.checker.pairs(star.vertices)
        instances: list[tuple[int, ...]] = []
        ops = 0
        allocated = 0

        def note_instance(inst: tuple[int, ...]) -> None:
            nonlocal allocated
            if not self.checker.ok_tuple(inst, pairs):
                return
            instances.append(inst)
            if len(instances) - allocated >= ALLOC_CHUNK:
                machine.allocate(ALLOC_CHUNK * tuple_bytes, "unit_bytes")
                allocated += ALLOC_CHUNK

        for v in local.owned_vertices:
            v = int(v)
            adjacency = local.neighbors(v)
            ops += 1
            if len(adjacency) < min_degree:
                continue

            def descend(idx: int, chosen: tuple[int, ...]) -> None:
                nonlocal ops
                if idx == len(leaves):
                    note_instance((v,) + chosen)
                    return
                for w in adjacency:
                    w = int(w)
                    ops += 1
                    if w == v or w in chosen:
                        continue
                    descend(idx + 1, chosen + (w,))

            descend(0, ())
        machine.allocate((len(instances) - allocated) * tuple_bytes, "unit_bytes")
        machine.charge_ops(ops, "unit_ops")
        return instances

    def clique_instances(
        self, machine_id: int, unit: JoinUnit
    ) -> list[tuple[int, ...]]:
        """Instances of a clique unit anchored at owned vertices.

        SEED's star-clique-preserved storage replicates the edges among a
        vertex's neighbours, so a machine can list cliques around its owned
        vertices without communication.  The anchor (first unit vertex) is
        matched to owned vertices; remaining clique members are enumerated
        from the intersection of all previously matched members' adjacency.
        """
        local = self.cluster.partition.machine(machine_id)
        machine = self.cluster.machine(machine_id)
        graph = self.cluster.graph
        k = len(unit.vertices)
        tuple_bytes = self._model.embedding_bytes(k)
        min_degree = self.pattern.degree(unit.pivot)
        pairs = self.checker.pairs(unit.vertices)
        instances: list[tuple[int, ...]] = []
        ops = 0
        allocated = 0

        def note_instance(inst: tuple[int, ...]) -> None:
            nonlocal allocated
            if not self.checker.ok_tuple(inst, pairs):
                return
            instances.append(inst)
            if len(instances) - allocated >= ALLOC_CHUNK:
                machine.allocate(ALLOC_CHUNK * tuple_bytes, "unit_bytes")
                allocated += ALLOC_CHUNK

        for v in local.owned_vertices:
            v = int(v)
            adjacency = local.neighbors(v)
            ops += 1
            if len(adjacency) < min_degree:
                continue

            def descend(idx: int, chosen: tuple[int, ...], common: np.ndarray) -> None:
                nonlocal ops
                if idx == k:
                    note_instance(chosen)
                    return
                ops += len(common)
                for w in common:
                    w = int(w)
                    if w in chosen:
                        continue
                    nxt = np.intersect1d(
                        common, graph.neighbors(w), assume_unique=True
                    )
                    ops += min(len(common), graph.degree(w))
                    descend(idx + 1, chosen + (w,), nxt)

            descend(1, (v,), adjacency)
        machine.allocate((len(instances) - allocated) * tuple_bytes, "unit_bytes")
        machine.charge_ops(ops, "unit_ops")
        return instances

    # ------------------------------------------------------------------
    # Hash join rounds
    # ------------------------------------------------------------------
    def join_round(
        self,
        left: dict[int, list[tuple[int, ...]]],
        left_vertices: tuple[int, ...],
        right: dict[int, list[tuple[int, ...]]],
        right_unit: JoinUnit,
    ) -> tuple[dict[int, list[tuple[int, ...]]], tuple[int, ...]]:
        """One MapReduce join: shuffle both sides by key, join locally.

        Returns the partitioned result and its query-vertex schema.
        """
        cluster = self.cluster
        num_machines = cluster.num_machines
        model = self._model
        right_vertices = right_unit.vertices
        shared = tuple(v for v in right_vertices if v in left_vertices)
        if not shared:
            raise ValueError("join units must share at least one vertex")
        right_pos = {u: i for i, u in enumerate(right_vertices)}
        out_vertices = left_vertices + tuple(
            v for v in right_vertices if v not in left_vertices
        )
        new_right = [v for v in right_vertices if v not in left_vertices]

        # Shuffle phase: both sides routed by hash of the join key.  Tuples
        # are *grouped by key* before hitting the wire, so each distinct key
        # is shipped once and tuples carry only their non-key columns (the
        # paper, Exp-1: "the grouped intermediate results of TwinTwig and
        # SEED significantly reduced the cost of network traffic").  The
        # map-side grouping is per-source-machine independent, so it runs
        # as one task per source machine on the active execution backend;
        # merging in task (= machine) order reproduces the exact key and
        # tuple orders of the historic coordinator-side loop.
        star_compressed = (
            right_unit.kind == "star" and shared == (right_unit.pivot,)
        )
        shuffled_left: dict[int, dict[tuple, list[tuple[int, ...]]]] = {
            t: defaultdict(list) for t in range(num_machines)
        }
        shuffled_right: dict[int, dict[tuple, list[tuple[int, ...]]]] = {
            t: defaultdict(list) for t in range(num_machines)
        }
        payload = np.zeros((num_machines, num_machines), dtype=np.int64)
        for t, grouped_left, grouped_right, row in self.executor.run_tasks(
            cluster,
            _shuffle_map_task,
            [
                (
                    t, left[t], right[t], left_vertices, right_vertices,
                    shared, star_compressed, num_machines,
                )
                for t in range(num_machines)
            ],
        ):
            for dst, groups in grouped_left.items():
                for key, items in groups.items():
                    shuffled_left[dst][key].extend(items)
            for dst, groups in grouped_right.items():
                for key, items in groups.items():
                    shuffled_right[dst][key].extend(items)
            payload[t, :] = row
        for t in range(num_machines):
            incoming = (
                sum(len(v) for v in shuffled_left[t].values())
                * model.embedding_bytes(len(left_vertices))
                + sum(len(v) for v in shuffled_right[t].values())
                * model.embedding_bytes(len(right_vertices))
            )
            cluster.machine(t).allocate(incoming, "grouped_bytes")
        cluster.network.shuffle(cluster.machines, payload)

        # Reduce phase: local hash join with injectivity + constraints —
        # one independent task per reducer.
        out_pairs = self.checker.pairs(out_vertices)
        reduced = self.executor.run_tasks(
            cluster,
            _join_reduce_task,
            [
                (
                    t, dict(shuffled_left[t]), dict(shuffled_right[t]),
                    len(left_vertices), len(right_vertices),
                    new_right, right_pos, out_pairs, len(out_vertices),
                )
                for t in range(num_machines)
            ],
        )
        result = dict(enumerate(reduced))
        cluster.barrier()
        return result, out_vertices

    # ------------------------------------------------------------------
    def run_units(
        self,
        units: list[JoinUnit],
        collect: bool,
    ) -> tuple[list[tuple[int, ...]], int]:
        """Left-deep evaluation of the unit sequence; returns (results, count)."""
        cluster = self.cluster
        num_machines = cluster.num_machines

        def instances_of(unit: JoinUnit) -> dict[int, list[tuple[int, ...]]]:
            per_machine = dict(
                enumerate(
                    self.executor.run_tasks(
                        cluster,
                        _instances_task,
                        [
                            (t, unit, self.pattern, self._constraints)
                            for t in range(num_machines)
                        ],
                    )
                )
            )
            cluster.barrier()
            return per_machine

        with _obs_span("round.unit", unit=0, kind=units[0].kind):
            current = instances_of(units[0])
        current_vertices = units[0].vertices
        for index, unit in enumerate(units[1:], start=1):
            with _obs_span("round.join", unit=index, kind=unit.kind):
                right = instances_of(unit)
                current, current_vertices = self.join_round(
                    current, current_vertices, right, unit
                )
        # Gather final embeddings (canonical tuples indexed by query vertex).
        n = self.pattern.num_vertices
        pos = {u: i for i, u in enumerate(current_vertices)}
        results: list[tuple[int, ...]] = []
        count = 0
        for t in range(num_machines):
            count += len(current[t])
            if collect:
                for tup in current[t]:
                    results.append(tuple(tup[pos[u]] for u in range(n)))
        return results, count
